//! A small deterministic pseudo-random generator.
//!
//! Experiments must be bit-for-bit reproducible across runs and platforms,
//! so we use a self-contained splitmix64/xoshiro-style generator rather than
//! an OS-seeded source. This is not a cryptographic generator.

/// Deterministic 64-bit PRNG (splitmix64 core).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Multiplicative range reduction; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Returns an exponentially distributed float with the given mean.
    ///
    /// Used by the discrete-event workload generators (Poisson arrivals).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let mut u = self.next_f64();
        if u == 0.0 {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator, e.g. one per simulated host.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn exp_mean_approximately_correct() {
        let mut r = DetRng::new(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean was {mean}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DetRng::new(5);
        let mut child = a.fork();
        // The child stream must not simply replay the parent stream.
        let parent_next = a.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).next_below(0);
    }
}

//! The calibrated cost model.
//!
//! Every virtual-time constant in the reproduction lives here, each traced
//! to a measured primitive in the paper (§3, Tables 3.1/3.2) or documented
//! as a calibration residual. Composite results — e.g. the 460 ms cold
//! `FindNSM`, or any cell of Table 3.1 — are *not* stored anywhere: they
//! emerge from the number of remote calls, name-service accesses, and
//! marshalling operations the simulated system actually performs, priced by
//! these constants.
//!
//! | Constant | Paper evidence |
//! |---|---|
//! | `rpc_rtt_sun` = 33 ms | "estimating C(remote call) as 33 msec." |
//! | `rpc_rtt_courier` = 38, `rpc_rtt_raw_tcp` = 22, `rpc_rtt_raw_udp` = 25 | "The remote call to the NSM takes 22-38 msec., depending on the RPC system used." |
//! | `dns_udp_rtt` + `bind_service` = 27 ms | "a BIND name to address lookup takes 27 msec." |
//! | `rpc_rtt_courier` + `ch_auth` + `ch_disk` + `ch_service` = 156 ms | "a Clearinghouse name to address lookup takes 156 msec." (authenticated, disk-bound) |
//! | generated marshalling (miss 20.23/32.34, hit 11.11/26.17 ms for 1/6 RRs) | Table 3.2 |
//! | demarshalled cache hit 0.83/1.22 ms | Table 3.2 |
//! | standard BIND routines 0.65/2.6 ms | "the standard BIND marshalling routines ... take .65 msec. and 2.6 msec." |
//! | `axfr_base` + 2 KB × `axfr_per_kb` = 390 ms | "The actual preload cost was measured to be about 390 msec." for "about 2KB" |
//! | interim file scheme total 200 ms | "Binding using this scheme took 200 msec." |
//! | reregistered Clearinghouse total 166 ms | "we found that binding took 166 msec." |
//! | `bind_resolver_overhead` = 15.5 ms | calibration residual: per-meta-lookup cost of the HRPC-to-BIND interface beyond RTT+service+marshalling, fitted so cold `FindNSM` ≈ 460 ms |

use crate::time::SimDuration;

/// Milliseconds as a convenience alias for the calibrated constants.
pub type Ms = f64;

/// Which cache storage form is charged on a hit (Table 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheForm {
    /// Entries kept in wire form; every hit pays a full demarshal through
    /// the generated routines.
    Marshalled,
    /// Entries kept as decoded values; a hit is a map lookup plus copy.
    Demarshalled,
}

/// The RPC protocol suites whose per-call overhead differs (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpcSuiteKind {
    /// Sun RPC emulation (XDR over TCP, portmapper binding).
    Sun,
    /// Xerox Courier emulation (Courier encoding over SPP).
    Courier,
    /// Raw HRPC over a TCP-style byte stream.
    RawTcp,
    /// Raw HRPC over a UDP-style datagram.
    RawUdp,
    /// A native DNS UDP exchange (the standard resolver path; lighter than
    /// any HRPC suite because it skips the HRPC control layer).
    DnsUdp,
}

/// All calibrated virtual-time constants (milliseconds).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// A local (same-address-space or same-host) procedure call.
    /// "C(local call) is effectively zero in the time scale of the other
    /// terms."
    pub local_call: Ms,
    /// Per-remote-call overhead of the Sun RPC suite (round trip,
    /// transport + control, excluding argument marshalling).
    pub rpc_rtt_sun: Ms,
    /// Per-remote-call overhead of the Courier suite.
    pub rpc_rtt_courier: Ms,
    /// Per-remote-call overhead of the raw TCP-style suite.
    pub rpc_rtt_raw_tcp: Ms,
    /// Per-remote-call overhead of the raw UDP-style suite.
    pub rpc_rtt_raw_udp: Ms,
    /// Additional network cost per kilobyte transferred.
    pub per_kb: Ms,

    /// Round trip of a native DNS UDP query (lighter than any RPC suite).
    pub dns_udp_rtt: Ms,
    /// BIND server per-lookup service time (in primary memory, no auth).
    pub bind_service: Ms,
    /// Per-operation service time of the Sun portmapper.
    pub portmap_service: Ms,

    /// Clearinghouse per-access authentication cost.
    pub ch_auth: Ms,
    /// Clearinghouse per-access disk retrieval cost.
    pub ch_disk: Ms,
    /// Clearinghouse per-lookup CPU service time.
    pub ch_service: Ms,

    /// Generated (stub-compiler) marshalling on a cache miss: fixed part.
    pub gen_miss_base: Ms,
    /// Generated marshalling on a miss: per resource record.
    pub gen_miss_per_rr: Ms,
    /// Demarshal of a marshalled-form cache entry: fixed part.
    pub gen_hit_base: Ms,
    /// Demarshal of a marshalled-form cache entry: per resource record.
    pub gen_hit_per_rr: Ms,
    /// Demarshalled-form cache hit: fixed part.
    pub demar_hit_base: Ms,
    /// Demarshalled-form cache hit: per resource record.
    pub demar_hit_per_rr: Ms,
    /// Hand-written (standard BIND library) marshalling: fixed part.
    pub fast_base: Ms,
    /// Hand-written marshalling: per resource record.
    pub fast_per_rr: Ms,
    /// Cost of determining that a cache reference is a miss ("about 0.1% of
    /// the total times").
    pub cache_probe: Ms,

    /// Per-meta-lookup overhead of the HRPC interface to BIND beyond
    /// RTT + service + marshalling (connection management, record parsing).
    /// Calibration residual; see module docs.
    pub bind_resolver_overhead: Ms,
    /// Marshalling of `FindNSM` arguments/results on a remote client→HNS hop.
    pub findnsm_arg_marshal: Ms,
    /// Marshalling of NSM arguments/results on a remote client→NSM hop.
    pub nsm_arg_marshal: Ms,
    /// Marshalling on a remote client→agent hop (agent forwards both
    /// interfaces; row 2 of Table 3.1).
    pub agent_arg_marshal: Ms,
    /// NSM-side assembly of the completed HRPC binding.
    pub nsm_assemble: Ms,
    /// HNS bookkeeping per meta mapping (hashing, context parsing).
    pub hns_bookkeeping: Ms,

    /// Fixed cost of a zone transfer used for cache preload.
    pub axfr_base: Ms,
    /// Zone-transfer cost per kilobyte of zone data.
    pub axfr_per_kb: Ms,

    /// Interim scheme: read + parse the replicated local binding file.
    pub interim_file_read: Ms,
    /// Interim scheme: fixed overhead besides file read and portmapper.
    pub interim_overhead: Ms,
    /// Reregistered-Clearinghouse scheme: assembly after the CH lookup.
    pub rereg_assemble: Ms,
    /// Reregistration process: cost to push one name into the global store.
    pub rereg_per_name: Ms,
}

impl CostModel {
    /// The calibration used throughout EXPERIMENTS.md, fitted to the
    /// paper's measured primitives (see module documentation).
    pub fn paper_calibrated() -> Self {
        CostModel {
            local_call: 0.02,
            rpc_rtt_sun: 33.0,
            rpc_rtt_courier: 38.0,
            rpc_rtt_raw_tcp: 22.0,
            rpc_rtt_raw_udp: 25.0,
            per_kb: 0.8,

            dns_udp_rtt: 18.0,
            bind_service: 8.0,
            portmap_service: 1.0,

            ch_auth: 48.0,
            ch_disk: 60.0,
            ch_service: 10.0,

            gen_miss_base: 17.81,
            gen_miss_per_rr: 2.42,
            gen_hit_base: 8.10,
            gen_hit_per_rr: 3.01,
            demar_hit_base: 0.75,
            demar_hit_per_rr: 0.08,
            fast_base: 0.26,
            fast_per_rr: 0.39,
            cache_probe: 0.05,

            bind_resolver_overhead: 15.5,
            findnsm_arg_marshal: 14.0,
            nsm_arg_marshal: 10.0,
            agent_arg_marshal: 18.0,
            nsm_assemble: 2.0,
            hns_bookkeeping: 0.5,

            axfr_base: 60.0,
            axfr_per_kb: 165.0,

            interim_file_read: 170.0,
            interim_overhead: 4.0,
            rereg_assemble: 10.0,
            rereg_per_name: 45.0,
        }
    }

    /// Round-trip overhead of one remote call under `suite`.
    pub fn rpc_rtt(&self, suite: RpcSuiteKind) -> Ms {
        match suite {
            RpcSuiteKind::Sun => self.rpc_rtt_sun,
            RpcSuiteKind::Courier => self.rpc_rtt_courier,
            RpcSuiteKind::RawTcp => self.rpc_rtt_raw_tcp,
            RpcSuiteKind::RawUdp => self.rpc_rtt_raw_udp,
            RpcSuiteKind::DnsUdp => self.dns_udp_rtt,
        }
    }

    /// Generated-marshalling cost for a fresh (miss-path) message carrying
    /// `rrs` resource records.
    pub fn generated_miss(&self, rrs: usize) -> Ms {
        self.gen_miss_base + self.gen_miss_per_rr * rrs as f64
    }

    /// Cost of a cache hit when the entry carries `rrs` records and the
    /// cache stores entries in `form`.
    pub fn cache_hit(&self, form: CacheForm, rrs: usize) -> Ms {
        match form {
            CacheForm::Marshalled => self.gen_hit_base + self.gen_hit_per_rr * rrs as f64,
            CacheForm::Demarshalled => self.demar_hit_base + self.demar_hit_per_rr * rrs as f64,
        }
    }

    /// Hand-written (standard library) marshalling cost for `rrs` records.
    pub fn fast_marshal(&self, rrs: usize) -> Ms {
        self.fast_base + self.fast_per_rr * rrs as f64
    }

    /// Total elapsed time of one native (standard-path) public BIND lookup
    /// returning `rrs` records: the paper's 27 ms primitive at `rrs = 1`.
    pub fn native_bind_lookup(&self, rrs: usize) -> Ms {
        self.dns_udp_rtt + self.bind_service + self.fast_marshal(rrs)
    }

    /// Total elapsed time of one native Clearinghouse lookup: the paper's
    /// 156 ms primitive.
    pub fn native_ch_lookup(&self) -> Ms {
        self.rpc_rtt_courier + self.ch_auth + self.ch_disk + self.ch_service
    }

    /// Cost of a zone transfer of `kb` kilobytes (preload path).
    pub fn axfr(&self, kb: f64) -> Ms {
        self.axfr_base + self.axfr_per_kb * kb
    }

    /// Converts milliseconds to a [`SimDuration`].
    pub fn dur(ms: Ms) -> SimDuration {
        SimDuration::from_ms_f64(ms)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::paper_calibrated()
    }

    #[test]
    fn native_bind_lookup_matches_paper_27ms() {
        let got = m().native_bind_lookup(1);
        assert!(
            (got - 27.0).abs() < 0.7,
            "BIND lookup {got} ms, paper 27 ms"
        );
    }

    #[test]
    fn native_ch_lookup_matches_paper_156ms() {
        let got = m().native_ch_lookup();
        assert!(
            (got - 156.0).abs() < 0.5,
            "CH lookup {got} ms, paper 156 ms"
        );
    }

    #[test]
    fn table_3_2_marshalled_and_demarshalled_hits() {
        let c = m();
        // Paper Table 3.2: miss 20.23/32.34, marshalled 11.11/26.17,
        // demarshalled 0.83/1.22 ms for 1/6 resource records.
        assert!((c.generated_miss(1) - 20.23).abs() < 0.1);
        assert!((c.generated_miss(6) - 32.34).abs() < 0.2);
        assert!((c.cache_hit(CacheForm::Marshalled, 1) - 11.11).abs() < 0.1);
        assert!((c.cache_hit(CacheForm::Marshalled, 6) - 26.17).abs() < 0.1);
        assert!((c.cache_hit(CacheForm::Demarshalled, 1) - 0.83).abs() < 0.02);
        assert!((c.cache_hit(CacheForm::Demarshalled, 6) - 1.22).abs() < 0.02);
    }

    #[test]
    fn standard_bind_routines_match_paper() {
        let c = m();
        assert!((c.fast_marshal(1) - 0.65).abs() < 0.01);
        assert!((c.fast_marshal(6) - 2.6).abs() < 0.01);
    }

    #[test]
    fn preload_cost_matches_paper_390ms() {
        let got = m().axfr(2.0);
        assert!((got - 390.0).abs() < 1.0, "preload {got} ms, paper ~390 ms");
    }

    #[test]
    fn rpc_rtt_spread_matches_paper_22_38() {
        let c = m();
        let all = [
            c.rpc_rtt(RpcSuiteKind::Sun),
            c.rpc_rtt(RpcSuiteKind::Courier),
            c.rpc_rtt(RpcSuiteKind::RawTcp),
            c.rpc_rtt(RpcSuiteKind::RawUdp),
        ];
        for v in all {
            assert!((22.0..=38.0).contains(&v), "suite rtt {v} outside 22-38 ms");
        }
        assert_eq!(c.rpc_rtt(RpcSuiteKind::Sun), 33.0);
    }

    #[test]
    fn dur_converts_ms() {
        assert_eq!(CostModel::dur(1.5).as_us(), 1500);
    }
}

//! The shared simulation environment.
//!
//! A [`World`] bundles the virtual clock, the host topology, the calibrated
//! [`CostModel`], a [`Tracer`], and global operation counters. Every
//! simulated component (RPC suites, name services, the HNS, NSMs) holds an
//! `Arc<World>` and charges its costs against it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::clock::{Clock, VirtualClock};
use crate::costs::{CostModel, Ms};
use crate::faults::FaultPlan;
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, Topology};
use crate::trace::{CacheOutcome, SpanId, TraceKind, Tracer};
use obs::{LazyCounter, MetricsRegistry};

/// Global counters, useful for asserting the *structure* of operations
/// (e.g. "a cold `FindNSM` makes exactly six remote data mappings").
#[derive(Debug, Default)]
pub struct Counters {
    remote_calls: AtomicU64,
    local_calls: AtomicU64,
    bytes_sent: AtomicU64,
    ns_lookups: AtomicU64,
}

/// A point-in-time snapshot of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Remote (cross-host) calls made.
    pub remote_calls: u64,
    /// Local (same-host) calls made.
    pub local_calls: u64,
    /// Total bytes carried by the network.
    pub bytes_sent: u64,
    /// Lookups served by underlying name services.
    pub ns_lookups: u64,
}

impl CounterSnapshot {
    /// Componentwise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            remote_calls: self.remote_calls.saturating_sub(earlier.remote_calls),
            local_calls: self.local_calls.saturating_sub(earlier.local_calls),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            ns_lookups: self.ns_lookups.saturating_sub(earlier.ns_lookups),
        }
    }
}

/// The simulation environment shared by all components.
#[derive(Debug)]
pub struct World {
    /// The virtual clock all costs are charged against.
    pub clock: VirtualClock,
    /// Hosts on the simulated LAN.
    pub topology: Topology,
    /// The calibrated cost constants.
    pub costs: CostModel,
    /// Optional event and span recorder.
    pub tracer: Tracer,
    counters: Counters,
    metrics: MetricsRegistry,
    net_handles: NetHandles,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Mirrors `faults.is_some()` so the per-call fault query on the RPC
    /// hot path is one relaxed load in the (overwhelmingly common)
    /// fault-free case instead of a read-lock plus `Arc` clone — the
    /// lock word was a measurable serialization point under
    /// multi-threaded load.
    faults_installed: AtomicBool,
}

/// Cached registry handles for the `net` mirror counters, so the
/// per-call accounting in [`World::count_remote_call`] and friends costs
/// one striped atomic add instead of a registry lookup (two `String`
/// allocations plus a read lock) per call.
#[derive(Debug, Default)]
struct NetHandles {
    remote_calls: LazyCounter,
    bytes_sent: LazyCounter,
    local_calls: LazyCounter,
    ns_lookups: LazyCounter,
}

impl World {
    /// Creates a world with the given cost model.
    pub fn new(costs: CostModel) -> Arc<Self> {
        Arc::new(World {
            clock: VirtualClock::new(),
            topology: Topology::new(),
            costs,
            tracer: Tracer::new(),
            counters: Counters::default(),
            metrics: MetricsRegistry::new(),
            net_handles: NetHandles::default(),
            faults: RwLock::new(None),
            faults_installed: AtomicBool::new(false),
        })
    }

    /// Creates a world with the paper-calibrated cost model.
    pub fn paper() -> Arc<Self> {
        Self::new(CostModel::paper_calibrated())
    }

    /// Adds a host to the topology.
    pub fn add_host(&self, name: impl Into<String>) -> HostId {
        self.topology.add_host(name)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Charges `ms` virtual milliseconds.
    pub fn charge_ms(&self, ms: Ms) {
        self.clock.advance(SimDuration::from_ms_f64(ms));
    }

    /// Charges a duration.
    pub fn charge(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Records a trace event at the current instant, attached to the
    /// calling thread's current span (if any).
    pub fn trace(&self, host: Option<HostId>, kind: TraceKind, message: impl Into<String>) {
        self.tracer
            .record(self.now().as_us(), host.map(|h| h.0), kind, message.into());
    }

    /// The unified metrics registry shared by every component in this
    /// world.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Opens a per-query span ending (at the then-current virtual
    /// instant) when the returned guard drops. A no-op with no
    /// allocation beyond `name` when the tracer is disabled — use
    /// [`World::span_lazy`] on hot paths to avoid even that.
    pub fn span(
        &self,
        host: Option<HostId>,
        kind: TraceKind,
        name: impl Into<String>,
    ) -> WorldSpan<'_> {
        let id = self
            .tracer
            .begin_span(self.now().as_us(), host.map(|h| h.0), kind, name.into());
        WorldSpan { world: self, id }
    }

    /// Like [`World::span`], but builds the name only when tracing is
    /// enabled (hot paths call this so a disabled tracer costs nothing).
    pub fn span_lazy(
        &self,
        host: Option<HostId>,
        kind: TraceKind,
        name: impl FnOnce() -> String,
    ) -> WorldSpan<'_> {
        if self.tracer.is_enabled() {
            self.span(host, kind, name())
        } else {
            WorldSpan {
                world: self,
                id: None,
            }
        }
    }

    /// Annotates the calling thread's current span with a cache
    /// outcome (no-op outside a span or with tracing disabled).
    pub fn cache_outcome(&self, outcome: CacheOutcome) {
        self.tracer.annotate_cache(outcome);
    }

    /// Notes one remote (cross-host) call carrying `bytes` in total,
    /// mirrored into the `net` metrics component.
    pub fn count_remote_call(&self, bytes: u64) {
        self.counters.remote_calls.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.net_handles
            .remote_calls
            .get(&self.metrics, "net", "remote_calls")
            .inc();
        self.net_handles
            .bytes_sent
            .get(&self.metrics, "net", "bytes_sent")
            .add(bytes);
    }

    /// Notes one local (same-host) call.
    pub fn count_local_call(&self) {
        self.counters.local_calls.fetch_add(1, Ordering::Relaxed);
        self.net_handles
            .local_calls
            .get(&self.metrics, "net", "local_calls")
            .inc();
    }

    /// Notes one lookup served by an underlying name service.
    pub fn count_ns_lookup(&self) {
        self.counters.ns_lookups.fetch_add(1, Ordering::Relaxed);
        self.net_handles
            .ns_lookups
            .get(&self.metrics, "net", "ns_lookups")
            .inc();
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            remote_calls: self.counters.remote_calls.load(Ordering::Relaxed),
            local_calls: self.counters.local_calls.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            ns_lookups: self.counters.ns_lookups.load(Ordering::Relaxed),
        }
    }

    /// Installs (or, with `None`, clears) the fault plan. With no plan
    /// installed every fault query is a strict no-op — nothing is
    /// charged, registered, or traced — so fault-free runs stay
    /// byte-identical.
    pub fn set_faults(&self, plan: Option<FaultPlan>) {
        let installed = plan.is_some();
        // Installing: plan first, flag second, so a racing reader never
        // sees the flag set with no plan behind it. Clearing: flag
        // first, so a reader at worst stops observing a plan that is
        // about to be removed anyway. (Fault plans are installed at
        // quiesced points in practice; this just keeps the flag
        // conservative in both directions.)
        if !installed {
            self.faults_installed.store(false, Ordering::Release);
        }
        *self.faults.write().unwrap_or_else(|e| e.into_inner()) = plan.map(Arc::new);
        if installed {
            self.faults_installed.store(true, Ordering::Release);
        }
    }

    /// The currently installed fault plan, if any. One relaxed load when
    /// no plan is installed — hot paths may call this per RPC attempt.
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        if !self.faults_installed.load(Ordering::Acquire) {
            return None;
        }
        self.faults
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Measures virtual time and counter deltas over `f`.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, SimDuration, CounterSnapshot) {
        let t0 = self.now();
        let c0 = self.counters();
        let r = f();
        let took = self.now().since(t0);
        let delta = self.counters().since(&c0);
        (r, took, delta)
    }
}

/// RAII guard for a per-query span opened by [`World::span`].
///
/// The span closes (at the virtual instant current *then*) when the
/// guard drops, so early returns and `?` still produce well-formed
/// spans. When tracing is disabled the guard is inert.
#[derive(Debug)]
pub struct WorldSpan<'w> {
    world: &'w World,
    id: Option<SpanId>,
}

impl WorldSpan<'_> {
    /// The underlying span id, if tracing was enabled at open time.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Attributes `n` remote round trips to this span.
    pub fn add_round_trips(&self, n: u64) {
        if let Some(id) = self.id {
            self.world.tracer.add_round_trips(id, n);
        }
    }
}

impl Drop for WorldSpan<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.world.tracer.end_span(id, self.world.now().as_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock() {
        let w = World::paper();
        w.charge_ms(27.0);
        assert_eq!(w.now().as_us(), 27_000);
    }

    #[test]
    fn counters_track_calls() {
        let w = World::paper();
        w.count_remote_call(128);
        w.count_remote_call(64);
        w.count_local_call();
        w.count_ns_lookup();
        let c = w.counters();
        assert_eq!(c.remote_calls, 2);
        assert_eq!(c.local_calls, 1);
        assert_eq!(c.bytes_sent, 192);
        assert_eq!(c.ns_lookups, 1);
    }

    #[test]
    fn measure_reports_deltas_only() {
        let w = World::paper();
        w.charge_ms(10.0);
        w.count_remote_call(10);
        let (val, took, delta) = w.measure(|| {
            w.charge_ms(5.0);
            w.count_remote_call(7);
            "ok"
        });
        assert_eq!(val, "ok");
        assert_eq!(took, SimDuration::from_ms(5));
        assert_eq!(delta.remote_calls, 1);
        assert_eq!(delta.bytes_sent, 7);
    }

    #[test]
    fn trace_goes_through_tracer() {
        let w = World::paper();
        w.tracer.set_enabled(true);
        w.trace(None, TraceKind::Info, "hello");
        assert_eq!(w.tracer.len(), 1);
    }

    #[test]
    fn span_guard_closes_at_drop_time() {
        let w = World::paper();
        w.tracer.set_enabled(true);
        {
            let span = w.span(Some(HostId(1)), TraceKind::Hns, "query");
            span.add_round_trips(2);
            w.charge_ms(5.0);
            w.trace(None, TraceKind::Info, "inside");
        }
        let spans = w.tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[0].host, Some(1));
        assert_eq!(spans[0].round_trips, 2);
        assert_eq!(spans[0].duration_us(), 5_000);
        assert_eq!(w.tracer.snapshot()[0].span, Some(spans[0].id));
    }

    #[test]
    fn span_lazy_skips_name_construction_when_disabled() {
        let w = World::paper();
        let span = w.span_lazy(None, TraceKind::Hns, || {
            panic!("name built with tracing disabled")
        });
        assert!(span.id().is_none());
        drop(span);
        assert!(w.tracer.spans().is_empty());
    }

    #[test]
    fn counters_mirror_into_metrics_registry() {
        let w = World::paper();
        w.count_remote_call(128);
        w.count_remote_call(64);
        w.count_local_call();
        let snap = w.metrics().snapshot();
        assert_eq!(snap.counter("net", "remote_calls"), Some(2));
        assert_eq!(snap.counter("net", "bytes_sent"), Some(192));
        assert_eq!(snap.counter("net", "local_calls"), Some(1));
    }

    #[test]
    fn fault_plan_installs_and_clears() {
        let w = World::paper();
        assert!(w.faults().is_none());
        let mut plan = FaultPlan::new();
        plan.crash(HostId(1), w.now(), None);
        w.set_faults(Some(plan));
        assert!(w.faults().expect("installed").host_down(HostId(1), w.now()));
        w.set_faults(None);
        assert!(w.faults().is_none());
    }

    #[test]
    fn snapshot_since_subtracts() {
        let a = CounterSnapshot {
            remote_calls: 5,
            local_calls: 2,
            bytes_sent: 100,
            ns_lookups: 3,
        };
        let b = CounterSnapshot {
            remote_calls: 7,
            local_calls: 2,
            bytes_sent: 150,
            ns_lookups: 4,
        };
        let d = b.since(&a);
        assert_eq!(d.remote_calls, 2);
        assert_eq!(d.local_calls, 0);
        assert_eq!(d.bytes_sent, 50);
        assert_eq!(d.ns_lookups, 1);
    }
}

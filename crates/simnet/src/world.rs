//! The shared simulation environment.
//!
//! A [`World`] bundles the virtual clock, the host topology, the calibrated
//! [`CostModel`], a [`Tracer`], and global operation counters. Every
//! simulated component (RPC suites, name services, the HNS, NSMs) holds an
//! `Arc<World>` and charges its costs against it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::clock::{Clock, VirtualClock};
use crate::costs::{CostModel, Ms};
use crate::faults::FaultPlan;
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, Topology};
use crate::trace::{CacheOutcome, SpanId, TraceKind, Tracer};
use obs::{LazyCounter, MetricsRegistry, Sampler, Timeline};

/// Global counters, useful for asserting the *structure* of operations
/// (e.g. "a cold `FindNSM` makes exactly six remote data mappings").
#[derive(Debug, Default)]
pub struct Counters {
    remote_calls: AtomicU64,
    local_calls: AtomicU64,
    bytes_sent: AtomicU64,
    ns_lookups: AtomicU64,
}

/// A point-in-time snapshot of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Remote (cross-host) calls made.
    pub remote_calls: u64,
    /// Local (same-host) calls made.
    pub local_calls: u64,
    /// Total bytes carried by the network.
    pub bytes_sent: u64,
    /// Lookups served by underlying name services.
    pub ns_lookups: u64,
}

impl CounterSnapshot {
    /// Componentwise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            remote_calls: self.remote_calls.saturating_sub(earlier.remote_calls),
            local_calls: self.local_calls.saturating_sub(earlier.local_calls),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            ns_lookups: self.ns_lookups.saturating_sub(earlier.ns_lookups),
        }
    }
}

/// The simulation environment shared by all components.
#[derive(Debug)]
pub struct World {
    /// The virtual clock all costs are charged against.
    pub clock: VirtualClock,
    /// Hosts on the simulated LAN.
    pub topology: Topology,
    /// The calibrated cost constants.
    pub costs: CostModel,
    /// Optional event and span recorder.
    pub tracer: Tracer,
    counters: Counters,
    metrics: MetricsRegistry,
    net_handles: NetHandles,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Mirrors `faults.is_some()` so the per-call fault query on the RPC
    /// hot path is one relaxed load in the (overwhelmingly common)
    /// fault-free case instead of a read-lock plus `Arc` clone — the
    /// lock word was a measurable serialization point under
    /// multi-threaded load.
    faults_installed: AtomicBool,
    sampler: Mutex<Option<Sampler>>,
    /// Mirrors `sampler.is_some()` (the same pattern as
    /// `faults_installed`): every `charge` checks it with one relaxed
    /// load, so runs without sampling pay nothing on the hot path.
    sampler_installed: AtomicBool,
    /// Mirrors the sampler's `next_due_us`, so an installed sampler
    /// costs a clock read plus one relaxed load per charge between
    /// window boundaries instead of a mutex acquisition.
    sampler_next_due: AtomicU64,
    cache_exporters: CacheExporters,
}

/// A registered snapshot-time exporter: flushes one cache's private
/// atomics into the shared registry.
pub type CacheExporter = Box<dyn Fn(&MetricsRegistry) + Send + Sync>;

/// Snapshot-time cache exporters registered by components whose caches
/// keep private atomics (`hns_cache`, `hns_binding_cache`, `nsm_cache`,
/// `bindns_cache`). [`World::export_all_caches`] runs them all, so a
/// mid-run sample sees current totals instead of stale zeros.
#[derive(Default)]
struct CacheExporters(RwLock<Vec<CacheExporter>>);

impl std::fmt::Debug for CacheExporters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.0.read().map(|v| v.len()).unwrap_or(0);
        f.debug_tuple("CacheExporters").field(&len).finish()
    }
}

/// Cached registry handles for the `net` mirror counters, so the
/// per-call accounting in [`World::count_remote_call`] and friends costs
/// one striped atomic add instead of a registry lookup (two `String`
/// allocations plus a read lock) per call.
#[derive(Debug, Default)]
struct NetHandles {
    remote_calls: LazyCounter,
    bytes_sent: LazyCounter,
    local_calls: LazyCounter,
    ns_lookups: LazyCounter,
}

impl World {
    /// Creates a world with the given cost model.
    pub fn new(costs: CostModel) -> Arc<Self> {
        Arc::new(World {
            clock: VirtualClock::new(),
            topology: Topology::new(),
            costs,
            tracer: Tracer::new(),
            counters: Counters::default(),
            metrics: MetricsRegistry::new(),
            net_handles: NetHandles::default(),
            faults: RwLock::new(None),
            faults_installed: AtomicBool::new(false),
            sampler: Mutex::new(None),
            sampler_installed: AtomicBool::new(false),
            sampler_next_due: AtomicU64::new(u64::MAX),
            cache_exporters: CacheExporters::default(),
        })
    }

    /// Creates a world with the paper-calibrated cost model.
    pub fn paper() -> Arc<Self> {
        Self::new(CostModel::paper_calibrated())
    }

    /// Adds a host to the topology.
    pub fn add_host(&self, name: impl Into<String>) -> HostId {
        self.topology.add_host(name)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Charges `ms` virtual milliseconds.
    pub fn charge_ms(&self, ms: Ms) {
        self.clock.advance(SimDuration::from_ms_f64(ms));
        self.sample_tick();
    }

    /// Charges a duration.
    pub fn charge(&self, d: SimDuration) {
        self.clock.advance(d);
        self.sample_tick();
    }

    /// The sampler hook on the charge path: one relaxed load when no
    /// sampler is installed.
    #[inline]
    fn sample_tick(&self) {
        if self.sampler_installed.load(Ordering::Relaxed) {
            self.sample_tick_slow();
        }
    }

    fn sample_tick_slow(&self) {
        // Reading the clock flushes the calling thread's batched pending
        // charges (`VirtualClock::set_batched`), so the sample always
        // sees fully charged virtual time.
        let now = self.clock.now().as_us();
        if now < self.sampler_next_due.load(Ordering::Relaxed) {
            return;
        }
        // Flush snapshot-time cache exports before sampling, so the
        // window delta reads current cache totals, not stale zeros.
        self.export_all_caches();
        let mut guard = self.sampler.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sampler) = guard.as_mut() {
            sampler.tick(&self.metrics, now);
            self.sampler_next_due
                .store(sampler.next_due_us(), Ordering::Relaxed);
        }
    }

    /// Starts windowed metrics sampling with the given window width.
    /// Caches are flushed first so window 0's delta starts from current
    /// totals. Replaces any sampler already running.
    pub fn start_sampling(&self, interval: SimDuration) {
        self.export_all_caches();
        let sampler = Sampler::new(&self.metrics, self.clock.now().as_us(), interval.as_us());
        self.sampler_next_due
            .store(sampler.next_due_us(), Ordering::Relaxed);
        *self.sampler.lock().unwrap_or_else(|e| e.into_inner()) = Some(sampler);
        self.sampler_installed.store(true, Ordering::Release);
    }

    /// Stops sampling and returns the accumulated [`Timeline`] (caches
    /// flushed, residual partial window captured). `None` if no sampler
    /// was running.
    pub fn finish_sampling(&self) -> Option<Timeline> {
        self.sampler_installed.store(false, Ordering::Release);
        self.sampler_next_due.store(u64::MAX, Ordering::Relaxed);
        let sampler = self
            .sampler
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()?;
        self.export_all_caches();
        Some(sampler.finish(&self.metrics, self.clock.now().as_us()))
    }

    /// Places a labeled mark on the running timeline (no-op without a
    /// sampler).
    pub fn sample_mark(&self, label: &str) {
        if !self.sampler_installed.load(Ordering::Relaxed) {
            return;
        }
        let now = self.clock.now().as_us();
        if let Some(sampler) = self
            .sampler
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            sampler.mark(now, label);
        }
    }

    /// Registers a snapshot-time cache exporter (see
    /// [`World::export_all_caches`]). Components register once at
    /// construction, capturing `Weak` handles so dropped instances go
    /// inert rather than re-publishing stale totals.
    pub fn register_cache_exporter(&self, exporter: CacheExporter) {
        self.cache_exporters
            .0
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(exporter);
    }

    /// Runs every registered cache exporter, publishing current cache
    /// totals into the metrics registry. Called automatically before
    /// each sample and at `finish_sampling`; end-of-run snapshot takers
    /// call it directly instead of hand-listing `export_metrics` sites.
    pub fn export_all_caches(&self) {
        for exporter in self
            .cache_exporters
            .0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            exporter(&self.metrics);
        }
    }

    /// Records a trace event at the current instant, attached to the
    /// calling thread's current span (if any).
    pub fn trace(&self, host: Option<HostId>, kind: TraceKind, message: impl Into<String>) {
        self.tracer
            .record(self.now().as_us(), host.map(|h| h.0), kind, message.into());
    }

    /// The unified metrics registry shared by every component in this
    /// world.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Opens a per-query span ending (at the then-current virtual
    /// instant) when the returned guard drops. A no-op with no
    /// allocation beyond `name` when the tracer is disabled — use
    /// [`World::span_lazy`] on hot paths to avoid even that.
    pub fn span(
        &self,
        host: Option<HostId>,
        kind: TraceKind,
        name: impl Into<String>,
    ) -> WorldSpan<'_> {
        let id = self
            .tracer
            .begin_span(self.now().as_us(), host.map(|h| h.0), kind, name.into());
        WorldSpan { world: self, id }
    }

    /// Like [`World::span`], but builds the name only when tracing is
    /// enabled (hot paths call this so a disabled tracer costs nothing).
    pub fn span_lazy(
        &self,
        host: Option<HostId>,
        kind: TraceKind,
        name: impl FnOnce() -> String,
    ) -> WorldSpan<'_> {
        if self.tracer.is_enabled() {
            self.span(host, kind, name())
        } else {
            WorldSpan {
                world: self,
                id: None,
            }
        }
    }

    /// Annotates the calling thread's current span with a cache
    /// outcome (no-op outside a span or with tracing disabled).
    pub fn cache_outcome(&self, outcome: CacheOutcome) {
        self.tracer.annotate_cache(outcome);
    }

    /// Notes one remote (cross-host) call carrying `bytes` in total,
    /// mirrored into the `net` metrics component.
    pub fn count_remote_call(&self, bytes: u64) {
        self.counters.remote_calls.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.net_handles
            .remote_calls
            .get(&self.metrics, "net", "remote_calls")
            .inc();
        self.net_handles
            .bytes_sent
            .get(&self.metrics, "net", "bytes_sent")
            .add(bytes);
    }

    /// Notes one local (same-host) call.
    pub fn count_local_call(&self) {
        self.counters.local_calls.fetch_add(1, Ordering::Relaxed);
        self.net_handles
            .local_calls
            .get(&self.metrics, "net", "local_calls")
            .inc();
    }

    /// Notes one lookup served by an underlying name service.
    pub fn count_ns_lookup(&self) {
        self.counters.ns_lookups.fetch_add(1, Ordering::Relaxed);
        self.net_handles
            .ns_lookups
            .get(&self.metrics, "net", "ns_lookups")
            .inc();
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            remote_calls: self.counters.remote_calls.load(Ordering::Relaxed),
            local_calls: self.counters.local_calls.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            ns_lookups: self.counters.ns_lookups.load(Ordering::Relaxed),
        }
    }

    /// Installs (or, with `None`, clears) the fault plan. With no plan
    /// installed every fault query is a strict no-op — nothing is
    /// charged, registered, or traced — so fault-free runs stay
    /// byte-identical.
    pub fn set_faults(&self, plan: Option<FaultPlan>) {
        let installed = plan.is_some();
        // Installing: plan first, flag second, so a racing reader never
        // sees the flag set with no plan behind it. Clearing: flag
        // first, so a reader at worst stops observing a plan that is
        // about to be removed anyway. (Fault plans are installed at
        // quiesced points in practice; this just keeps the flag
        // conservative in both directions.)
        if !installed {
            self.faults_installed.store(false, Ordering::Release);
        }
        *self.faults.write().unwrap_or_else(|e| e.into_inner()) = plan.map(Arc::new);
        if installed {
            self.faults_installed.store(true, Ordering::Release);
        }
    }

    /// The currently installed fault plan, if any. One relaxed load when
    /// no plan is installed — hot paths may call this per RPC attempt.
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        if !self.faults_installed.load(Ordering::Acquire) {
            return None;
        }
        self.faults
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Measures virtual time and counter deltas over `f`.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, SimDuration, CounterSnapshot) {
        let t0 = self.now();
        let c0 = self.counters();
        let r = f();
        let took = self.now().since(t0);
        let delta = self.counters().since(&c0);
        (r, took, delta)
    }
}

/// RAII guard for a per-query span opened by [`World::span`].
///
/// The span closes (at the virtual instant current *then*) when the
/// guard drops, so early returns and `?` still produce well-formed
/// spans. When tracing is disabled the guard is inert.
#[derive(Debug)]
pub struct WorldSpan<'w> {
    world: &'w World,
    id: Option<SpanId>,
}

impl WorldSpan<'_> {
    /// The underlying span id, if tracing was enabled at open time.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Attributes `n` remote round trips to this span.
    pub fn add_round_trips(&self, n: u64) {
        if let Some(id) = self.id {
            self.world.tracer.add_round_trips(id, n);
        }
    }
}

impl Drop for WorldSpan<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.world.tracer.end_span(id, self.world.now().as_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock() {
        let w = World::paper();
        w.charge_ms(27.0);
        assert_eq!(w.now().as_us(), 27_000);
    }

    #[test]
    fn counters_track_calls() {
        let w = World::paper();
        w.count_remote_call(128);
        w.count_remote_call(64);
        w.count_local_call();
        w.count_ns_lookup();
        let c = w.counters();
        assert_eq!(c.remote_calls, 2);
        assert_eq!(c.local_calls, 1);
        assert_eq!(c.bytes_sent, 192);
        assert_eq!(c.ns_lookups, 1);
    }

    #[test]
    fn measure_reports_deltas_only() {
        let w = World::paper();
        w.charge_ms(10.0);
        w.count_remote_call(10);
        let (val, took, delta) = w.measure(|| {
            w.charge_ms(5.0);
            w.count_remote_call(7);
            "ok"
        });
        assert_eq!(val, "ok");
        assert_eq!(took, SimDuration::from_ms(5));
        assert_eq!(delta.remote_calls, 1);
        assert_eq!(delta.bytes_sent, 7);
    }

    #[test]
    fn trace_goes_through_tracer() {
        let w = World::paper();
        w.tracer.set_enabled(true);
        w.trace(None, TraceKind::Info, "hello");
        assert_eq!(w.tracer.len(), 1);
    }

    #[test]
    fn span_guard_closes_at_drop_time() {
        let w = World::paper();
        w.tracer.set_enabled(true);
        {
            let span = w.span(Some(HostId(1)), TraceKind::Hns, "query");
            span.add_round_trips(2);
            w.charge_ms(5.0);
            w.trace(None, TraceKind::Info, "inside");
        }
        let spans = w.tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[0].host, Some(1));
        assert_eq!(spans[0].round_trips, 2);
        assert_eq!(spans[0].duration_us(), 5_000);
        assert_eq!(w.tracer.snapshot()[0].span, Some(spans[0].id));
    }

    #[test]
    fn span_lazy_skips_name_construction_when_disabled() {
        let w = World::paper();
        let span = w.span_lazy(None, TraceKind::Hns, || {
            panic!("name built with tracing disabled")
        });
        assert!(span.id().is_none());
        drop(span);
        assert!(w.tracer.spans().is_empty());
    }

    #[test]
    fn counters_mirror_into_metrics_registry() {
        let w = World::paper();
        w.count_remote_call(128);
        w.count_remote_call(64);
        w.count_local_call();
        let snap = w.metrics().snapshot();
        assert_eq!(snap.counter("net", "remote_calls"), Some(2));
        assert_eq!(snap.counter("net", "bytes_sent"), Some(192));
        assert_eq!(snap.counter("net", "local_calls"), Some(1));
    }

    #[test]
    fn fault_plan_installs_and_clears() {
        let w = World::paper();
        assert!(w.faults().is_none());
        let mut plan = FaultPlan::new();
        plan.crash(HostId(1), w.now(), None);
        w.set_faults(Some(plan));
        assert!(w.faults().expect("installed").host_down(HostId(1), w.now()));
        w.set_faults(None);
        assert!(w.faults().is_none());
    }

    #[test]
    fn sampler_windows_follow_the_virtual_clock() {
        let w = World::paper();
        w.start_sampling(SimDuration::from_ms(10));
        w.count_remote_call(100);
        w.charge_ms(10.0); // closes window 0
        w.count_remote_call(50);
        w.sample_mark("mid");
        w.charge_ms(25.0); // closes windows 1 and 2
        let t = w.finish_sampling().expect("timeline");
        assert!(w.finish_sampling().is_none(), "sampler consumed");
        assert_eq!(t.interval_us, 10_000);
        assert_eq!(t.windows.len(), 3);
        assert_eq!(t.counter_series("net", "remote_calls"), vec![1, 1, 0]);
        assert_eq!(t.counter_series("net", "bytes_sent"), vec![100, 50, 0]);
        assert_eq!(t.marks[0].label, "mid");
        assert_eq!(t.marks[0].window, 1);
    }

    #[test]
    fn sampling_composes_with_batched_charging() {
        let w = World::paper();
        w.clock.set_batched(true);
        w.start_sampling(SimDuration::from_ms(5));
        for _ in 0..10 {
            w.count_remote_call(1);
            w.charge_ms(1.0);
        }
        let t = w.finish_sampling().expect("timeline");
        w.clock.set_batched(false);
        let total: u64 = t.counter_series("net", "remote_calls").iter().sum();
        assert_eq!(total, 10, "batched charges flush before each sample");
        assert!(t.windows.len() >= 2);
    }

    #[test]
    fn window_deltas_conserve_counters_under_threaded_batched_load() {
        const THREADS: u64 = 8;
        const OPS: u64 = 200;
        let w = World::paper();
        w.clock.set_batched(true);
        w.start_sampling(SimDuration::from_ms(5));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..OPS {
                        w.count_remote_call(1);
                        w.metrics().add("load", "ops", 1);
                        w.charge_ms(0.25);
                    }
                    w.clock.flush_local();
                });
            }
        });
        let t = w.finish_sampling().expect("timeline");
        w.clock.set_batched(false);
        // Interleaving decides which window each delta lands in, but the
        // telescoping sum must conserve every counter exactly.
        let last = w.metrics().snapshot();
        let keys = t.counter_keys();
        assert!(!keys.is_empty());
        for (component, name) in &keys {
            let windowed: u64 = t.counter_series(component, name).iter().sum();
            assert_eq!(
                Some(windowed),
                last.counter(component, name),
                "counter {component}/{name} leaked across windows"
            );
        }
        assert!(keys.contains(&("load".to_string(), "ops".to_string())));
        let ops: u64 = t.counter_series("load", "ops").iter().sum();
        assert_eq!(ops, THREADS * OPS);
        assert!(t.windows.len() >= 2, "threads advanced virtual time");
    }

    #[test]
    fn cache_exporters_flush_on_every_sample() {
        use std::sync::atomic::AtomicU64;
        let w = World::paper();
        let stat = Arc::new(AtomicU64::new(0));
        let weak = Arc::downgrade(&stat);
        w.register_cache_exporter(Box::new(move |m| {
            if let Some(stat) = weak.upgrade() {
                m.set_counter("hns_cache", "hits", stat.load(Ordering::Relaxed));
            }
        }));
        w.start_sampling(SimDuration::from_ms(10));
        stat.store(7, Ordering::Relaxed);
        w.charge_ms(10.0);
        stat.store(12, Ordering::Relaxed);
        let t = w.finish_sampling().expect("timeline");
        // Window 0 saw the mid-run export (7), the residual the rest.
        assert_eq!(t.windows[0].counter("hns_cache", "hits"), 7);
        assert_eq!(t.windows[1].counter("hns_cache", "hits"), 5);
        // A dropped owner leaves the exporter inert instead of
        // publishing stale totals.
        drop(stat);
        w.metrics().set_counter("hns_cache", "hits", 99);
        w.export_all_caches();
        assert_eq!(
            w.metrics().snapshot().counter("hns_cache", "hits"),
            Some(99)
        );
    }

    #[test]
    fn snapshot_since_subtracts() {
        let a = CounterSnapshot {
            remote_calls: 5,
            local_calls: 2,
            bytes_sent: 100,
            ns_lookups: 3,
        };
        let b = CounterSnapshot {
            remote_calls: 7,
            local_calls: 2,
            bytes_sent: 150,
            ns_lookups: 4,
        };
        let d = b.since(&a);
        assert_eq!(d.remote_calls, 2);
        assert_eq!(d.local_calls, 0);
        assert_eq!(d.bytes_sent, 50);
        assert_eq!(d.ns_lookups, 1);
    }
}

//! Hosts and the network joining them.
//!
//! The paper's testbed was a set of MicroVAX-IIs joined by a single
//! Ethernet; we model a flat LAN (every host one hop from every other) with
//! named hosts. Host identity is what matters to the HNS experiments: a call
//! between processes on the *same* host is effectively free, while a call
//! between hosts pays the remote-call overhead of the RPC suite in use.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// Identifies a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A simulated network address (what a name service maps host names to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetAddr {
    /// The host this address routes to.
    pub host: HostId,
}

impl NetAddr {
    /// Creates the address of `host`.
    pub fn of(host: HostId) -> Self {
        NetAddr { host }
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "10.0.0.{}", self.host.0)
    }
}

#[derive(Debug, Clone)]
struct HostRecord {
    name: String,
}

/// The set of hosts on the simulated LAN.
///
/// Read-mostly: hosts are added during setup and then queried from many
/// threads. Readers take a snapshot (`Arc` clone under a momentary read
/// lock) and walk it lock-free; writers swap in a rebuilt list, so the
/// query path never blocks behind a writer.
#[derive(Debug)]
pub struct Topology {
    hosts: RwLock<Arc<Vec<HostRecord>>>,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            hosts: RwLock::new(Arc::new(Vec::new())),
        }
    }
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    fn snapshot(&self) -> Arc<Vec<HostRecord>> {
        Arc::clone(&self.hosts.read())
    }

    /// Adds a host with the given human-readable name and returns its id.
    pub fn add_host(&self, name: impl Into<String>) -> HostId {
        let mut hosts = self.hosts.write();
        let mut next = Vec::clone(&hosts);
        let id = HostId(next.len() as u32);
        next.push(HostRecord { name: name.into() });
        *hosts = Arc::new(next);
        id
    }

    /// Returns the name of `host`, if it exists.
    pub fn host_name(&self, host: HostId) -> Option<String> {
        self.snapshot().get(host.0 as usize).map(|h| h.name.clone())
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.snapshot()
            .iter()
            .position(|h| h.name == name)
            .map(|i| HostId(i as u32))
    }

    /// Returns the number of hosts.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Returns true if no hosts have been added.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Returns true when `a` and `b` are the same machine, i.e. a call
    /// between them is a local (effectively free) procedure call.
    pub fn colocated(&self, a: HostId, b: HostId) -> bool {
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_hosts() {
        let t = Topology::new();
        let a = t.add_host("fiji.cs.washington.edu");
        let b = t.add_host("june.cs.washington.edu");
        assert_ne!(a, b);
        assert_eq!(t.host_name(a).as_deref(), Some("fiji.cs.washington.edu"));
        assert_eq!(t.host_by_name("june.cs.washington.edu"), Some(b));
        assert_eq!(t.host_by_name("absent"), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn colocation_is_host_identity() {
        let t = Topology::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        assert!(t.colocated(a, a));
        assert!(!t.colocated(a, b));
    }

    #[test]
    fn net_addr_display_is_stable() {
        let t = Topology::new();
        let a = t.add_host("a");
        assert_eq!(NetAddr::of(a).to_string(), "10.0.0.0");
    }

    #[test]
    fn missing_host_name_is_none() {
        let t = Topology::new();
        assert_eq!(t.host_name(HostId(3)), None);
    }
}

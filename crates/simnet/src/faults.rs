//! Deterministic fault injection: crash windows, link partitions, and
//! latency spikes scheduled in virtual time.
//!
//! A [`FaultPlan`] is a declarative schedule installed on a
//! [`crate::world::World`]. Components that move data between hosts (the
//! HRPC fabric) consult it at each attempt:
//!
//! * a host inside a **crash window** answers nothing — datagrams and
//!   connection attempts to it vanish;
//! * a **partition window** symmetrically severs one (host, host) link;
//! * a **latency spike** adds a fixed per-attempt delay to a link while
//!   its window is active.
//!
//! Everything is expressed in virtual time, so a plan is exactly as
//! deterministic as the simulation it is installed on: two runs with the
//! same plan (and the same workload) charge the same costs, trip the same
//! faults, and export byte-identical traces. With no plan installed every
//! query below is a no-op and no cost is charged, keeping fault-free runs
//! byte-identical to a build without the subsystem.

use crate::time::SimTime;
use crate::topology::HostId;

/// Why traffic from one host to another is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An endpoint is inside a crash window.
    Crashed,
    /// The link between the two hosts is partitioned.
    Partitioned,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Crashed => "crashed",
            FaultKind::Partitioned => "partitioned",
        })
    }
}

/// A half-open `[from, until)` window in virtual time; `None` means the
/// fault never heals.
#[derive(Debug, Clone, Copy)]
struct Window {
    from: SimTime,
    until: Option<SimTime>,
}

impl Window {
    fn active(&self, now: SimTime) -> bool {
        self.from <= now && self.until.is_none_or(|u| now < u)
    }
}

#[derive(Debug, Clone, Copy)]
struct CrashWindow {
    host: HostId,
    window: Window,
}

#[derive(Debug, Clone, Copy)]
struct PartitionWindow {
    a: HostId,
    b: HostId,
    window: Window,
}

#[derive(Debug, Clone, Copy)]
struct LatencySpike {
    a: HostId,
    b: HostId,
    window: Window,
    extra_ms: f64,
}

/// A deterministic schedule of crashes, partitions, and latency spikes.
///
/// Built imperatively (each builder method appends one window) and
/// installed via [`crate::world::World::set_faults`]. Windows may overlap
/// freely; a host may crash and restart repeatedly by adding several
/// windows for it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<CrashWindow>,
    partitions: Vec<PartitionWindow>,
    spikes: Vec<LatencySpike>,
}

impl FaultPlan {
    /// An empty plan (identical in effect to no plan at all).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `host` to be crashed during `[from, until)`; `None`
    /// means it never restarts.
    pub fn crash(&mut self, host: HostId, from: SimTime, until: Option<SimTime>) -> &mut Self {
        self.crashes.push(CrashWindow {
            host,
            window: Window { from, until },
        });
        self
    }

    /// Schedules a symmetric partition of the `a` ↔ `b` link during
    /// `[from, until)`.
    pub fn partition(
        &mut self,
        a: HostId,
        b: HostId,
        from: SimTime,
        until: Option<SimTime>,
    ) -> &mut Self {
        self.partitions.push(PartitionWindow {
            a,
            b,
            window: Window { from, until },
        });
        self
    }

    /// Schedules `extra_ms` of additional one-way latency on the `a` ↔
    /// `b` link during `[from, until)`. Overlapping spikes add up.
    pub fn latency_spike(
        &mut self,
        a: HostId,
        b: HostId,
        from: SimTime,
        until: Option<SimTime>,
        extra_ms: f64,
    ) -> &mut Self {
        self.spikes.push(LatencySpike {
            a,
            b,
            window: Window { from, until },
            extra_ms,
        });
        self
    }

    /// True if the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.partitions.is_empty() && self.spikes.is_empty()
    }

    /// Whether `host` is inside a crash window at `now`.
    pub fn host_down(&self, host: HostId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.host == host && c.window.active(now))
    }

    /// Whether the `a` ↔ `b` link is partitioned at `now` (symmetric).
    pub fn link_partitioned(&self, a: HostId, b: HostId, now: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|p| ((p.a == a && p.b == b) || (p.a == b && p.b == a)) && p.window.active(now))
    }

    /// Additional one-way latency on the `a` ↔ `b` link at `now`, in
    /// milliseconds (0 with no active spike; overlapping spikes add up).
    pub fn extra_latency_ms(&self, a: HostId, b: HostId, now: SimTime) -> f64 {
        self.spikes
            .iter()
            .filter(|s| ((s.a == a && s.b == b) || (s.a == b && s.b == a)) && s.window.active(now))
            .map(|s| s.extra_ms)
            .sum()
    }

    /// Whether traffic from `src` to `dst` is blocked at `now`, and why.
    /// A crashed endpoint takes precedence over a partition.
    pub fn blocks(&self, src: HostId, dst: HostId, now: SimTime) -> Option<FaultKind> {
        if self.host_down(dst, now) || self.host_down(src, now) {
            return Some(FaultKind::Crashed);
        }
        if self.link_partitioned(src, dst, now) {
            return Some(FaultKind::Partitioned);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ms(ms)
    }

    #[test]
    fn empty_plan_blocks_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.host_down(HostId(1), t(0)));
        assert!(plan.blocks(HostId(1), HostId(2), t(5)).is_none());
        assert_eq!(plan.extra_latency_ms(HostId(1), HostId(2), t(5)), 0.0);
    }

    #[test]
    fn crash_window_is_half_open_and_restart_heals() {
        let mut plan = FaultPlan::new();
        plan.crash(HostId(3), t(100), Some(t(200)));
        assert!(!plan.host_down(HostId(3), t(99)));
        assert!(plan.host_down(HostId(3), t(100)), "inclusive start");
        assert!(plan.host_down(HostId(3), t(199)));
        assert!(!plan.host_down(HostId(3), t(200)), "exclusive end");
        assert!(!plan.host_down(HostId(4), t(150)), "only the named host");
        assert_eq!(
            plan.blocks(HostId(1), HostId(3), t(150)),
            Some(FaultKind::Crashed)
        );
        assert_eq!(
            plan.blocks(HostId(3), HostId(1), t(150)),
            Some(FaultKind::Crashed),
            "a crashed host cannot send either"
        );
        assert!(plan.blocks(HostId(1), HostId(3), t(250)).is_none());
    }

    #[test]
    fn open_ended_crash_never_heals() {
        let mut plan = FaultPlan::new();
        plan.crash(HostId(1), t(10), None);
        assert!(plan.host_down(HostId(1), t(1_000_000)));
    }

    #[test]
    fn partitions_are_symmetric() {
        let mut plan = FaultPlan::new();
        plan.partition(HostId(1), HostId(2), t(0), Some(t(50)));
        assert!(plan.link_partitioned(HostId(1), HostId(2), t(10)));
        assert!(plan.link_partitioned(HostId(2), HostId(1), t(10)));
        assert!(!plan.link_partitioned(HostId(1), HostId(3), t(10)));
        assert_eq!(
            plan.blocks(HostId(2), HostId(1), t(10)),
            Some(FaultKind::Partitioned)
        );
        assert!(plan.blocks(HostId(2), HostId(1), t(60)).is_none());
    }

    #[test]
    fn crash_takes_precedence_over_partition() {
        let mut plan = FaultPlan::new();
        plan.partition(HostId(1), HostId(2), t(0), None);
        plan.crash(HostId(2), t(0), None);
        assert_eq!(
            plan.blocks(HostId(1), HostId(2), t(5)),
            Some(FaultKind::Crashed)
        );
    }

    #[test]
    fn overlapping_spikes_add_up() {
        let mut plan = FaultPlan::new();
        plan.latency_spike(HostId(1), HostId(2), t(0), Some(t(100)), 40.0);
        plan.latency_spike(HostId(2), HostId(1), t(50), Some(t(150)), 10.0);
        assert_eq!(plan.extra_latency_ms(HostId(1), HostId(2), t(10)), 40.0);
        assert_eq!(plan.extra_latency_ms(HostId(1), HostId(2), t(60)), 50.0);
        assert_eq!(plan.extra_latency_ms(HostId(2), HostId(1), t(120)), 10.0);
        assert_eq!(plan.extra_latency_ms(HostId(1), HostId(2), t(150)), 0.0);
        assert!(
            plan.blocks(HostId(1), HostId(2), t(60)).is_none(),
            "spikes slow traffic, they do not block it"
        );
    }

    #[test]
    fn repeated_windows_model_crash_restart_crash() {
        let mut plan = FaultPlan::new();
        plan.crash(HostId(7), t(0), Some(t(10)))
            .crash(HostId(7), t(20), Some(t(30)));
        assert!(plan.host_down(HostId(7), t(5)));
        assert!(!plan.host_down(HostId(7), t(15)), "restarted");
        assert!(plan.host_down(HostId(7), t(25)), "crashed again");
    }
}

//! `simnet` — the deterministic virtual-time substrate.
//!
//! The paper measured its prototype on MicroVAX-IIs joined by an Ethernet.
//! This crate substitutes a calibrated simulation for that testbed:
//!
//! * [`time`] / [`clock`] — microsecond-resolution virtual time; components
//!   charge calibrated costs against a shared [`clock::VirtualClock`] as a
//!   single logical operation proceeds, reproducing the paper's
//!   "elapsed time at light load" methodology deterministically.
//! * [`topology`] — named hosts on a flat LAN; colocation (same host) is
//!   what makes a call local and effectively free.
//! * [`costs`] — every calibrated constant, each traced to a measured
//!   primitive in the paper.
//! * [`trace`] — re-export of the [`obs`] span/event recorder used by the
//!   Figure 2.1 walkthrough and the per-query flame breakdowns.
//! * [`world`] — the shared environment (clock + topology + costs + trace +
//!   structural counters + the unified [`obs::MetricsRegistry`]).
//! * [`rng`] — a self-contained deterministic PRNG.
//! * [`des`] — a small discrete-event/queueing core for the load ablation.
//! * [`faults`] — deterministic fault injection (crash windows, link
//!   partitions, latency spikes) scheduled in virtual time.
//!
//! # Examples
//!
//! ```
//! use simnet::world::World;
//!
//! let world = World::paper();
//! let client = world.add_host("tahiti.cs.washington.edu");
//! let server = world.add_host("fiji.cs.washington.edu");
//! assert!(!world.topology.colocated(client, server));
//!
//! // A component charges the cost of one native BIND lookup.
//! let ms = world.costs.native_bind_lookup(1);
//! world.charge_ms(ms);
//! assert!((world.now().as_ms_f64() - 27.0).abs() < 1.0);
//! ```
#![warn(missing_docs)]

pub mod clock;
pub mod costs;
pub mod des;
pub mod faults;
pub mod rng;
pub mod time;
pub mod topology;
pub mod trace;
pub mod world;

pub use obs;

pub use clock::{Clock, VirtualClock};
pub use costs::{CacheForm, CostModel, RpcSuiteKind};
pub use faults::{FaultKind, FaultPlan};
pub use time::{SimDuration, SimTime};
pub use topology::{HostId, NetAddr, Topology};
pub use world::{CounterSnapshot, World, WorldSpan};

//! Clocks that components charge virtual time against.
//!
//! The paper's methodology measures the *elapsed time of one operation at
//! light load*: a single logical thread of control moves through the client,
//! the HNS, the NSMs, and the underlying name services. We reproduce that by
//! letting every component advance a shared [`VirtualClock`] by its
//! calibrated cost as the (real, synchronous) call proceeds. The total
//! virtual time elapsed across an operation is exactly the paper's elapsed
//! time, computed deterministically.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::{SimDuration, SimTime};

/// A source of virtual time that can be advanced by costs.
pub trait Clock: Send + Sync {
    /// Returns the current virtual instant.
    fn now(&self) -> SimTime;

    /// Advances virtual time by `d`.
    fn advance(&self, d: SimDuration);
}

/// Stripe count for [`VirtualClock`]; power of two.
const STRIPES: usize = 8;

/// One cache line per stripe so concurrent advances don't bounce a
/// single word between cores.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ClockStripe(AtomicU64);

/// The standard monotonically-advancing virtual clock.
///
/// Cheap to share (`Arc<VirtualClock>`), safe to advance from any thread.
///
/// Advances land on a per-thread stripe and `now()` sums all stripes,
/// so concurrent chargers never contend on one cache line. Because
/// addition commutes, single-threaded runs read exactly the same
/// instants as the unstriped design, and a reader's successive `now()`
/// calls are monotone (each stripe only grows, and SeqCst loads never
/// observe older values than a prior load).
///
/// # Examples
///
/// ```
/// use simnet::clock::{Clock, VirtualClock};
/// use simnet::time::SimDuration;
///
/// let clock = VirtualClock::new();
/// clock.advance(SimDuration::from_ms(27));
/// assert_eq!(clock.now().as_us(), 27_000);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    stripes: [ClockStripe; STRIPES],
}

impl VirtualClock {
    /// Creates a clock at the origin of virtual time.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stripe the calling thread charges against.
    fn stripe(&self) -> &AtomicU64 {
        use std::hash::{Hash, Hasher};
        thread_local! {
            static STRIPE_IDX: usize = {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish() as usize
            };
        }
        let idx = STRIPE_IDX.with(|i| *i) & (STRIPES - 1);
        &self.stripes[idx].0
    }

    /// Resets the clock to the origin. Intended for experiment harnesses
    /// that reuse one world across trials.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::SeqCst);
        }
    }

    /// Measures the virtual time consumed by `f`.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> (R, SimDuration) {
        let start = self.now();
        let r = f();
        (r, self.now().since(start))
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_us(
            self.stripes
                .iter()
                .map(|s| s.0.load(Ordering::SeqCst))
                .sum(),
        )
    }

    fn advance(&self, d: SimDuration) {
        self.stripe().fetch_add(d.as_us(), Ordering::SeqCst);
    }
}

/// A stopwatch over a [`Clock`], for measuring phases of an operation.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: SimTime,
}

impl Stopwatch {
    /// Starts a stopwatch at the clock's current instant.
    pub fn start(clock: &dyn Clock) -> Self {
        Stopwatch { start: clock.now() }
    }

    /// Returns the virtual time elapsed since the stopwatch started.
    pub fn elapsed(&self, clock: &dyn Clock) -> SimDuration {
        clock.now().since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_ms(5));
        c.advance(SimDuration::from_us(250));
        assert_eq!(c.now().as_us(), 5250);
    }

    #[test]
    fn reset_returns_to_origin() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_ms(100));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn time_measures_closure_cost() {
        let c = VirtualClock::new();
        let (value, took) = c.time(|| {
            c.advance(SimDuration::from_ms(33));
            42
        });
        assert_eq!(value, 42);
        assert_eq!(took, SimDuration::from_ms(33));
    }

    #[test]
    fn stopwatch_tracks_elapsed() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_ms(10));
        let sw = Stopwatch::start(&c);
        c.advance(SimDuration::from_ms(7));
        assert_eq!(sw.elapsed(&c), SimDuration::from_ms(7));
    }

    #[test]
    fn reads_are_monotone_under_concurrent_advances() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        c.advance(SimDuration::from_us(1));
                    }
                })
            })
            .collect();
        let mut last = c.now();
        for _ in 0..20_000 {
            let now = c.now();
            assert!(now >= last, "clock went backwards: {now:?} < {last:?}");
            last = now;
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        assert_eq!(c.now().as_us(), 80_000);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(SimDuration::from_us(1));
                }
            }));
        }
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(c.now().as_us(), 8000);
    }
}

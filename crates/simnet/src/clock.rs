//! Clocks that components charge virtual time against.
//!
//! The paper's methodology measures the *elapsed time of one operation at
//! light load*: a single logical thread of control moves through the client,
//! the HNS, the NSMs, and the underlying name services. We reproduce that by
//! letting every component advance a shared [`VirtualClock`] by its
//! calibrated cost as the (real, synchronous) call proceeds. The total
//! virtual time elapsed across an operation is exactly the paper's elapsed
//! time, computed deterministically.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::time::{SimDuration, SimTime};

/// A source of virtual time that can be advanced by costs.
pub trait Clock: Send + Sync {
    /// Returns the current virtual instant.
    fn now(&self) -> SimTime;

    /// Advances virtual time by `d`.
    fn advance(&self, d: SimDuration);
}

/// Stripe count for [`VirtualClock`]; power of two.
const STRIPES: usize = 8;

/// One cache line per stripe so concurrent advances don't bounce a
/// single word between cores.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ClockStripe(AtomicU64);

/// Process-unique ids for clocks, so batched thread-local charges can
/// never be mis-attributed to a different clock that happens to reuse
/// a freed clock's address.
static NEXT_CLOCK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread unflushed charges, keyed by clock id. Almost always
    /// holds at most one entry (a thread drives one world at a time),
    /// so a linear scan beats any map.
    static PENDING: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The standard monotonically-advancing virtual clock.
///
/// Cheap to share (`Arc<VirtualClock>`), safe to advance from any thread.
///
/// Advances land on a per-thread stripe and `now()` sums all stripes,
/// so concurrent chargers never contend on one cache line. Because
/// addition commutes, single-threaded runs read exactly the same
/// instants as the unstriped design, and a reader's successive `now()`
/// calls are monotone: each stripe only grows, and per-location
/// coherence guarantees a later load of a stripe never observes an
/// older value than an earlier load, even with `Relaxed` ordering — so
/// the sum never decreases for any single reader.
///
/// # Batched charging
///
/// [`VirtualClock::set_batched`] turns per-charge shared-atomic updates
/// into thread-local accumulation: `advance` adds to a thread-local
/// pending cell and the pending total is flushed to this thread's
/// stripe whenever the same thread calls `now()` (or
/// [`VirtualClock::flush_local`]). Because every read flushes first,
/// a single-threaded run observes *exactly* the same sequence of
/// instants as unbatched charging — golden outputs stay byte-identical
/// — while hot loops that charge many times between reads skip the
/// shared-cache-line traffic entirely. Cross-thread visibility of
/// another thread's still-pending charges lags until that thread reads
/// or flushes; a thread that stops using a batched clock must call
/// `flush_local` or its tail charges are dropped with the thread.
///
/// # Examples
///
/// ```
/// use simnet::clock::{Clock, VirtualClock};
/// use simnet::time::SimDuration;
///
/// let clock = VirtualClock::new();
/// clock.advance(SimDuration::from_ms(27));
/// assert_eq!(clock.now().as_us(), 27_000);
/// ```
#[derive(Debug)]
pub struct VirtualClock {
    id: u64,
    batched: AtomicBool,
    stripes: [ClockStripe; STRIPES],
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock {
            id: NEXT_CLOCK_ID.fetch_add(1, Ordering::Relaxed),
            batched: AtomicBool::new(false),
            stripes: Default::default(),
        }
    }
}

impl VirtualClock {
    /// Creates a clock at the origin of virtual time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables batched charging (see the type docs). When
    /// disabling, the calling thread's pending charges are flushed;
    /// other threads flush on their own next read.
    pub fn set_batched(&self, enabled: bool) {
        self.batched.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.flush_local();
        }
    }

    /// Whether batched charging is enabled.
    pub fn batched(&self) -> bool {
        self.batched.load(Ordering::Relaxed)
    }

    /// Flushes the calling thread's pending batched charges into its
    /// stripe. A no-op when nothing is pending.
    pub fn flush_local(&self) {
        let pending =
            PENDING.with_borrow_mut(|v| match v.iter().position(|&(id, _)| id == self.id) {
                Some(i) => v.swap_remove(i).1,
                None => 0,
            });
        if pending > 0 {
            self.stripe().fetch_add(pending, Ordering::Relaxed);
        }
    }

    /// The stripe the calling thread charges against.
    fn stripe(&self) -> &AtomicU64 {
        use std::hash::{Hash, Hasher};
        thread_local! {
            static STRIPE_IDX: usize = {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish() as usize
            };
        }
        let idx = STRIPE_IDX.with(|i| *i) & (STRIPES - 1);
        &self.stripes[idx].0
    }

    /// Resets the clock to the origin. Intended for experiment harnesses
    /// that reuse one world across trials. The calling thread's pending
    /// batched charges are discarded with the elapsed time.
    pub fn reset(&self) {
        PENDING.with_borrow_mut(|v| v.retain(|&(id, _)| id != self.id));
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// Measures the virtual time consumed by `f`.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> (R, SimDuration) {
        let start = self.now();
        let r = f();
        (r, self.now().since(start))
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        if self.batched() {
            self.flush_local();
        }
        SimTime::from_us(
            self.stripes
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum(),
        )
    }

    fn advance(&self, d: SimDuration) {
        let us = d.as_us();
        if self.batched() {
            PENDING.with_borrow_mut(|v| match v.iter_mut().find(|(id, _)| *id == self.id) {
                Some((_, pending)) => *pending += us,
                None => v.push((self.id, us)),
            });
        } else {
            self.stripe().fetch_add(us, Ordering::Relaxed);
        }
    }
}

/// A stopwatch over a [`Clock`], for measuring phases of an operation.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: SimTime,
}

impl Stopwatch {
    /// Starts a stopwatch at the clock's current instant.
    pub fn start(clock: &dyn Clock) -> Self {
        Stopwatch { start: clock.now() }
    }

    /// Returns the virtual time elapsed since the stopwatch started.
    pub fn elapsed(&self, clock: &dyn Clock) -> SimDuration {
        clock.now().since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_ms(5));
        c.advance(SimDuration::from_us(250));
        assert_eq!(c.now().as_us(), 5250);
    }

    #[test]
    fn reset_returns_to_origin() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_ms(100));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn time_measures_closure_cost() {
        let c = VirtualClock::new();
        let (value, took) = c.time(|| {
            c.advance(SimDuration::from_ms(33));
            42
        });
        assert_eq!(value, 42);
        assert_eq!(took, SimDuration::from_ms(33));
    }

    #[test]
    fn stopwatch_tracks_elapsed() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_ms(10));
        let sw = Stopwatch::start(&c);
        c.advance(SimDuration::from_ms(7));
        assert_eq!(sw.elapsed(&c), SimDuration::from_ms(7));
    }

    /// Batched charging must be observationally identical to unbatched
    /// charging for a single thread: every read flushes first, so the
    /// sequence of instants (the input to every golden output) matches.
    #[test]
    fn batched_single_thread_reads_identical_instants() {
        let plain = VirtualClock::new();
        let batched = VirtualClock::new();
        batched.set_batched(true);
        let mut seen = Vec::new();
        for i in 0..50u64 {
            plain.advance(SimDuration::from_us(i * 7 + 1));
            batched.advance(SimDuration::from_us(i * 7 + 1));
            if i % 3 == 0 {
                seen.push((plain.now(), batched.now()));
            }
        }
        for (p, b) in seen {
            assert_eq!(p, b);
        }
        assert_eq!(plain.now(), batched.now());
    }

    #[test]
    fn batched_charges_flush_on_demand_and_on_disable() {
        let c = VirtualClock::new();
        c.set_batched(true);
        c.advance(SimDuration::from_ms(5));
        c.flush_local();
        c.advance(SimDuration::from_ms(2));
        // Disabling flushes the caller's pending charges.
        c.set_batched(false);
        assert_eq!(c.now().as_us(), 7_000);
    }

    #[test]
    fn batched_pending_is_per_clock() {
        let a = VirtualClock::new();
        let b = VirtualClock::new();
        a.set_batched(true);
        b.set_batched(true);
        a.advance(SimDuration::from_ms(3));
        b.advance(SimDuration::from_ms(11));
        assert_eq!(a.now().as_us(), 3_000);
        assert_eq!(b.now().as_us(), 11_000);
    }

    #[test]
    fn batched_worker_thread_charges_merge_after_flush() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        c.set_batched(true);
        c.advance(SimDuration::from_ms(1));
        let worker = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    c.advance(SimDuration::from_us(10));
                }
                c.flush_local();
            })
        };
        worker.join().expect("worker");
        assert_eq!(c.now().as_us(), 2_000);
    }

    #[test]
    fn reads_are_monotone_under_concurrent_advances() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        c.advance(SimDuration::from_us(1));
                    }
                })
            })
            .collect();
        let mut last = c.now();
        for _ in 0..20_000 {
            let now = c.now();
            assert!(now >= last, "clock went backwards: {now:?} < {last:?}");
            last = now;
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        assert_eq!(c.now().as_us(), 80_000);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(SimDuration::from_us(1));
                }
            }));
        }
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(c.now().as_us(), 8000);
    }
}

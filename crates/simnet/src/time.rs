//! Virtual time: instants and durations with microsecond resolution.
//!
//! All experiment results in this repository are reported in *virtual
//! milliseconds*. The paper measured elapsed wall-clock time on a 1987
//! testbed; we reproduce the same arithmetic deterministically by charging
//! calibrated costs against a virtual clock (see [`crate::clock`]).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1000)
    }

    /// Returns the instant as whole microseconds since the origin.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds since the origin.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so this indicates a harness bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("virtual time ran backwards"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1000)
    }

    /// Creates a duration from fractional milliseconds (rounded to the
    /// nearest microsecond, saturating at zero for negative input).
    pub fn from_ms_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1000.0).round() as u64)
        }
    }

    /// Returns the duration as whole microseconds.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor (rounded).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_ms_f64(self.as_ms_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimDuration::from_ms(3).as_us(), 3000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2000);
        assert_eq!(SimDuration::from_us(1500).as_ms_f64(), 1.5);
    }

    #[test]
    fn from_ms_f64_rounds_and_saturates() {
        assert_eq!(SimDuration::from_ms_f64(0.0015).as_us(), 2);
        assert_eq!(SimDuration::from_ms_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ms_f64(27.0).as_us(), 27_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10) + SimDuration::from_ms(5);
        assert_eq!(t, SimTime::from_ms(15));
        assert_eq!(t.since(SimTime::from_ms(10)), SimDuration::from_ms(5));
        assert_eq!(SimDuration::from_ms(4) * 3, SimDuration::from_ms(12));
        assert_eq!(SimDuration::from_ms(12) / 4, SimDuration::from_ms(3));
    }

    #[test]
    fn sum_and_mul_f64() {
        let total: SimDuration = [1, 2, 3].iter().map(|&m| SimDuration::from_ms(m)).sum();
        assert_eq!(total, SimDuration::from_ms(6));
        assert_eq!(
            SimDuration::from_ms(10).mul_f64(0.5),
            SimDuration::from_ms(5)
        );
    }

    #[test]
    #[should_panic(expected = "virtual time ran backwards")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_ms(1).since(SimTime::from_ms(2));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_ms(1).saturating_since(SimTime::from_ms(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_ms(1).saturating_sub(SimDuration::from_ms(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_ms(1).checked_sub(SimDuration::from_ms(2)),
            None
        );
    }

    #[test]
    fn display_formats_milliseconds() {
        assert_eq!(SimDuration::from_us(27_500).to_string(), "27.50ms");
        assert_eq!(SimTime::from_us(1_250).to_string(), "1.250ms");
    }
}

//! Open-arrival workload generators.

use crate::rng::DetRng;
use crate::time::SimTime;

/// The inter-arrival process of an open workload.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Poisson arrivals at the given rate (jobs per millisecond).
    Poisson {
        /// Mean arrival rate, jobs per millisecond.
        rate_per_ms: f64,
    },
    /// Evenly spaced arrivals at the given rate (jobs per millisecond).
    Uniform {
        /// Arrival rate, jobs per millisecond.
        rate_per_ms: f64,
    },
}

/// An open workload: a stream of job arrival instants.
#[derive(Debug)]
pub struct OpenWorkload {
    process: ArrivalProcess,
    rng: DetRng,
    next: SimTime,
    emitted: u64,
    limit: u64,
}

impl OpenWorkload {
    /// Creates a workload emitting at most `limit` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not strictly positive.
    pub fn new(process: ArrivalProcess, limit: u64, rng: DetRng) -> Self {
        let rate = match process {
            ArrivalProcess::Poisson { rate_per_ms } | ArrivalProcess::Uniform { rate_per_ms } => {
                rate_per_ms
            }
        };
        assert!(rate > 0.0, "arrival rate must be positive");
        OpenWorkload {
            process,
            rng,
            next: SimTime::ZERO,
            emitted: 0,
            limit,
        }
    }

    fn step(&mut self) -> SimTime {
        let gap_ms = match self.process {
            ArrivalProcess::Poisson { rate_per_ms } => self.rng.next_exp(1.0 / rate_per_ms),
            ArrivalProcess::Uniform { rate_per_ms } => 1.0 / rate_per_ms,
        };
        self.next += crate::time::SimDuration::from_ms_f64(gap_ms);
        self.next
    }
}

impl Iterator for OpenWorkload {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.emitted >= self.limit {
            return None;
        }
        self.emitted += 1;
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let wl = OpenWorkload::new(
            ArrivalProcess::Uniform { rate_per_ms: 0.5 },
            3,
            DetRng::new(1),
        );
        let times: Vec<u64> = wl.map(|t| t.as_us()).collect();
        assert_eq!(times, vec![2000, 4000, 6000]);
    }

    #[test]
    fn poisson_rate_approximately_correct() {
        let n = 50_000;
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson { rate_per_ms: 0.2 },
            n,
            DetRng::new(7),
        );
        let last = wl.last().expect("nonempty");
        let measured_rate = n as f64 / last.as_ms_f64();
        assert!((measured_rate - 0.2).abs() < 0.01, "rate {measured_rate}");
    }

    #[test]
    fn limit_is_respected() {
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson { rate_per_ms: 1.0 },
            10,
            DetRng::new(2),
        );
        assert_eq!(wl.count(), 10);
    }

    #[test]
    fn arrivals_are_monotone() {
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson { rate_per_ms: 3.0 },
            1000,
            DetRng::new(3),
        );
        let mut prev = SimTime::ZERO;
        for t in wl {
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = OpenWorkload::new(
            ArrivalProcess::Poisson { rate_per_ms: 0.0 },
            1,
            DetRng::new(1),
        );
    }
}

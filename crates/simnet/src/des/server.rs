//! FIFO queueing servers with deterministic or exponential service times.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a server within a [`crate::des::QueueSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(pub usize);

/// The service-time distribution of a server.
#[derive(Debug, Clone, Copy)]
pub enum ServiceTime {
    /// Every job takes exactly this long.
    Deterministic(SimDuration),
    /// Exponentially distributed with the given mean (milliseconds).
    Exponential {
        /// Mean service time in milliseconds.
        mean_ms: f64,
    },
}

impl ServiceTime {
    /// Draws one service time.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            ServiceTime::Deterministic(d) => d,
            ServiceTime::Exponential { mean_ms } => SimDuration::from_ms_f64(rng.next_exp(mean_ms)),
        }
    }

    /// Mean service time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            ServiceTime::Deterministic(d) => d.as_ms_f64(),
            ServiceTime::Exponential { mean_ms } => mean_ms,
        }
    }
}

/// A single FIFO server: one job in service at a time, the rest waiting.
#[derive(Debug)]
pub struct FifoServer {
    service: ServiceTime,
    /// Instant the server next becomes free.
    free_at: SimTime,
    /// Total time the server has spent serving.
    busy: SimDuration,
    /// Jobs completed.
    completed: u64,
}

impl FifoServer {
    /// Creates an idle server with the given service-time distribution.
    pub fn new(service: ServiceTime) -> Self {
        FifoServer {
            service,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            completed: 0,
        }
    }

    /// Admits a job arriving at `arrival`; returns its departure instant.
    ///
    /// FIFO semantics: the job starts at `max(arrival, free_at)`.
    pub fn admit(&mut self, arrival: SimTime, rng: &mut DetRng) -> SimTime {
        let start = if arrival > self.free_at {
            arrival
        } else {
            self.free_at
        };
        let service = self.service.sample(rng);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        self.completed += 1;
        done
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Utilization over the horizon `[0, end]`.
    pub fn utilization(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_ms_f64() / end.as_ms_f64()
        }
    }

    /// Mean service time in milliseconds.
    pub fn mean_service_ms(&self) -> f64 {
        self.service.mean_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new(ServiceTime::Deterministic(SimDuration::from_ms(10)));
        let mut rng = DetRng::new(1);
        let done = s.admit(SimTime::from_ms(5), &mut rng);
        assert_eq!(done, SimTime::from_ms(15));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = FifoServer::new(ServiceTime::Deterministic(SimDuration::from_ms(10)));
        let mut rng = DetRng::new(1);
        let d1 = s.admit(SimTime::from_ms(0), &mut rng);
        let d2 = s.admit(SimTime::from_ms(1), &mut rng);
        assert_eq!(d1, SimTime::from_ms(10));
        assert_eq!(d2, SimTime::from_ms(20));
        assert_eq!(s.completed(), 2);
        assert_eq!(s.busy_time(), SimDuration::from_ms(20));
    }

    #[test]
    fn utilization_over_horizon() {
        let mut s = FifoServer::new(ServiceTime::Deterministic(SimDuration::from_ms(10)));
        let mut rng = DetRng::new(1);
        s.admit(SimTime::ZERO, &mut rng);
        assert!((s.utilization(SimTime::from_ms(20)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn exponential_service_mean() {
        let st = ServiceTime::Exponential { mean_ms: 25.0 };
        let mut rng = DetRng::new(3);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| st.sample(&mut rng).as_ms_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 25.0).abs() < 1.0, "mean {mean}");
        assert_eq!(st.mean_ms(), 25.0);
    }
}

//! The queueing simulation driver.

use crate::rng::DetRng;
use crate::time::SimTime;

use super::server::{FifoServer, ServerId, ServiceTime};
use super::stats::{ResponseStats, StatsCollector};
use super::workload::OpenWorkload;

/// Chooses which server handles the `n`-th job.
pub type Router = Box<dyn FnMut(u64, &mut DetRng) -> ServerId>;

/// An open queueing network of FIFO servers fed by one workload.
///
/// Because each server is FIFO and jobs are routed at arrival time, the
/// simulation processes arrivals in time order and computes departures
/// directly — equivalent to a full event-driven run for this network shape,
/// but simpler and deterministic.
#[derive(Debug, Default)]
pub struct QueueSim {
    servers: Vec<FifoServer>,
}

impl QueueSim {
    /// Creates a simulation with no servers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a server and returns its id.
    pub fn add_server(&mut self, service: ServiceTime) -> ServerId {
        self.servers.push(FifoServer::new(service));
        ServerId(self.servers.len() - 1)
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Runs the workload to completion, routing each arrival with `route`.
    ///
    /// Returns response-time statistics, or `None` for an empty workload.
    ///
    /// # Panics
    ///
    /// Panics if a router returns an unknown [`ServerId`] or if no servers
    /// were added.
    pub fn run_open(
        &mut self,
        workload: OpenWorkload,
        mut route: Router,
        rng: &mut DetRng,
    ) -> Option<ResponseStats> {
        assert!(!self.servers.is_empty(), "QueueSim has no servers");
        let mut collector = StatsCollector::new();
        let mut horizon = SimTime::ZERO;
        for (job, arrival) in workload.enumerate() {
            let sid = route(job as u64, rng);
            let server = self
                .servers
                .get_mut(sid.0)
                .expect("router returned unknown server");
            let done = server.admit(arrival, rng);
            collector.record(done.since(arrival));
            if done > horizon {
                horizon = done;
            }
        }
        collector.finish()
    }

    /// Utilization of `server` over the horizon `end`.
    pub fn utilization(&self, server: ServerId, end: SimTime) -> f64 {
        self.servers[server.0].utilization(end)
    }

    /// Jobs completed by `server`.
    pub fn completed(&self, server: ServerId) -> u64 {
        self.servers[server.0].completed()
    }
}

/// A router sending every job to the same server.
pub fn route_all_to(server: ServerId) -> Router {
    Box::new(move |_, _| server)
}

/// A router spreading jobs uniformly at random over `n` servers.
pub fn route_uniform(n: usize) -> Router {
    assert!(n > 0, "route_uniform over zero servers");
    Box::new(move |_, rng| ServerId(rng.next_below(n as u64) as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::workload::ArrivalProcess;
    use crate::time::SimDuration;

    #[test]
    fn mm1_mean_response_matches_theory() {
        // M/M/1: mean response = 1 / (mu - lambda).
        let lambda = 0.02; // jobs/ms
        let mean_service = 25.0; // ms => mu = 0.04/ms, rho = 0.5
        let mut sim = QueueSim::new();
        let s = sim.add_server(ServiceTime::Exponential {
            mean_ms: mean_service,
        });
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson {
                rate_per_ms: lambda,
            },
            120_000,
            DetRng::new(11),
        );
        let stats = sim
            .run_open(wl, route_all_to(s), &mut DetRng::new(12))
            .expect("jobs completed");
        let theory = 1.0 / (1.0 / mean_service - lambda); // 50 ms
        let err = (stats.mean_ms - theory).abs() / theory;
        assert!(err < 0.08, "mean {} vs theory {theory}", stats.mean_ms);
    }

    #[test]
    fn federation_beats_central_server_under_load() {
        // One central server at rho ~ 0.9 vs four federated servers each at
        // rho ~ 0.225: the paper's scalability argument in miniature.
        let lambda = 0.036;
        let service = ServiceTime::Exponential { mean_ms: 25.0 };

        let mut central = QueueSim::new();
        let c = central.add_server(service);
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson {
                rate_per_ms: lambda,
            },
            60_000,
            DetRng::new(21),
        );
        let central_stats = central
            .run_open(wl, route_all_to(c), &mut DetRng::new(22))
            .expect("completed");

        let mut fed = QueueSim::new();
        for _ in 0..4 {
            fed.add_server(service);
        }
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson {
                rate_per_ms: lambda,
            },
            60_000,
            DetRng::new(21),
        );
        let fed_stats = fed
            .run_open(wl, route_uniform(4), &mut DetRng::new(22))
            .expect("completed");

        assert!(
            fed_stats.mean_ms * 3.0 < central_stats.mean_ms,
            "federated {} vs central {}",
            fed_stats.mean_ms,
            central_stats.mean_ms
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = QueueSim::new();
            let s = sim.add_server(ServiceTime::Deterministic(SimDuration::from_ms(10)));
            let wl = OpenWorkload::new(
                ArrivalProcess::Poisson { rate_per_ms: 0.05 },
                5_000,
                DetRng::new(5),
            );
            sim.run_open(wl, route_all_to(s), &mut DetRng::new(6))
                .expect("completed")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn utilization_and_completed_exposed() {
        let mut sim = QueueSim::new();
        let s = sim.add_server(ServiceTime::Deterministic(SimDuration::from_ms(10)));
        let wl = OpenWorkload::new(
            ArrivalProcess::Uniform { rate_per_ms: 0.05 },
            10,
            DetRng::new(1),
        );
        sim.run_open(wl, route_all_to(s), &mut DetRng::new(2))
            .expect("completed");
        assert_eq!(sim.completed(s), 10);
        assert!(sim.utilization(s, SimTime::from_ms(200)) > 0.0);
        assert_eq!(sim.server_count(), 1);
    }

    #[test]
    #[should_panic(expected = "QueueSim has no servers")]
    fn run_without_servers_panics() {
        let mut sim = QueueSim::new();
        let wl = OpenWorkload::new(
            ArrivalProcess::Uniform { rate_per_ms: 1.0 },
            1,
            DetRng::new(1),
        );
        let _ = sim.run_open(wl, route_uniform(1), &mut DetRng::new(2));
    }
}

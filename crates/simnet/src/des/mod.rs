//! A small discrete-event simulation core for load experiments.
//!
//! The paper argues (§2, *Scalability*) that direct access distributes the
//! naming load naturally across the subsystems' own name services, where a
//! reregistration-based global service concentrates it. The elapsed-time
//! methodology of [`crate::clock`] measures one operation at light load;
//! this module provides open-workload queueing simulation (Poisson arrivals
//! into FIFO servers) to measure response times *under* load for the
//! scalability ablation (experiment A3).

mod event;
mod server;
mod sim;
mod stats;
mod workload;

pub use event::{EventQueue, QueuedEvent};
pub use server::{FifoServer, ServerId, ServiceTime};
pub use sim::{route_all_to, route_uniform, QueueSim, Router};
pub use stats::{ResponseStats, StatsCollector};
pub use workload::{ArrivalProcess, OpenWorkload};

//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a virtual instant, carrying a payload.
#[derive(Debug, Clone)]
pub struct QueuedEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion sequence number; breaks ties FIFO so runs are
    /// deterministic regardless of heap internals.
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

impl<T> PartialEq for QueuedEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for QueuedEvent<T> {}

impl<T> PartialOrd for QueuedEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for QueuedEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timed events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<QueuedEvent<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent<T>> {
        self.heap.pop()
    }

    /// Peeks at the earliest event's time.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), "c");
        q.push(SimTime::from_ms(1), "a");
        q.push(SimTime::from_ms(3), "b");
        assert_eq!(q.pop().map(|e| e.payload), Some("a"));
        assert_eq!(q.pop().map(|e| e.payload), Some("b"));
        assert_eq!(q.pop().map(|e| e.payload), Some("c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(7);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().map(|e| e.payload), Some(i));
        }
    }

    #[test]
    fn next_time_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_ms(2), ());
        q.push(SimTime::from_ms(9), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_ms(2)));
    }
}

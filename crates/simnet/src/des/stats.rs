//! Response-time statistics for queueing experiments.

use crate::time::SimDuration;

/// Aggregated response-time statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseStats {
    /// Number of completed jobs.
    pub completed: u64,
    /// Mean response time (queueing + service), milliseconds.
    pub mean_ms: f64,
    /// Median response time, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile response time, milliseconds.
    pub p95_ms: f64,
    /// Maximum response time, milliseconds.
    pub max_ms: f64,
}

/// Accumulates per-job response times.
#[derive(Debug, Default)]
pub struct StatsCollector {
    samples_ms: Vec<f64>,
}

impl StatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one job's response time.
    pub fn record(&mut self, response: SimDuration) {
        self.samples_ms.push(response.as_ms_f64());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// Finalizes into summary statistics.
    ///
    /// Returns `None` if no samples were recorded.
    pub fn finish(mut self) -> Option<ResponseStats> {
        if self.samples_ms.is_empty() {
            return None;
        }
        self.samples_ms
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN response times"));
        let n = self.samples_ms.len();
        let sum: f64 = self.samples_ms.iter().sum();
        let pct = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            self.samples_ms[idx.min(n - 1)]
        };
        Some(ResponseStats {
            completed: n as u64,
            mean_ms: sum / n as f64,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            max_ms: self.samples_ms[n - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collector_yields_none() {
        assert!(StatsCollector::new().finish().is_none());
        assert!(StatsCollector::new().is_empty());
    }

    #[test]
    fn summary_of_known_samples() {
        let mut c = StatsCollector::new();
        for ms in [10, 20, 30, 40, 50] {
            c.record(SimDuration::from_ms(ms));
        }
        assert_eq!(c.len(), 5);
        let s = c.finish().expect("nonempty");
        assert_eq!(s.completed, 5);
        assert!((s.mean_ms - 30.0).abs() < 1e-9);
        assert!((s.p50_ms - 30.0).abs() < 1e-9);
        assert!((s.max_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn p95_is_near_the_top() {
        let mut c = StatsCollector::new();
        for ms in 1..=100 {
            c.record(SimDuration::from_ms(ms));
        }
        let s = c.finish().expect("nonempty");
        assert!((s.p95_ms - 95.0).abs() <= 1.0, "p95 {}", s.p95_ms);
    }

    #[test]
    fn single_sample() {
        let mut c = StatsCollector::new();
        c.record(SimDuration::from_ms(7));
        let s = c.finish().expect("nonempty");
        assert_eq!(s.completed, 1);
        assert_eq!(s.mean_ms, 7.0);
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p95_ms, 7.0);
        assert_eq!(s.max_ms, 7.0);
    }
}

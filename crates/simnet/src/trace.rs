//! Event tracing for experiment walkthroughs and debugging.
//!
//! The actual machinery lives in the [`obs`] crate (so every crate in
//! the workspace can share one tracer without depending on `simnet`);
//! this module re-exports it. [`obs::Tracer`] records both flat
//! walkthrough events (the Figure 2.1 rendering) and nested per-query
//! spans; [`crate::world::World::span`] is the simulation-aware way to
//! open a span, and [`crate::world::World::trace`] records an event at
//! the current virtual instant.
//!
//! `obs` timestamps are raw `u64` microseconds and hosts are raw `u32`
//! ids; [`crate::world::World`] converts from [`crate::time::SimTime`]
//! and [`crate::topology::HostId`] at the recording boundary.

pub use obs::trace::{CacheOutcome, QueryTrace, SpanId, SpanRecord, TraceEvent, TraceKind, Tracer};

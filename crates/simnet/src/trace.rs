//! Event tracing for experiment walkthroughs and debugging.
//!
//! The Figure 2.1 walkthrough (`examples/quickstart.rs`) renders the trace
//! of a query so a reader can follow the client → HNS → NSM → name-service
//! flow exactly as the paper's figure shows it.

use std::fmt;

use parking_lot::Mutex;

use crate::time::SimTime;
use crate::topology::HostId;

/// Classification of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// An RPC call departed or a reply arrived.
    Rpc,
    /// Cache hit/miss/insert/evict.
    Cache,
    /// An underlying name service performed work.
    NameService,
    /// A Naming Semantics Manager performed work.
    Nsm,
    /// HNS meta-naming work.
    Hns,
    /// Anything else.
    Info,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Rpc => "rpc",
            TraceKind::Cache => "cache",
            TraceKind::NameService => "ns",
            TraceKind::Nsm => "nsm",
            TraceKind::Hns => "hns",
            TraceKind::Info => "info",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual instant of the event.
    pub at: SimTime,
    /// Host where the event occurred, if host-local.
    pub host: Option<HostId>,
    /// Classification.
    pub kind: TraceKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.host {
            Some(h) => write!(
                f,
                "[{:>10} {:>5} {}] {}",
                self.at, self.kind, h, self.message
            ),
            None => write!(
                f,
                "[{:>10} {:>5}     ] {}",
                self.at, self.kind, self.message
            ),
        }
    }
}

/// A shared, optionally-enabled event recorder.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: std::sync::atomic::AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// Creates a disabled tracer (recording is opt-in; experiments that
    /// iterate thousands of operations leave it off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// Returns whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Records an event if enabled.
    pub fn record(&self, at: SimTime, host: Option<HostId>, kind: TraceKind, message: String) {
        if self.is_enabled() {
            self.events.lock().push(TraceEvent {
                at,
                host,
                kind,
                message,
            });
        }
    }

    /// Returns a copy of all recorded events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns true if no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Renders all events, one per line.
    pub fn render(&self) -> String {
        let events = self.events.lock();
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(SimTime::ZERO, None, TraceKind::Info, "x".into());
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record(SimTime::from_ms(1), None, TraceKind::Rpc, "call".into());
        t.record(
            SimTime::from_ms(2),
            Some(HostId(3)),
            TraceKind::Cache,
            "hit".into(),
        );
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "call");
        assert_eq!(events[1].host, Some(HostId(3)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clear_discards_events() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record(SimTime::ZERO, None, TraceKind::Hns, "m".into());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn render_is_one_line_per_event() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record(
            SimTime::from_ms(5),
            Some(HostId(0)),
            TraceKind::Nsm,
            "lookup".into(),
        );
        let rendered = t.render();
        assert_eq!(rendered.lines().count(), 1);
        assert!(rendered.contains("lookup"));
        assert!(rendered.contains("nsm"));
    }
}

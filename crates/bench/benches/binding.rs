//! Criterion bench: end-to-end HRPC binding (the Table 3.1 workload) in
//! real time, against the two baseline mechanisms.

use std::sync::Arc;

use baselines::{InterimBinder, ReregisteredChBinder};
use criterion::{criterion_group, criterion_main, Criterion};
use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::HnsName;
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::Importer;
use std::hint::black_box;

fn bench_binding(c: &mut Criterion) {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.client, NsmCacheForm::Demarshalled);
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let importer = Importer::new(Arc::clone(&tb.net), tb.hosts.client, HnsHandle::Linked(hns));
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    importer
        .import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &name)
        .expect("prime");
    c.bench_function("hns_import_warm", |b| {
        b.iter(|| {
            importer
                .import(black_box(DESIRED_SERVICE), DESIRED_SERVICE_PROGRAM, &name)
                .expect("import")
        })
    });

    let interim = InterimBinder::new(Arc::clone(&tb.net));
    interim.register(DESIRED_SERVICE, tb.hosts.fiji, DESIRED_SERVICE_PROGRAM);
    interim.push_replica(tb.hosts.client);
    c.bench_function("interim_file_bind", |b| {
        b.iter(|| {
            interim
                .bind(tb.hosts.client, black_box(DESIRED_SERVICE))
                .expect("bind")
        })
    });

    let rereg = ReregisteredChBinder::new(
        Arc::clone(&tb.net),
        tb.ch_client(tb.hosts.client),
        "cs",
        "uw",
    );
    let port = tb
        .net
        .portmap_getport(tb.hosts.fiji, DESIRED_SERVICE_PROGRAM)
        .expect("port");
    rereg
        .reregister(
            DESIRED_SERVICE,
            tb.hosts.fiji,
            DESIRED_SERVICE_PROGRAM,
            port,
        )
        .expect("reregister");
    c.bench_function("rereg_ch_bind", |b| {
        b.iter(|| rereg.bind(black_box(DESIRED_SERVICE)).expect("bind"))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_binding
}
criterion_main!(benches);

//! Criterion bench: real-time cost of `FindNSM` cold (six remote data
//! mappings through the simulated fabric) versus warm (pure cache work).

use criterion::{criterion_group, criterion_main, Criterion};
use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::query::QueryClass;
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;
use std::hint::black_box;

fn bench_findnsm(c: &mut Criterion) {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = QueryClass::hrpc_binding();

    let cold = tb.make_hns(tb.hosts.client, CacheMode::Disabled);
    c.bench_function("findnsm_cold_6_mappings", |b| {
        b.iter(|| {
            cold.find_nsm(black_box(&qc), black_box(&name))
                .expect("find")
        })
    });

    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    warm.find_nsm(&qc, &name).expect("prime");
    c.bench_function("findnsm_warm_demarshalled", |b| {
        b.iter(|| {
            warm.find_nsm(black_box(&qc), black_box(&name))
                .expect("find")
        })
    });

    let warm_marshalled = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    warm_marshalled.find_nsm(&qc, &name).expect("prime");
    c.bench_function("findnsm_warm_marshalled", |b| {
        b.iter(|| {
            warm_marshalled
                .find_nsm(black_box(&qc), black_box(&name))
                .expect("find")
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_findnsm
}
criterion_main!(benches);

//! Criterion bench for Table 3.2's real-time shape: the stub-compiler
//! generated marshalling path versus the hand-written fast path, at 1 and
//! 6 resource records. Absolute times are 2026 hardware, not 1987 — what
//! must hold is the *ratio*: generated ≫ direct ≫ hand-written.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wire::fast::{encode_rr_batch, WireRecord};
use wire::generated::Compiled;
use wire::{TypeDesc, Value};

fn rr_message(n: usize) -> Value {
    let records: Vec<Value> = (0..n)
        .map(|i| {
            Value::record(vec![
                ("rtype", Value::U32(1)),
                ("ttl", Value::U32(86_400)),
                ("rdata", Value::Bytes(vec![i as u8; 32])),
            ])
        })
        .collect();
    Value::record(vec![
        ("name", Value::str("fiji.cs.washington.edu")),
        ("records", Value::List(records)),
    ])
}

fn wire_records(n: usize) -> Vec<WireRecord> {
    (0..n)
        .map(|i| WireRecord {
            rtype: 1,
            ttl: 86_400,
            rdata: vec![i as u8; 32],
        })
        .collect()
}

fn bench_marshalling(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshalling");
    for &n in &[1usize, 6] {
        let message = rr_message(n);
        let desc = TypeDesc::describe(&message);
        let compiled = Compiled::new(desc);
        let records = wire_records(n);
        let generated_bytes = compiled.marshal(&message).expect("marshal");

        group.bench_with_input(BenchmarkId::new("generated_marshal", n), &n, |b, _| {
            b.iter(|| compiled.marshal(black_box(&message)).expect("marshal"))
        });
        group.bench_with_input(BenchmarkId::new("generated_unmarshal", n), &n, |b, _| {
            b.iter(|| {
                compiled
                    .unmarshal(black_box(&generated_bytes))
                    .expect("unmarshal")
            })
        });
        group.bench_with_input(BenchmarkId::new("direct_xdr", n), &n, |b, _| {
            b.iter(|| wire::xdr::encode(black_box(&message)).expect("encode"))
        });
        group.bench_with_input(BenchmarkId::new("fast_handwritten", n), &n, |b, _| {
            b.iter(|| {
                encode_rr_batch("fiji.cs.washington.edu", black_box(&records)).expect("encode")
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_marshalling
}
criterion_main!(benches);

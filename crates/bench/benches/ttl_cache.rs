//! Criterion bench: the sharded BIND TTL cache vs the seed's
//! global-mutex design under multi-threaded load.
//!
//! `SeedTtlCache` below reproduces the pre-sharding implementation —
//! one mutex around one `(name, rtype)`-keyed map, the record vector
//! cloned out on every hit — so the comparison measures exactly what
//! the redesign changed: shard-striped locking keyed by name, and
//! `Arc`-shared record sets instead of per-hit deep clones. Each
//! benchmark iteration fans N threads out over one shared cache doing
//! warm gets on disjoint hot names; wall-clock time (`iter_custom`)
//! captures the contention the virtual-time simulation ignores.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

use bindns::cache::TtlCache;
use bindns::name::DomainName;
use bindns::rr::{RType, ResourceRecord};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use simnet::time::{SimDuration, SimTime};

type SeedEntries = HashMap<(DomainName, RType), (Vec<ResourceRecord>, SimTime)>;

/// The seed's cache: one mutex, one map, records cloned out per hit.
struct SeedTtlCache {
    entries: Mutex<SeedEntries>,
}

impl SeedTtlCache {
    fn new() -> Self {
        SeedTtlCache {
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn insert(&self, now: SimTime, name: DomainName, rtype: RType, records: Vec<ResourceRecord>) {
        let Some(min_ttl) = records.iter().map(|r| r.ttl).min() else {
            return;
        };
        let expires = now + SimDuration::from_ms(u64::from(min_ttl) * 1000);
        self.entries
            .lock()
            .insert((name, rtype), (records, expires));
    }

    fn get(&self, now: SimTime, name: &DomainName, rtype: RType) -> Option<Vec<ResourceRecord>> {
        let mut entries = self.entries.lock();
        let key = (name.clone(), rtype);
        match entries.get(&key) {
            Some((records, expires)) if *expires > now => Some(records.clone()),
            Some(_) => {
                entries.remove(&key);
                None
            }
            None => None,
        }
    }
}

const KEYS_PER_THREAD: usize = 8;
const GETS_PER_THREAD: usize = 2_000;

fn hot_name(thread: usize, i: usize) -> DomainName {
    DomainName::parse(&format!(
        "host{}.dept{thread}.cs.washington.edu",
        i % KEYS_PER_THREAD
    ))
    .expect("name")
}

fn payload(name: &DomainName) -> Vec<ResourceRecord> {
    (0..4)
        .map(|i| ResourceRecord::txt(name.clone(), 1 << 20, format!("payload {i}")))
        .collect()
}

/// Runs `threads` workers hammering warm gets on disjoint name sets;
/// returns total wall-clock time for `iters` repetitions.
fn contended_run<F>(iters: u64, threads: usize, get: F) -> Duration
where
    F: Fn(usize, usize) + Send + Sync,
{
    let get = &get;
    let start = Instant::now();
    for _ in 0..iters {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..GETS_PER_THREAD {
                        get(t, i);
                    }
                });
            }
        });
    }
    start.elapsed()
}

fn bench_contended_gets(c: &mut Criterion) {
    let now = SimTime::ZERO;
    let mut group = c.benchmark_group("ttl_cache_contended_gets");
    for &threads in &[1usize, 4, 8] {
        let seed = SeedTtlCache::new();
        for t in 0..threads {
            for i in 0..KEYS_PER_THREAD {
                let name = hot_name(t, i);
                let records = payload(&name);
                seed.insert(now, name, RType::Txt, records);
            }
        }
        group.bench_with_input(
            BenchmarkId::new("seed_global_mutex", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    contended_run(iters, threads, |t, i| {
                        black_box(seed.get(now, &hot_name(t, i), RType::Txt)).expect("warm hit");
                    })
                })
            },
        );

        let sharded = TtlCache::new();
        for t in 0..threads {
            for i in 0..KEYS_PER_THREAD {
                let name = hot_name(t, i);
                let records = payload(&name);
                sharded.insert(now, name, RType::Txt, records);
            }
        }
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    contended_run(iters, threads, |t, i| {
                        black_box(sharded.get(now, &hot_name(t, i), RType::Txt)).expect("warm hit");
                    })
                })
            },
        );
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_contended_gets
}
criterion_main!(benches);

//! Criterion bench: the sharded, coalescing HNS cache vs the seed's
//! global-mutex design under multi-threaded load.
//!
//! `SeedCache` below reproduces the pre-sharding implementation — one
//! mutex around one map, values cloned out of the entry on every
//! demarshalled hit — so the comparison measures exactly what the
//! redesign changed. Each benchmark iteration fans N threads out over a
//! shared cache doing demarshalled hits on disjoint hot keys; wall-clock
//! time (iter_custom) captures the lock contention the virtual-time
//! simulation deliberately ignores.
//!
//! The second group measures singleflight: K threads all missing on one
//! key, where the new cache collapses the K fetches into 1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hns_core::cache::{CacheLookup, CacheMode, FetchTicket, HnsCache, MetaKey};
use parking_lot::Mutex;
use simnet::time::{SimDuration, SimTime};
use simnet::World;
use std::hint::black_box;
use wire::Value;

/// The seed's cache: one mutex, one map, demarshalled values cloned out.
struct SeedCache {
    entries: Mutex<HashMap<MetaKey, (Value, SimTime)>>,
}

impl SeedCache {
    fn new() -> Self {
        SeedCache {
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn insert(&self, world: &World, key: MetaKey, value: &Value, ttl_secs: u32) {
        let expires = world.now() + SimDuration::from_ms(u64::from(ttl_secs) * 1000);
        self.entries.lock().insert(key, (value.clone(), expires));
    }

    fn get(&self, world: &World, key: &MetaKey) -> Option<Value> {
        world.charge_ms(world.costs.cache_probe);
        let mut entries = self.entries.lock();
        match entries.get(key) {
            Some((value, expires)) if *expires > world.now() => {
                world.charge_ms(world.costs.cache_hit(simnet::CacheForm::Demarshalled, 1));
                Some(value.clone())
            }
            Some(_) => {
                entries.remove(key);
                None
            }
            None => None,
        }
    }
}

const KEYS_PER_THREAD: usize = 8;
const HITS_PER_THREAD: usize = 2_000;

fn hot_key(thread: usize, i: usize) -> MetaKey {
    MetaKey::host_addr(
        &format!("ns-{thread}"),
        &format!("host-{}", i % KEYS_PER_THREAD),
    )
}

fn payload() -> Value {
    Value::List((0..4).map(|i| Value::str(format!("payload {i}"))).collect())
}

/// Runs `threads` workers hammering `hit` on disjoint key sets; returns
/// total wall-clock time for `iters` repetitions of the whole fan-out.
fn contended_run<F>(iters: u64, threads: usize, hit: F) -> Duration
where
    F: Fn(usize, usize) + Send + Sync,
{
    let hit = &hit;
    let start = Instant::now();
    for _ in 0..iters {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..HITS_PER_THREAD {
                        hit(t, i);
                    }
                });
            }
        });
    }
    start.elapsed()
}

fn bench_contended_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_contended_hits");
    for &threads in &[1usize, 4, 8] {
        let world = World::paper();
        let seed = SeedCache::new();
        for t in 0..threads {
            for i in 0..KEYS_PER_THREAD {
                seed.insert(&world, hot_key(t, i), &payload(), 1 << 20);
            }
        }
        group.bench_with_input(
            BenchmarkId::new("seed_global_mutex", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    contended_run(iters, threads, |t, i| {
                        black_box(seed.get(&world, &hot_key(t, i)));
                    })
                })
            },
        );

        let sharded = HnsCache::new(CacheMode::Demarshalled);
        for t in 0..threads {
            for i in 0..KEYS_PER_THREAD {
                sharded.insert(&world, hot_key(t, i), &payload(), 4, 1 << 20);
            }
        }
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    contended_run(iters, threads, |t, i| {
                        match sharded.lookup(&world, &hot_key(t, i)) {
                            CacheLookup::Hit { value, .. } => {
                                black_box(value);
                            }
                            other => panic!("expected hit, got {other:?}"),
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_singleflight_collapse(c: &mut Criterion) {
    // K threads miss on one key at once. The leader "fetches" (sleeps a
    // simulated RTT) and inserts; everyone else coalesces. Total fetches
    // stay at 1 per cold key, no matter how many threads raced.
    const FETCH_COST: Duration = Duration::from_micros(200);
    let mut group = c.benchmark_group("cache_singleflight");
    for &threads in &[4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("coalesced_cold_miss", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let world = World::paper();
                    let mut total = Duration::ZERO;
                    for round in 0..iters {
                        let cache = Arc::new(HnsCache::new(CacheMode::Demarshalled));
                        let fetches = Arc::new(AtomicU64::new(0));
                        let barrier = Arc::new(Barrier::new(threads));
                        let key = MetaKey::host_addr("ns", &format!("cold-{round}"));
                        let start = Instant::now();
                        std::thread::scope(|scope| {
                            for _ in 0..threads {
                                let cache = Arc::clone(&cache);
                                let fetches = Arc::clone(&fetches);
                                let barrier = Arc::clone(&barrier);
                                let world = &world;
                                scope.spawn(move || {
                                    barrier.wait();
                                    loop {
                                        if let CacheLookup::Hit { value, .. } =
                                            cache.lookup(world, &key)
                                        {
                                            black_box(value);
                                            return;
                                        }
                                        match cache.begin_fetch(&key) {
                                            FetchTicket::Leader(_guard) => {
                                                fetches.fetch_add(1, Ordering::SeqCst);
                                                std::thread::sleep(FETCH_COST);
                                                cache.insert(world, key, &payload(), 4, 600);
                                                return;
                                            }
                                            FetchTicket::Coalesced => continue,
                                        }
                                    }
                                });
                            }
                        });
                        total += start.elapsed();
                        assert_eq!(
                            fetches.load(Ordering::SeqCst),
                            1,
                            "singleflight must collapse to one fetch"
                        );
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_contended_hits, bench_singleflight_collapse
}
criterion_main!(benches);

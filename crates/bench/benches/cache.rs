//! Criterion bench: real-time cost of HNS cache hits in marshalled vs
//! demarshalled form (the code-path contrast behind Table 3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hns_core::cache::{CacheMode, HnsCache, MetaKey};
use simnet::World;
use std::hint::black_box;
use wire::Value;

fn entry(rrs: usize) -> Value {
    Value::List(
        (0..rrs)
            .map(|i| Value::str(format!("payload {i}")))
            .collect(),
    )
}

fn key() -> MetaKey {
    MetaKey::host_addr("BIND", "fiji")
}

fn bench_cache(c: &mut Criterion) {
    let world = World::paper();
    let mut group = c.benchmark_group("hns_cache_hit");
    for &rrs in &[1usize, 6] {
        for (label, mode) in [
            ("marshalled", CacheMode::Marshalled),
            ("demarshalled", CacheMode::Demarshalled),
        ] {
            let cache = HnsCache::new(mode);
            cache.insert(&world, key(), &entry(rrs), rrs, 1 << 20);
            group.bench_with_input(BenchmarkId::new(label, rrs), &rrs, |b, _| {
                b.iter(|| {
                    let got = cache.get(&world, black_box(&key()));
                    assert!(got.is_some());
                    got
                })
            });
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_cache
}
criterion_main!(benches);

//! Criterion bench: the warm `FindNSM` dispatch hot path, sharded.
//!
//! Measures the single-operation cost of a warm lookup at 1/4/8 worker
//! threads, each worker on its own private stack (the load engine's
//! sharded dispatch), in two shapes:
//!
//! * **walk** — the composed binding cache off: every warm query runs
//!   the six-mapping walk against the demarshalled per-mapping cache,
//!   re-parsing payloads along the way (the pre-optimization path), and
//! * **composed** — the binding cache on: a warm query is one probe
//!   returning the final `Copy` binding.
//!
//! Both run with batched virtual-time charging, the engine's measured
//! configuration. Workloads are seed-pinned (`DetRng`), so run-to-run
//! numbers compare the code, not the draw.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hns_core::cache::CacheMode;
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::query::QueryClass;
use hns_core::service::Hns;
use nsms::harness::{Testbed, NS_BIND, NS_CH};
use nsms::nsm_cache::NsmCacheForm;
use simnet::rng::DetRng;

const CONTEXTS: usize = 12;
const OPS_PER_THREAD: usize = 2_000;

/// One worker's private warm stack: a testbed kept alive plus a
/// pre-warmed HNS and its query universe.
struct WarmStack {
    _tb: Testbed,
    hns: Arc<Hns>,
    ops: Vec<(QueryClass, HnsName)>,
}

fn build_warm_stack(composed: bool) -> WarmStack {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);
    let registrar = tb.make_hns(tb.hosts.meta, CacheMode::Disabled);
    let classes = [
        QueryClass::hrpc_binding(),
        QueryClass::mailbox_location(),
        QueryClass::file_location(),
    ];
    let mut ops = Vec::new();
    for i in 0..CONTEXTS {
        let (ns, individual) = if i % 2 == 0 {
            (NS_BIND, "fiji.cs.washington.edu")
        } else {
            (NS_CH, "printserver:cs:uw")
        };
        let ctx = Context::new(format!(
            "dept{i}-{}",
            if i % 2 == 0 { "bind" } else { "ch" }
        ))
        .expect("ctx");
        registrar
            .register_context(&ctx, ns, &NameMapping::Identity)
            .expect("register");
        for qc in &classes {
            ops.push((
                qc.clone(),
                HnsName::new(ctx.clone(), individual).expect("name"),
            ));
        }
    }
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    hns.set_binding_cache(composed);
    for (qc, name) in &ops {
        hns.find_nsm(qc, name).expect("pre-warm");
    }
    tb.world.clock.set_batched(true);
    WarmStack { _tb: tb, hns, ops }
}

/// Fans `stacks` out over worker threads, each doing seed-pinned warm
/// lookups on its own stack; returns wall time for `iters` repetitions.
fn sharded_run(iters: u64, stacks: &[WarmStack]) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        std::thread::scope(|scope| {
            for (t, stack) in stacks.iter().enumerate() {
                scope.spawn(move || {
                    let mut rng = DetRng::new(0xD15 + t as u64);
                    for _ in 0..OPS_PER_THREAD {
                        let (qc, name) =
                            &stack.ops[rng.next_below(stack.ops.len() as u64) as usize];
                        black_box(stack.hns.find_nsm(qc, name)).expect("warm hit");
                    }
                    stack._tb.world.clock.flush_local();
                });
            }
        });
    }
    start.elapsed()
}

fn bench_dispatch_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_hot_path");
    for &threads in &[1usize, 4, 8] {
        let walk: Vec<WarmStack> = (0..threads).map(|_| build_warm_stack(false)).collect();
        group.bench_with_input(BenchmarkId::new("walk", threads), &threads, |b, _| {
            b.iter_custom(|iters| sharded_run(iters, &walk))
        });
        drop(walk);

        let composed: Vec<WarmStack> = (0..threads).map(|_| build_warm_stack(true)).collect();
        group.bench_with_input(BenchmarkId::new("composed", threads), &threads, |b, _| {
            b.iter_custom(|iters| sharded_run(iters, &composed))
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_dispatch_hot_path
}
criterion_main!(benches);

//! Criterion bench: the warm `FindNSM` dispatch hot path, sharded.
//!
//! Measures the single-operation cost of a warm lookup at 1/4/8 worker
//! threads, each worker on its own private stack (the load engine's
//! sharded dispatch), in two shapes:
//!
//! * **walk** — the composed binding cache off: every warm query runs
//!   the six-mapping walk against the demarshalled per-mapping cache,
//!   re-parsing payloads along the way (the pre-optimization path), and
//! * **composed** — the binding cache on: a warm query is one probe
//!   returning the final `Copy` binding.
//!
//! Both run with batched virtual-time charging, the engine's measured
//! configuration. Workloads are seed-pinned (`DetRng`), so run-to-run
//! numbers compare the code, not the draw.
//!
//! A third shape, **datagram_echo**, measures the simulated datagram
//! delivery path itself: a bare remote echo call through
//! `RpcNet::call` with no caches in front. Before/after for the
//! allocation-free delivery path (cost accounting via
//! `WireFormat::encoded_len` instead of materializing the datagram and
//! re-decoding it on each leg): 2000 echo calls took ~4.8 ms before
//! (~2.4 µs/op, four encode/decode passes per call) and ~1.6 ms after
//! (~0.8 µs/op), a ~3x per-datagram win. The warm walk/composed shapes
//! are unchanged — a warm `FindNSM` makes zero remote calls.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hns_core::cache::CacheMode;
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::query::QueryClass;
use hns_core::service::Hns;
use hrpc::{ComponentSet, HrpcBinding, ProcServer, ProgramId, RpcNet};
use nsms::harness::{Testbed, NS_BIND, NS_CH};
use nsms::nsm_cache::NsmCacheForm;
use simnet::rng::DetRng;
use simnet::topology::{HostId, NetAddr};
use simnet::world::World;
use wire::Value;

const CONTEXTS: usize = 12;
const OPS_PER_THREAD: usize = 2_000;

/// One worker's private warm stack: a testbed kept alive plus a
/// pre-warmed HNS and its query universe.
struct WarmStack {
    _tb: Testbed,
    hns: Arc<Hns>,
    ops: Vec<(QueryClass, HnsName)>,
}

fn build_warm_stack(composed: bool) -> WarmStack {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);
    let registrar = tb.make_hns(tb.hosts.meta, CacheMode::Disabled);
    let classes = [
        QueryClass::hrpc_binding(),
        QueryClass::mailbox_location(),
        QueryClass::file_location(),
    ];
    let mut ops = Vec::new();
    for i in 0..CONTEXTS {
        let (ns, individual) = if i % 2 == 0 {
            (NS_BIND, "fiji.cs.washington.edu")
        } else {
            (NS_CH, "printserver:cs:uw")
        };
        let ctx = Context::new(format!(
            "dept{i}-{}",
            if i % 2 == 0 { "bind" } else { "ch" }
        ))
        .expect("ctx");
        registrar
            .register_context(&ctx, ns, &NameMapping::Identity)
            .expect("register");
        for qc in &classes {
            ops.push((
                qc.clone(),
                HnsName::new(ctx.clone(), individual).expect("name"),
            ));
        }
    }
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    hns.set_binding_cache(composed);
    for (qc, name) in &ops {
        hns.find_nsm(qc, name).expect("pre-warm");
    }
    tb.world.clock.set_batched(true);
    WarmStack { _tb: tb, hns, ops }
}

/// Fans `stacks` out over worker threads, each doing seed-pinned warm
/// lookups on its own stack; returns wall time for `iters` repetitions.
fn sharded_run(iters: u64, stacks: &[WarmStack]) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        std::thread::scope(|scope| {
            for (t, stack) in stacks.iter().enumerate() {
                scope.spawn(move || {
                    let mut rng = DetRng::new(0xD15 + t as u64);
                    for _ in 0..OPS_PER_THREAD {
                        let (qc, name) =
                            &stack.ops[rng.next_below(stack.ops.len() as u64) as usize];
                        black_box(stack.hns.find_nsm(qc, name)).expect("warm hit");
                    }
                    stack._tb.world.clock.flush_local();
                });
            }
        });
    }
    start.elapsed()
}

/// A bare remote echo call: the simulated datagram delivery path with
/// no caches or name service in front of it.
struct DatagramStack {
    world: Arc<World>,
    net: Arc<RpcNet>,
    client: HostId,
    binding: HrpcBinding,
    msg: Value,
}

fn build_datagram_stack() -> DatagramStack {
    let world = World::paper();
    let client = world.add_host("client");
    let server = world.add_host("server");
    let net = RpcNet::new(Arc::clone(&world));
    let echo = Arc::new(ProcServer::new("echo").with_proc(1, |_ctx, args| Ok(args.clone())));
    let port = net.export(server, ProgramId(77), echo);
    let binding = HrpcBinding {
        host: server,
        addr: NetAddr::of(server),
        program: ProgramId(77),
        port,
        components: ComponentSet::sun(),
    };
    // A representative query-sized payload (~200 wire bytes).
    let msg = Value::record(vec![
        ("context", Value::str("dept4-bind")),
        ("individual", Value::str("fiji.cs.washington.edu")),
        (
            "classes",
            Value::List(vec![
                Value::str("hrpcbinding"),
                Value::str("mailboxlocation"),
                Value::str("filelocation"),
            ]),
        ),
        ("hops", Value::U32(3)),
    ]);
    world.clock.set_batched(true);
    DatagramStack {
        world,
        net,
        client,
        binding,
        msg,
    }
}

fn datagram_run(iters: u64, stack: &DatagramStack) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        for _ in 0..OPS_PER_THREAD {
            black_box(stack.net.call(stack.client, &stack.binding, 1, &stack.msg)).expect("echo");
        }
        stack.world.clock.flush_local();
    }
    start.elapsed()
}

fn bench_dispatch_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_hot_path");
    for &threads in &[1usize, 4, 8] {
        let walk: Vec<WarmStack> = (0..threads).map(|_| build_warm_stack(false)).collect();
        group.bench_with_input(BenchmarkId::new("walk", threads), &threads, |b, _| {
            b.iter_custom(|iters| sharded_run(iters, &walk))
        });
        drop(walk);

        let composed: Vec<WarmStack> = (0..threads).map(|_| build_warm_stack(true)).collect();
        group.bench_with_input(BenchmarkId::new("composed", threads), &threads, |b, _| {
            b.iter_custom(|iters| sharded_run(iters, &composed))
        });
    }

    let datagram = build_datagram_stack();
    group.bench_function("datagram_echo", |b| {
        b.iter_custom(|iters| datagram_run(iters, &datagram))
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_dispatch_hot_path
}
criterion_main!(benches);

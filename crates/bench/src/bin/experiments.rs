//! The experiment driver: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments all                 # everything, in order
//! experiments table31 table32    # specific experiments
//! ```
//!
//! Experiment ids: `table31 table32 overhead comparison preload eq1
//! figure21 mappings ablate-batching ablate-mappings ablate-ttl
//! scalability ablate-rereg`.

use hns_bench::experiments as exp;

fn run_one(id: &str) -> Result<String, String> {
    let out = match id {
        "table31" => exp::table31::run().render(),
        "table32" => {
            let mut s = exp::table32::run().render();
            s.push('\n');
            s.push_str(&exp::table32::run_standard_routines().render());
            s
        }
        "overhead" => exp::overhead::run().render(),
        "comparison" => exp::comparison::run().render(),
        "preload" => {
            let results = exp::preload::run();
            format!(
                "{}\n{}\nbreak-even (paper accounting): {:?} calls\n\
                 break-even (measured, shared entries): {:?} calls\n",
                results.headline.render(),
                results.sweep.render(),
                results.break_even_paper_model,
                results.break_even_measured
            )
        }
        "eq1" => {
            let results = exp::eq1::run();
            format!(
                "{}\n{}",
                results.thresholds.render(),
                results.sweep.render()
            )
        }
        "figure21" => exp::figure21::run(),
        "hit-ratios" => exp::hit_ratios::run().table.render(),
        "mappings" => exp::mappings::run().render(),
        "ablate-batching" => exp::ablate_batching::run().render(),
        "ablate-mappings" => exp::ablate_mappings::run().render(),
        "ablate-ttl" => exp::ablate_ttl::run().render(),
        "scalability" => exp::scalability::run().render(),
        "ablate-rereg" => exp::ablate_rereg::run().render(),
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(out)
}

const ALL: &[&str] = &[
    "table31",
    "table32",
    "overhead",
    "comparison",
    "preload",
    "eq1",
    "figure21",
    "hit-ratios",
    "mappings",
    "ablate-batching",
    "ablate-mappings",
    "ablate-ttl",
    "scalability",
    "ablate-rereg",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        println!("=== experiment: {id} ===");
        match run_one(id) {
            Ok(output) => println!("{output}"),
            Err(err) => {
                eprintln!("error: {err}");
                eprintln!("known experiments: {}", ALL.join(" "));
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

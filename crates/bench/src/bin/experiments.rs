//! The experiment driver: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments all                 # everything, in order
//! experiments table31 table32    # specific experiments
//! experiments table31 --trace    # also run the traced scenario
//! experiments --trace-out t.json # write the traced run's JSON export
//! experiments loadgen --threads 1,2,4,8 --ops 2000 --out BENCH_throughput.json
//! experiments loadgen --offered-qps 50000,200000 --open-threads 4 --open-duration-ms 500
//! experiments loadgen --baseline BENCH_throughput.json --regress 0.5
//! experiments chaos --crash --partition --seed 42 --out chaos.json
//! experiments chaos --seed 42 --validate-chaos   # validate the run's own JSON
//! experiments chaos --timeline-out timeline.json # windowed hns-timeline-v1 export
//! experiments register --names 12 --max-depth 8 --out register.json
//! experiments loadgen --write-frac 0.3 --transfer-frac 0.25
//! experiments scale --scale-names 10000,100000,1000000 --out BENCH_scale.json
//! experiments validate FILE...    # auto-detect and validate any JSON export
//! experiments fuzz --iters 5000 --seed 0   # conformance fuzz smoke
//! experiments fuzz --regen-corpus          # rewrite the golden wire corpus
//! ```
//!
//! Experiment ids: `table31 table32 overhead comparison preload eq1
//! figure21 mappings ablate-batching ablate-mappings ablate-ttl
//! scalability ablate-rereg traced`.
//!
//! `loadgen` is the real-time load engine (E-L). It measures wall-clock
//! throughput, so it is *not* part of `all` (whose outputs are
//! deterministic virtual-time tables); run it explicitly. Knobs:
//! `--threads a,b,c --ops N --duration-ms MS --zipf S --cold F --bind F
//! --faults --seed N --out PATH`. Open-loop (offered-load) runs ride
//! along via `--offered-qps q1,q2,... --open-threads N
//! --open-duration-ms MS`; `--baseline PATH [--regress FACTOR]`
//! compares the closed-loop sweep against a committed baseline and
//! fails (exit 1) if any matching thread count drops below
//! FACTOR × baseline QPS (default 0.5).
//!
//! `chaos` is the fault-injection scenario (E-C). It is flag-driven like
//! `loadgen` and therefore also outside `all`: `--crash`, `--partition`,
//! and `--latency-spike` pick the injected faults (no selector = all
//! three), `--seed` jitters the fault windows, `--out` writes the
//! `hns-chaos-v1` JSON, and `--validate-chaos` validates either the run's
//! own export or a file given as its operand. `--timeline-out PATH` also
//! runs the windowed timeline scenario (E-TL) with the same fault
//! selection and writes its `hns-timeline-v1` export; `--timeline-window-ms`
//! sets the window width.
//!
//! `register` is the write-heavy registration workload (E-R) over the
//! `regd` frontend: ownership registration, transfer chains with
//! collapse caching, replica staleness, and the partitioned write path.
//! Knobs: `--names N --max-depth D --warm-resolves W
//! --staleness-rounds R --seed N --out PATH`; the export schema is
//! `hns-reg-v1`. The loadgen write mix rides the same frontend:
//! `--write-frac F` sends that fraction of loadgen operations through
//! `regd` (re-binds and transfers), and `--transfer-frac F` picks how
//! many of those writes are ownership transfers.
//!
//! `scale` is the million-name scale-out sweep (E-S): cell-sharded
//! worlds at each `--scale-names` count (default `10000,100000,1000000`),
//! reporting virtual-time QPS through the delegation tree, resident
//! bytes per name against the naive per-copy baseline, the resolver
//! cache hit ratio, and full-vs-incremental preload bytes. Knobs:
//! `--scale-names a,b,c --scale-queries N --scale-updates K --seed N
//! --out PATH`; the export schema is `hns-scale-v1`.
//!
//! `validate FILE...` parses each file, auto-detects its schema from the
//! `schema` tag (`hns-trace-v1`, `hns-load-v2`, `hns-chaos-v1`,
//! `hns-timeline-v1`, `hns-reg-v1`, `hns-scale-v1`), and runs the matching validator,
//! exiting 1 on the first malformed file. The older `--validate-trace` / `--validate-load`
//! / `--validate-chaos FILE` flags are thin aliases that additionally pin
//! the expected schema.
//!
//! `fuzz` is the hermetic conformance harness (see TESTING.md): it
//! verifies the committed golden wire corpus against the encoders, then
//! runs the seeded mutation fuzzer for `--iters` iterations (default
//! 5000) under the shared `--seed`, exiting 1 on corpus drift or any
//! property violation (panic, allocation over budget, or a decode→
//! encode→decode mismatch). `--regen-corpus` rewrites the corpus files
//! under `crates/conformance/corpus/` from the encoders first — the
//! documented path for landing an intentional wire-format change.

use hns_bench::experiments as exp;
use hns_bench::loadgen;

// The conformance fuzzer's allocation-budget property only bites when a
// counting allocator is installed; the negligible bookkeeping cost does
// not affect the virtual-time experiment outputs.
#[global_allocator]
static ALLOC: conformance::alloc::CountingAlloc = conformance::alloc::CountingAlloc;

fn run_one(id: &str) -> Result<String, String> {
    let out = match id {
        "table31" => exp::table31::run().render(),
        "table32" => {
            let mut s = exp::table32::run().render();
            s.push('\n');
            s.push_str(&exp::table32::run_standard_routines().render());
            s
        }
        "overhead" => exp::overhead::run().render(),
        "comparison" => exp::comparison::run().render(),
        "preload" => {
            let results = exp::preload::run();
            format!(
                "{}\n{}\nbreak-even (paper accounting): {:?} calls\n\
                 break-even (measured, shared entries): {:?} calls\n",
                results.headline.render(),
                results.sweep.render(),
                results.break_even_paper_model,
                results.break_even_measured
            )
        }
        "eq1" => {
            let results = exp::eq1::run();
            format!(
                "{}\n{}",
                results.thresholds.render(),
                results.sweep.render()
            )
        }
        "figure21" => exp::figure21::run(),
        "hit-ratios" => exp::hit_ratios::run().table.render(),
        "mappings" => exp::mappings::run().render(),
        "ablate-batching" => exp::ablate_batching::run().render(),
        "ablate-mappings" => exp::ablate_mappings::run().render(),
        "ablate-ttl" => exp::ablate_ttl::run().render(),
        "scalability" => exp::scalability::run().render(),
        "ablate-rereg" => exp::ablate_rereg::run().render(),
        "traced" => exp::traced::run().render(),
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(out)
}

const ALL: &[&str] = &[
    "table31",
    "table32",
    "overhead",
    "comparison",
    "preload",
    "eq1",
    "figure21",
    "hit-ratios",
    "mappings",
    "ablate-batching",
    "ablate-mappings",
    "ablate-ttl",
    "scalability",
    "ablate-rereg",
    "traced",
];

/// Validates an `hns-trace-v1` document: schema tag, non-empty query
/// list, and the metrics snapshot.
fn validate_trace(text: &str) -> Result<(), String> {
    let v = hns_bench::obs::json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-trace-v1") {
        return Err("missing or unexpected `schema`".into());
    }
    let queries = v
        .get("queries")
        .and_then(|q| q.as_array())
        .ok_or("missing `queries` array")?;
    if queries.is_empty() {
        return Err("no queries in export".into());
    }
    if v.get("metrics").is_none() {
        return Err("missing `metrics` snapshot".into());
    }
    Ok(())
}

/// Reads `path`, auto-detects the export schema from its `schema` tag,
/// and runs the matching validator. `expected` (from the legacy
/// per-schema flags) additionally pins which schema the file must carry.
/// Returns the detected schema name.
fn validate_any(path: &str, expected: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v = hns_bench::obs::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or_else(|| format!("{path}: missing `schema` tag"))?
        .to_string();
    if let Some(expected) = expected {
        if schema != expected {
            return Err(format!("{path}: expected `{expected}`, found `{schema}`"));
        }
    }
    let result = match schema.as_str() {
        "hns-trace-v1" => validate_trace(&text),
        "hns-load-v2" => loadgen::report::validate(&text),
        "hns-chaos-v1" => exp::chaos::validate(&text),
        "hns-timeline-v1" => exp::timeline::validate(&text),
        "hns-reg-v1" => exp::register::validate(&text),
        "hns-scale-v1" => exp::scale::validate(&text),
        other => Err(format!("unknown schema `{other}`")),
    };
    result.map_err(|e| format!("{path}: {e}"))?;
    Ok(schema)
}

fn parse_or_die<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} requires a value");
        std::process::exit(1);
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: {flag}: cannot parse `{value}`");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<&str> = Vec::new();
    let mut trace = false;
    let mut trace_out: Option<String> = None;
    let mut load = false;
    let mut load_config = loadgen::LoadConfig::default();
    let mut out: Option<String> = None;
    let mut load_baseline: Option<String> = None;
    let mut load_regress: f64 = 0.5;
    let mut chaos = false;
    // `None` until a selector flag appears; no selector means all faults.
    let mut chaos_faults: Option<(bool, bool, bool)> = None;
    let mut chaos_seed: u64 = exp::chaos::ChaosConfig::default().seed;
    let mut register = false;
    let mut register_config = exp::register::RegisterConfig::default();
    let mut scale = false;
    let mut scale_config = exp::scale::ScaleConfig::default();
    let mut fuzz = false;
    let mut fuzz_config = conformance::fuzz::FuzzConfig {
        iters: 5_000,
        seed: 0,
    };
    let mut regen_corpus = false;
    let mut chaos_validate_inline = false;
    let mut timeline_out: Option<String> = None;
    let mut timeline_window_ms: u64 = exp::timeline::DEFAULT_WINDOW_MS;
    // (path, pinned schema) pairs to validate; populated by the
    // `validate` subcommand (auto-detect) and the legacy flags (pinned).
    let mut validate_cmd = false;
    let mut validations: Vec<(String, Option<&'static str>)> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "loadgen" => load = true,
            "chaos" => chaos = true,
            "register" => register = true,
            "scale" => scale = true,
            "fuzz" => fuzz = true,
            "validate" => validate_cmd = true,
            "--iters" => {
                fuzz_config.iters = parse_or_die("--iters", it.next());
                if fuzz_config.iters == 0 {
                    eprintln!("error: --iters must be positive");
                    std::process::exit(1);
                }
            }
            "--regen-corpus" => {
                fuzz = true;
                regen_corpus = true;
            }
            "--scale-names" => {
                let csv: String = parse_or_die("--scale-names", it.next());
                scale_config.names = csv
                    .split(',')
                    .map(|n| match n.trim().parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            eprintln!("error: --scale-names: cannot parse `{csv}`");
                            std::process::exit(1);
                        }
                    })
                    .collect();
            }
            "--scale-queries" => {
                scale_config.queries = parse_or_die("--scale-queries", it.next());
                if scale_config.queries == 0 {
                    eprintln!("error: --scale-queries must be positive");
                    std::process::exit(1);
                }
            }
            "--scale-updates" => {
                scale_config.updates = parse_or_die("--scale-updates", it.next());
                if scale_config.updates == 0 {
                    eprintln!("error: --scale-updates must be positive");
                    std::process::exit(1);
                }
            }
            "--crash" => chaos_faults.get_or_insert((false, false, false)).0 = true,
            "--partition" => chaos_faults.get_or_insert((false, false, false)).1 = true,
            "--latency-spike" => chaos_faults.get_or_insert((false, false, false)).2 = true,
            "--faults" => load_config.faults = true,
            "--validate-chaos" => {
                // With a `.json` operand, validate that file and exit;
                // bare, validate the chaos run's own export inline.
                match it.peek() {
                    Some(path) if path.ends_with(".json") => {
                        validations.push((it.next().cloned().unwrap(), Some("hns-chaos-v1")));
                    }
                    _ => chaos_validate_inline = true,
                }
            }
            "--timeline-out" => {
                chaos = true;
                timeline_out = Some(parse_or_die("--timeline-out", it.next()));
            }
            "--timeline-window-ms" => {
                timeline_window_ms = parse_or_die("--timeline-window-ms", it.next());
                if timeline_window_ms == 0 {
                    eprintln!("error: --timeline-window-ms must be positive");
                    std::process::exit(1);
                }
            }
            "--threads" => {
                let csv: String = parse_or_die("--threads", it.next());
                load_config.threads = csv
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            eprintln!("error: --threads: cannot parse `{csv}`");
                            std::process::exit(1);
                        }
                    })
                    .collect();
            }
            "--ops" => load_config.ops_per_thread = parse_or_die("--ops", it.next()),
            "--offered-qps" => {
                let csv: String = parse_or_die("--offered-qps", it.next());
                load_config.offered_qps = csv
                    .split(',')
                    .map(|q| match q.trim().parse::<f64>() {
                        Ok(q) if q > 0.0 => q,
                        _ => {
                            eprintln!("error: --offered-qps: cannot parse `{csv}`");
                            std::process::exit(1);
                        }
                    })
                    .collect();
            }
            "--open-threads" => {
                load_config.open_threads = parse_or_die("--open-threads", it.next())
            }
            "--open-duration-ms" => {
                load_config.open_duration_ms = parse_or_die("--open-duration-ms", it.next())
            }
            "--open-window-ms" => {
                load_config.open_window_ms = parse_or_die("--open-window-ms", it.next());
                if load_config.open_window_ms == 0 {
                    eprintln!("error: --open-window-ms must be positive");
                    std::process::exit(1);
                }
            }
            "--baseline" => load_baseline = Some(parse_or_die("--baseline", it.next())),
            "--regress" => load_regress = parse_or_die("--regress", it.next()),
            "--duration-ms" => {
                load_config.duration_ms = Some(parse_or_die("--duration-ms", it.next()))
            }
            "--zipf" => load_config.zipf_s = parse_or_die("--zipf", it.next()),
            "--cold" => load_config.cold_frac = parse_or_die("--cold", it.next()),
            "--bind" => load_config.bind_frac = parse_or_die("--bind", it.next()),
            "--names" => {
                register_config.names = parse_or_die("--names", it.next());
                if register_config.names == 0 {
                    eprintln!("error: --names must be positive");
                    std::process::exit(1);
                }
            }
            "--max-depth" => register_config.max_depth = parse_or_die("--max-depth", it.next()),
            "--warm-resolves" => {
                register_config.warm_resolves = parse_or_die("--warm-resolves", it.next())
            }
            "--staleness-rounds" => {
                register_config.staleness_rounds = parse_or_die("--staleness-rounds", it.next())
            }
            "--write-frac" => {
                load_config.write_frac = parse_or_die("--write-frac", it.next());
                if !(0.0..=1.0).contains(&load_config.write_frac) {
                    eprintln!("error: --write-frac must be within [0, 1]");
                    std::process::exit(1);
                }
            }
            "--transfer-frac" => {
                load_config.transfer_frac = parse_or_die("--transfer-frac", it.next());
                if !(0.0..=1.0).contains(&load_config.transfer_frac) {
                    eprintln!("error: --transfer-frac must be within [0, 1]");
                    std::process::exit(1);
                }
            }
            "--seed" => {
                // Shared by loadgen (workload RNG), chaos (window
                // jitter), and register (depths and gaps).
                load_config.seed = parse_or_die("--seed", it.next());
                chaos_seed = load_config.seed;
                register_config.seed = load_config.seed;
                scale_config.seed = load_config.seed;
                fuzz_config.seed = load_config.seed;
            }
            "--out" => out = Some(parse_or_die("--out", it.next())),
            "--validate-load" => validations.push((
                parse_or_die("--validate-load", it.next()),
                Some("hns-load-v2"),
            )),
            "--trace-out" => match it.next() {
                Some(path) => {
                    trace = true;
                    trace_out = Some(path.clone());
                }
                None => {
                    eprintln!("error: --trace-out requires a path");
                    std::process::exit(1);
                }
            },
            "--validate-trace" => validations.push((
                parse_or_die("--validate-trace", it.next()),
                Some("hns-trace-v1"),
            )),
            other => ids.push(other),
        }
    }

    if validate_cmd {
        // The subcommand's operands were collected as bare positionals.
        validations.extend(ids.drain(..).map(|p| (p.to_string(), None)));
        if validations.is_empty() {
            eprintln!("error: `validate` requires at least one file");
            std::process::exit(1);
        }
    }
    if !validations.is_empty() {
        let mut failed = false;
        for (path, expected) in &validations {
            match validate_any(path, *expected) {
                Ok(schema) => println!("{path}: valid {schema} export"),
                Err(err) => {
                    eprintln!("error: {err}");
                    failed = true;
                }
            }
        }
        std::process::exit(i32::from(failed));
    }

    let ids: Vec<&str> = if ids.is_empty() && (trace || load || chaos || register || scale || fuzz)
    {
        Vec::new()
    } else if ids.is_empty() || ids.contains(&"all") {
        ALL.to_vec()
    } else {
        ids
    };
    let mut failed = false;
    for id in ids {
        println!("=== experiment: {id} ===");
        match run_one(id) {
            Ok(output) => println!("{output}"),
            Err(err) => {
                eprintln!("error: {err}");
                eprintln!("known experiments: {}", ALL.join(" "));
                failed = true;
            }
        }
    }
    if load {
        println!("=== experiment: loadgen ===");
        let rep = loadgen::run(&load_config);
        println!("{}", rep.render());
        if let Some(path) = &out {
            let json = rep.to_json();
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: write {path}: {e}");
                failed = true;
            } else {
                println!("load JSON written to {path}");
            }
        }
        if let Some(path) = &load_baseline {
            let result = std::fs::read_to_string(path)
                .map_err(|e| format!("read {path}: {e}"))
                .and_then(|text| loadgen::report::check_regression(&rep, &text, load_regress));
            match result {
                Ok(summary) => println!("baseline check vs {path}:\n{summary}"),
                Err(err) => {
                    eprintln!("error: baseline check vs {path}: {err}");
                    failed = true;
                }
            }
        }
    }
    if chaos {
        println!("=== experiment: chaos ===");
        let (crash, partition, latency_spike) = chaos_faults.unwrap_or((true, true, true));
        let config = exp::chaos::ChaosConfig {
            crash,
            partition,
            latency_spike,
            seed: chaos_seed,
        };
        let run = exp::chaos::run(&config);
        println!("{}", run.render());
        let json = run.to_json();
        if chaos_validate_inline {
            match exp::chaos::validate(&json) {
                Ok(()) => println!("chaos export: valid hns-chaos-v1"),
                Err(err) => {
                    eprintln!("error: chaos export invalid: {err}");
                    failed = true;
                }
            }
        }
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: write {path}: {e}");
                failed = true;
            } else {
                println!("chaos JSON written to {path}");
            }
        }
        if let Some(path) = &timeline_out {
            println!("=== experiment: chaos timeline ===");
            let tl = exp::timeline::run(&exp::timeline::TimelineConfig {
                chaos: config,
                window_ms: timeline_window_ms,
            });
            println!("{}", tl.render());
            let json = tl.to_json();
            if let Err(err) = exp::timeline::validate(&json) {
                eprintln!("error: timeline export invalid: {err}");
                failed = true;
            }
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: write {path}: {e}");
                failed = true;
            } else {
                println!("timeline JSON written to {path}");
            }
        }
    }
    if register {
        println!("=== experiment: register ===");
        let run = exp::register::run(&register_config);
        println!("{}", run.render());
        let json = run.to_json();
        if let Err(err) = exp::register::validate(&json) {
            eprintln!("error: register export invalid: {err}");
            failed = true;
        }
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: write {path}: {e}");
                failed = true;
            } else {
                println!("register JSON written to {path}");
            }
        }
    }
    if scale {
        println!("=== experiment: scale ===");
        let run = exp::scale::run(&scale_config);
        println!("{}", run.render());
        let json = run.to_json();
        if let Err(err) = exp::scale::validate(&json) {
            eprintln!("error: scale export invalid: {err}");
            failed = true;
        }
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: write {path}: {e}");
                failed = true;
            } else {
                println!("scale JSON written to {path}");
            }
        }
    }
    if fuzz {
        println!("=== conformance: fuzz ===");
        if regen_corpus {
            match conformance::corpus::regenerate() {
                Ok(changed) if changed.is_empty() => {
                    println!("corpus already canonical; nothing rewritten");
                }
                Ok(changed) => {
                    println!("corpus regenerated; {} file(s) changed:", changed.len());
                    for f in changed {
                        println!("  {f}");
                    }
                }
                Err(e) => {
                    eprintln!("error: corpus regeneration failed: {e}");
                    failed = true;
                }
            }
        }
        match conformance::corpus::check() {
            Ok(()) => println!("golden corpus: canonical"),
            Err(problems) => {
                for p in &problems {
                    eprintln!("error: {p}");
                }
                failed = true;
            }
        }
        let report = conformance::fuzz::run(fuzz_config);
        println!("{}", report.render());
        if !report.ok() {
            failed = true;
        }
    }
    if trace {
        println!("=== traced queries ===");
        let run = exp::traced::run();
        println!("{}", run.render());
        if let Some(path) = trace_out {
            let json = run.to_json();
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: write {path}: {e}");
                failed = true;
            } else {
                println!("trace JSON written to {path}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

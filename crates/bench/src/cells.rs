//! Paper-vs-measured cells and plain-text table rendering.

use std::fmt::Write as _;

/// One measured quantity compared against the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The paper's reported value (milliseconds unless noted).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Cell {
    /// Builds a cell.
    pub fn new(paper: f64, measured: f64) -> Self {
        Cell { paper, measured }
    }

    /// Relative error versus the paper, in percent (positive = we are
    /// slower/larger).
    pub fn error_pct(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.measured - self.paper) / self.paper * 100.0
        }
    }
}

/// A labelled table of paper-vs-measured cells.
#[derive(Debug, Clone, Default)]
pub struct PaperTable {
    /// Table title.
    pub title: String,
    /// Column headers (excluding the row-label column).
    pub columns: Vec<String>,
    /// Rows: label plus one cell per column.
    pub rows: Vec<(String, Vec<Cell>)>,
}

impl PaperTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        PaperTable {
            title: title.into(),
            columns: columns.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), cells));
    }

    /// Largest absolute relative error in the table, percent.
    pub fn worst_error_pct(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|(_, cells)| cells.iter())
            .map(|c| c.error_pct().abs())
            .fold(0.0, f64::max)
    }

    /// Renders as aligned plain text: each column shows
    /// `paper / measured (err%)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let col_width = 26usize;
        let _ = write!(out, "{:label_width$}", "");
        for c in &self.columns {
            let _ = write!(out, " | {c:^col_width$}");
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:label_width$}", "");
        for _ in &self.columns {
            let _ = write!(out, " | {:^col_width$}", "paper / measured (err)");
        }
        let _ = writeln!(out);
        let total = label_width + self.columns.len() * (col_width + 3);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:label_width$}");
            for cell in cells {
                let shown = format!(
                    "{:7.1} / {:7.1} ({:+5.1}%)",
                    cell.paper,
                    cell.measured,
                    cell.error_pct()
                );
                let _ = write!(out, " | {shown:^col_width$}");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "worst cell error: {:.1}%", self.worst_error_pct());
        out
    }
}

/// A free-form results table (no paper column), for ablations.
#[derive(Debug, Clone, Default)]
pub struct PlainTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of preformatted cells.
    pub rows: Vec<Vec<String>>,
}

impl PlainTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        PlainTable {
            title: title.into(),
            columns: columns.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(
                out,
                "{}{:>w$}",
                if i == 0 { "" } else { " | " },
                c,
                w = widths[i]
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1))
        );
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{:>w$}",
                    if i == 0 { "" } else { " | " },
                    cell,
                    w = widths[i]
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_error() {
        assert!((Cell::new(100.0, 110.0).error_pct() - 10.0).abs() < 1e-9);
        assert_eq!(Cell::new(0.0, 5.0).error_pct(), 0.0);
    }

    #[test]
    fn paper_table_renders_and_tracks_worst_error() {
        let mut t = PaperTable::new("Table X", vec!["A", "B"]);
        t.push_row("row1", vec![Cell::new(100.0, 98.0), Cell::new(50.0, 60.0)]);
        let rendered = t.render();
        assert!(rendered.contains("Table X"));
        assert!(rendered.contains("row1"));
        assert!((t.worst_error_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = PaperTable::new("T", vec!["A"]);
        t.push_row("r", vec![]);
    }

    #[test]
    fn plain_table_renders() {
        let mut t = PlainTable::new("Ablation", vec!["ttl", "hit rate"]);
        t.push_row(vec!["60".into(), "0.95".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Ablation"));
        assert!(rendered.contains("0.95"));
    }
}

//! Paper-vs-measured cells, plain-text table rendering, and the sizing
//! plan for cell-sharded worlds.
//!
//! "Cell" is overloaded here on purpose: the tables below compare paper
//! cells against measured ones, while [`CellPlan`] sizes administrative
//! cells — the paper's zone-delegated shards, each with its own meta
//! server — for the scale-out experiment (E-S).

use std::fmt::Write as _;

/// Target names per administrative cell. The plan adds cells until each
/// holds roughly this many registered names, mirroring how a federation
/// splits when a single meta server's zone grows past its comfort zone.
pub const NAMES_PER_CELL_TARGET: usize = 4096;

/// Hard cap on cells (one simulated meta server host each).
pub const MAX_CELLS: usize = 256;

/// Names per context directory inside a cell.
pub const NAMES_PER_CONTEXT: usize = 64;

/// Distinct NSM binding payloads per cell. Every name record in a cell
/// carries one of these near-identical blobs, so a compact store should
/// keep each cell's pool once — not once per name.
pub const PAYLOAD_POOL: usize = 8;

/// Deterministic sizing of a cell-sharded world for a given name count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPlan {
    /// Total registered names across all cells.
    pub names: usize,
    /// Administrative cells (one meta server each).
    pub cells: usize,
}

impl CellPlan {
    /// Sizes a world for `names` registered names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is zero.
    pub fn for_names(names: usize) -> CellPlan {
        assert!(names > 0, "a world needs at least one name");
        let cells = (names / NAMES_PER_CELL_TARGET).clamp(1, MAX_CELLS);
        CellPlan { names, cells }
    }

    /// Names registered in cell `cell` (the remainder lands in the last
    /// cell, so totals always add up to `names`).
    pub fn names_in_cell(&self, cell: usize) -> usize {
        let base = self.names / self.cells;
        if cell + 1 == self.cells {
            self.names - base * (self.cells - 1)
        } else {
            base
        }
    }

    /// Context directories in cell `cell`.
    pub fn contexts_in_cell(&self, cell: usize) -> usize {
        self.names_in_cell(cell).div_ceil(NAMES_PER_CONTEXT)
    }

    /// Total context directories across the world.
    pub fn total_contexts(&self) -> usize {
        (0..self.cells).map(|c| self.contexts_in_cell(c)).sum()
    }

    /// Maps a global name index (`0..names`) to its `(cell, index)`
    /// coordinates under the same layout as [`CellPlan::names_in_cell`].
    pub fn locate(&self, global: usize) -> (usize, usize) {
        debug_assert!(global < self.names);
        let base = self.names / self.cells;
        let cell = (global / base).min(self.cells - 1);
        (cell, global - cell * base)
    }
}

/// One measured quantity compared against the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The paper's reported value (milliseconds unless noted).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Cell {
    /// Builds a cell.
    pub fn new(paper: f64, measured: f64) -> Self {
        Cell { paper, measured }
    }

    /// Relative error versus the paper, in percent (positive = we are
    /// slower/larger).
    pub fn error_pct(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.measured - self.paper) / self.paper * 100.0
        }
    }
}

/// A labelled table of paper-vs-measured cells.
#[derive(Debug, Clone, Default)]
pub struct PaperTable {
    /// Table title.
    pub title: String,
    /// Column headers (excluding the row-label column).
    pub columns: Vec<String>,
    /// Rows: label plus one cell per column.
    pub rows: Vec<(String, Vec<Cell>)>,
}

impl PaperTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        PaperTable {
            title: title.into(),
            columns: columns.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), cells));
    }

    /// Largest absolute relative error in the table, percent.
    pub fn worst_error_pct(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|(_, cells)| cells.iter())
            .map(|c| c.error_pct().abs())
            .fold(0.0, f64::max)
    }

    /// Renders as aligned plain text: each column shows
    /// `paper / measured (err%)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let col_width = 26usize;
        let _ = write!(out, "{:label_width$}", "");
        for c in &self.columns {
            let _ = write!(out, " | {c:^col_width$}");
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:label_width$}", "");
        for _ in &self.columns {
            let _ = write!(out, " | {:^col_width$}", "paper / measured (err)");
        }
        let _ = writeln!(out);
        let total = label_width + self.columns.len() * (col_width + 3);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:label_width$}");
            for cell in cells {
                let shown = format!(
                    "{:7.1} / {:7.1} ({:+5.1}%)",
                    cell.paper,
                    cell.measured,
                    cell.error_pct()
                );
                let _ = write!(out, " | {shown:^col_width$}");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "worst cell error: {:.1}%", self.worst_error_pct());
        out
    }
}

/// A free-form results table (no paper column), for ablations.
#[derive(Debug, Clone, Default)]
pub struct PlainTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of preformatted cells.
    pub rows: Vec<Vec<String>>,
}

impl PlainTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        PlainTable {
            title: title.into(),
            columns: columns.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(
                out,
                "{}{:>w$}",
                if i == 0 { "" } else { " | " },
                c,
                w = widths[i]
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1))
        );
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{:>w$}",
                    if i == 0 { "" } else { " | " },
                    cell,
                    w = widths[i]
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_plan_sizes_monotonically_and_conserves_names() {
        let small = CellPlan::for_names(10_000);
        let mid = CellPlan::for_names(100_000);
        let big = CellPlan::for_names(1_000_000);
        assert!(small.cells < mid.cells && mid.cells < big.cells);
        assert!(big.cells <= MAX_CELLS);
        for plan in [small, mid, big] {
            let total: usize = (0..plan.cells).map(|c| plan.names_in_cell(c)).sum();
            assert_eq!(total, plan.names, "{plan:?}");
        }
        // The delegation tree really fans out into thousands of contexts
        // at the upper scale points.
        assert!(mid.total_contexts() > 1000, "{}", mid.total_contexts());
        assert!(big.total_contexts() > 10_000, "{}", big.total_contexts());
    }

    #[test]
    fn cell_error() {
        assert!((Cell::new(100.0, 110.0).error_pct() - 10.0).abs() < 1e-9);
        assert_eq!(Cell::new(0.0, 5.0).error_pct(), 0.0);
    }

    #[test]
    fn paper_table_renders_and_tracks_worst_error() {
        let mut t = PaperTable::new("Table X", vec!["A", "B"]);
        t.push_row("row1", vec![Cell::new(100.0, 98.0), Cell::new(50.0, 60.0)]);
        let rendered = t.render();
        assert!(rendered.contains("Table X"));
        assert!(rendered.contains("row1"));
        assert!((t.worst_error_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = PaperTable::new("T", vec!["A"]);
        t.push_row("r", vec![]);
    }

    #[test]
    fn plain_table_renders() {
        let mut t = PlainTable::new("Ablation", vec!["ttl", "hit rate"]);
        t.push_row(vec!["60".into(), "0.95".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Ablation"));
        assert!(rendered.contains("0.95"));
    }
}

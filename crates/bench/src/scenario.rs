//! The Table 3.1 scenario: one import under every colocation arrangement
//! and cache state.

use std::sync::Arc;

use hns_core::cache::CacheMode;
use hns_core::colocation::{
    AgentClient, AgentService, HnsHandle, HnsService, AGENT_PROGRAM, HNS_PROGRAM,
};
use hns_core::name::HnsName;
use hns_core::service::Hns;
use hrpc::{ComponentSet, HrpcBinding};
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::{DeployedBindingNsms, Importer};
use simnet::topology::NetAddr;
use wire::Value;

/// The five colocation arrangements of Table 3.1. `[x, y]` means
/// colocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrangement {
    /// 1. `[Client, HNS, NSMs]`
    AllLinked,
    /// 2. `[Client] [HNS, NSMs]` — the agent structure.
    Agent,
    /// 3. `[HNS] [Client, NSMs]`
    RemoteHns,
    /// 4. `[NSMs] [Client, HNS]`
    RemoteNsms,
    /// 5. `[Client] [HNS] [NSMs]`
    AllRemote,
}

impl Arrangement {
    /// All five, in table order.
    pub fn all() -> [Arrangement; 5] {
        [
            Arrangement::AllLinked,
            Arrangement::Agent,
            Arrangement::RemoteHns,
            Arrangement::RemoteNsms,
            Arrangement::AllRemote,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Arrangement::AllLinked => "1. [Client, HNS, NSMs]",
            Arrangement::Agent => "2. [Client] [HNS, NSMs]",
            Arrangement::RemoteHns => "3. [HNS] [Client, NSMs]",
            Arrangement::RemoteNsms => "4. [NSMs] [Client, HNS]",
            Arrangement::AllRemote => "5. [Client] [HNS] [NSMs]",
        }
    }
}

/// The cache states of Table 3.1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Column A: both caches miss.
    Miss,
    /// Column B: HNS cache hits, NSM cache misses.
    HnsHit,
    /// Column C: both caches hit.
    BothHit,
}

/// A deployed arrangement, ready to run imports.
pub struct DeployedArrangement {
    /// The environment.
    pub testbed: Testbed,
    /// The HNS instance (wherever it is linked).
    pub hns: Arc<Hns>,
    /// The deployed binding NSMs.
    pub nsms: DeployedBindingNsms,
    runner: Runner,
}

enum Runner {
    Importer(Importer),
    Agent(AgentClient),
}

/// Builds the testbed and deploys one arrangement with the given NSM/HNS
/// cache form.
pub fn deploy(
    arrangement: Arrangement,
    form: NsmCacheForm,
    mode: CacheMode,
) -> DeployedArrangement {
    let tb = Testbed::build();
    let client = tb.hosts.client;
    let (hns_host, nsm_host) = match arrangement {
        Arrangement::AllLinked => (client, client),
        Arrangement::Agent => (tb.hosts.agent, tb.hosts.agent),
        Arrangement::RemoteHns => (tb.hosts.hns, client),
        Arrangement::RemoteNsms => (client, tb.hosts.nsm),
        Arrangement::AllRemote => (tb.hosts.hns, tb.hosts.nsm),
    };
    let nsms = tb.deploy_binding_nsms(nsm_host, form);
    let hns = tb.make_hns(hns_host, mode);

    let runner = match arrangement {
        Arrangement::AllLinked | Arrangement::RemoteNsms => Runner::Importer(Importer::new(
            Arc::clone(&tb.net),
            client,
            HnsHandle::Linked(Arc::clone(&hns)),
        )),
        Arrangement::RemoteHns | Arrangement::AllRemote => {
            let port = tb
                .net
                .export(hns_host, HNS_PROGRAM, HnsService::new(Arc::clone(&hns)));
            let binding = HrpcBinding {
                host: hns_host,
                addr: NetAddr::of(hns_host),
                program: HNS_PROGRAM,
                port,
                components: ComponentSet::raw_tcp(port),
            };
            Runner::Importer(Importer::new(
                Arc::clone(&tb.net),
                client,
                HnsHandle::Remote(binding),
            ))
        }
        Arrangement::Agent => {
            let port = tb.net.export(
                tb.hosts.agent,
                AGENT_PROGRAM,
                AgentService::new(Arc::clone(&hns), tb.hosts.agent),
            );
            let binding = HrpcBinding {
                host: tb.hosts.agent,
                addr: NetAddr::of(tb.hosts.agent),
                program: AGENT_PROGRAM,
                port,
                components: ComponentSet::raw_tcp(port),
            };
            Runner::Agent(AgentClient::new(Arc::clone(&tb.net), client, binding))
        }
    };
    DeployedArrangement {
        testbed: tb,
        hns,
        nsms,
        runner,
    }
}

impl DeployedArrangement {
    /// The HNS name of the target Sun service's host.
    pub fn target_name(&self) -> HnsName {
        HnsName::new(self.testbed.ctx_bind(), "fiji.cs.washington.edu").expect("name")
    }

    /// Performs one import end to end; returns nothing (timing is read
    /// from the world by the caller).
    pub fn run_import(&self) -> Result<(), String> {
        let name = self.target_name();
        match &self.runner {
            Runner::Importer(importer) => importer
                .import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &name)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Runner::Agent(agent) => agent
                .query(
                    &hns_core::QueryClass::hrpc_binding(),
                    &name,
                    vec![
                        ("service", Value::str(DESIRED_SERVICE)),
                        ("program", Value::U32(DESIRED_SERVICE_PROGRAM.0)),
                    ],
                )
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    /// Forces the given cache state, then measures one import in virtual
    /// milliseconds.
    pub fn measure(&self, state: CacheState) -> f64 {
        match state {
            CacheState::Miss => {
                self.hns.clear_cache();
                self.nsms.bind.clear_cache();
            }
            CacheState::HnsHit => {
                self.run_import().expect("warming import");
                self.nsms.bind.clear_cache();
            }
            CacheState::BothHit => {
                self.run_import().expect("warming import");
                self.run_import().expect("warming import");
            }
        }
        let (result, took, _) = self.testbed.world.measure(|| self.run_import());
        result.expect("measured import");
        took.as_ms_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_arrangement_imports_successfully() {
        for arrangement in Arrangement::all() {
            let deployed = deploy(arrangement, NsmCacheForm::Marshalled, CacheMode::Marshalled);
            deployed.run_import().unwrap_or_else(|e| {
                panic!("{}: {e}", arrangement.label());
            });
        }
    }

    #[test]
    fn arrangements_order_by_remote_hops_on_miss() {
        let ms: Vec<f64> = Arrangement::all()
            .into_iter()
            .map(|a| {
                deploy(a, NsmCacheForm::Marshalled, CacheMode::Marshalled).measure(CacheState::Miss)
            })
            .collect();
        // Row 1 (no hops) is cheapest; row 5 (two hops) is dearest.
        assert!(ms[0] < ms[1] && ms[0] < ms[2] && ms[0] < ms[3], "{ms:?}");
        assert!(ms[4] > ms[1] && ms[4] > ms[2] && ms[4] > ms[3], "{ms:?}");
    }

    #[test]
    fn cache_states_order_within_a_row() {
        let deployed = deploy(
            Arrangement::AllLinked,
            NsmCacheForm::Marshalled,
            CacheMode::Marshalled,
        );
        let a = deployed.measure(CacheState::Miss);
        let b = deployed.measure(CacheState::HnsHit);
        let c = deployed.measure(CacheState::BothHit);
        assert!(a > b && b > c, "A={a} B={b} C={c}");
    }
}

//! Deployment scenarios: the Table 3.1 colocation matrix and the
//! cell-sharded world generator for the scale-out experiment (E-S).

use std::sync::Arc;

use bindns::name::DomainName;
use bindns::rr::{RData, RType, ResourceRecord};
use bindns::server::{deploy as deploy_bind, single_zone_server, BindDeployment};
use bindns::zone::Zone;
use simnet::rng::DetRng;
use simnet::world::World;
use simnet::HostId;

use crate::cells::{CellPlan, PAYLOAD_POOL};

use hns_core::cache::CacheMode;
use hns_core::colocation::{
    AgentClient, AgentService, HnsHandle, HnsService, AGENT_PROGRAM, HNS_PROGRAM,
};
use hns_core::name::HnsName;
use hns_core::service::Hns;
use hrpc::{ComponentSet, HrpcBinding};
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::{DeployedBindingNsms, Importer};
use simnet::topology::NetAddr;
use wire::Value;

/// The five colocation arrangements of Table 3.1. `[x, y]` means
/// colocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrangement {
    /// 1. `[Client, HNS, NSMs]`
    AllLinked,
    /// 2. `[Client] [HNS, NSMs]` — the agent structure.
    Agent,
    /// 3. `[HNS] [Client, NSMs]`
    RemoteHns,
    /// 4. `[NSMs] [Client, HNS]`
    RemoteNsms,
    /// 5. `[Client] [HNS] [NSMs]`
    AllRemote,
}

impl Arrangement {
    /// All five, in table order.
    pub fn all() -> [Arrangement; 5] {
        [
            Arrangement::AllLinked,
            Arrangement::Agent,
            Arrangement::RemoteHns,
            Arrangement::RemoteNsms,
            Arrangement::AllRemote,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Arrangement::AllLinked => "1. [Client, HNS, NSMs]",
            Arrangement::Agent => "2. [Client] [HNS, NSMs]",
            Arrangement::RemoteHns => "3. [HNS] [Client, NSMs]",
            Arrangement::RemoteNsms => "4. [NSMs] [Client, HNS]",
            Arrangement::AllRemote => "5. [Client] [HNS] [NSMs]",
        }
    }
}

/// The cache states of Table 3.1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Column A: both caches miss.
    Miss,
    /// Column B: HNS cache hits, NSM cache misses.
    HnsHit,
    /// Column C: both caches hit.
    BothHit,
}

/// A deployed arrangement, ready to run imports.
pub struct DeployedArrangement {
    /// The environment.
    pub testbed: Testbed,
    /// The HNS instance (wherever it is linked).
    pub hns: Arc<Hns>,
    /// The deployed binding NSMs.
    pub nsms: DeployedBindingNsms,
    runner: Runner,
}

enum Runner {
    Importer(Importer),
    Agent(AgentClient),
}

/// Builds the testbed and deploys one arrangement with the given NSM/HNS
/// cache form.
pub fn deploy(
    arrangement: Arrangement,
    form: NsmCacheForm,
    mode: CacheMode,
) -> DeployedArrangement {
    let tb = Testbed::build();
    let client = tb.hosts.client;
    let (hns_host, nsm_host) = match arrangement {
        Arrangement::AllLinked => (client, client),
        Arrangement::Agent => (tb.hosts.agent, tb.hosts.agent),
        Arrangement::RemoteHns => (tb.hosts.hns, client),
        Arrangement::RemoteNsms => (client, tb.hosts.nsm),
        Arrangement::AllRemote => (tb.hosts.hns, tb.hosts.nsm),
    };
    let nsms = tb.deploy_binding_nsms(nsm_host, form);
    let hns = tb.make_hns(hns_host, mode);

    let runner = match arrangement {
        Arrangement::AllLinked | Arrangement::RemoteNsms => Runner::Importer(Importer::new(
            Arc::clone(&tb.net),
            client,
            HnsHandle::Linked(Arc::clone(&hns)),
        )),
        Arrangement::RemoteHns | Arrangement::AllRemote => {
            let port = tb
                .net
                .export(hns_host, HNS_PROGRAM, HnsService::new(Arc::clone(&hns)));
            let binding = HrpcBinding {
                host: hns_host,
                addr: NetAddr::of(hns_host),
                program: HNS_PROGRAM,
                port,
                components: ComponentSet::raw_tcp(port),
            };
            Runner::Importer(Importer::new(
                Arc::clone(&tb.net),
                client,
                HnsHandle::Remote(binding),
            ))
        }
        Arrangement::Agent => {
            let port = tb.net.export(
                tb.hosts.agent,
                AGENT_PROGRAM,
                AgentService::new(Arc::clone(&hns), tb.hosts.agent),
            );
            let binding = HrpcBinding {
                host: tb.hosts.agent,
                addr: NetAddr::of(tb.hosts.agent),
                program: AGENT_PROGRAM,
                port,
                components: ComponentSet::raw_tcp(port),
            };
            Runner::Agent(AgentClient::new(Arc::clone(&tb.net), client, binding))
        }
    };
    DeployedArrangement {
        testbed: tb,
        hns,
        nsms,
        runner,
    }
}

impl DeployedArrangement {
    /// The HNS name of the target Sun service's host.
    pub fn target_name(&self) -> HnsName {
        HnsName::new(self.testbed.ctx_bind(), "fiji.cs.washington.edu").expect("name")
    }

    /// Performs one import end to end; returns nothing (timing is read
    /// from the world by the caller).
    pub fn run_import(&self) -> Result<(), String> {
        let name = self.target_name();
        match &self.runner {
            Runner::Importer(importer) => importer
                .import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &name)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Runner::Agent(agent) => agent
                .query(
                    &hns_core::QueryClass::hrpc_binding(),
                    &name,
                    vec![
                        ("service", Value::str(DESIRED_SERVICE)),
                        ("program", Value::U32(DESIRED_SERVICE_PROGRAM.0)),
                    ],
                )
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    /// Forces the given cache state, then measures one import in virtual
    /// milliseconds.
    pub fn measure(&self, state: CacheState) -> f64 {
        match state {
            CacheState::Miss => {
                self.hns.clear_cache();
                self.nsms.bind.clear_cache();
            }
            CacheState::HnsHit => {
                self.run_import().expect("warming import");
                self.nsms.bind.clear_cache();
            }
            CacheState::BothHit => {
                self.run_import().expect("warming import");
                self.run_import().expect("warming import");
            }
        }
        let (result, took, _) = self.testbed.world.measure(|| self.run_import());
        result.expect("measured import");
        took.as_ms_f64()
    }
}

/// A cell-sharded world: a root meta server whose `hns` zone delegates
/// `cell{c}.hns` to per-cell meta servers, each holding that cell's
/// context directories, NSM-binding mappings, and registered-name
/// records. This is the paper's federation story at scale — thousands
/// of contexts spread over a zone-delegation tree instead of one flat
/// meta zone.
pub struct CellWorld {
    /// The simulated world.
    pub world: Arc<World>,
    /// Its RPC fabric.
    pub net: Arc<hrpc::net::RpcNet>,
    /// The querying client's host.
    pub client: HostId,
    /// The root meta server (zone `hns`, NS cuts + glue only).
    pub root: BindDeployment,
    /// Per-cell meta servers, in cell order.
    pub cells: Vec<BindDeployment>,
    /// The sizing plan the world was built from.
    pub plan: CellPlan,
    /// Total resource records across the root and every cell zone.
    pub records: usize,
}

/// Origin of cell `cell`'s delegated zone.
pub fn cell_origin(cell: usize) -> DomainName {
    DomainName::parse(&format!("cell{cell}.hns")).expect("cell origin")
}

/// The `index`-th registered name in cell `cell`.
pub fn cell_name(cell: usize, index: usize) -> DomainName {
    DomainName::parse(&format!("n{index}.cell{cell}.hns")).expect("cell name")
}

/// One of the `PAYLOAD_POOL` near-identical NSM binding blobs names in
/// `cell` point at. A compact record store keeps each blob once per
/// cell; a naive per-name copy keeps it once per name.
fn binding_payload(cell: usize, slot: usize) -> Vec<u8> {
    format!(
        "nsm=nsm-cell{cell}-{slot};host=ns.cell{cell}.hns;context=cell{cell};\
         program=30000{slot};port=102{slot};suite=sun;version=1;owner=admin-cell{cell}"
    )
    .into_bytes()
}

/// Builds and deploys a cell-sharded world for `plan`, assigning each
/// name's binding payload with a rng seeded from `seed` (so worlds are
/// byte-identical per seed).
pub fn build_cell_world(plan: &CellPlan, seed: u64) -> CellWorld {
    let world = World::paper();
    let client = world.add_host("client");
    let root_host = world.add_host("root.hns");
    let net = hrpc::net::RpcNet::new(Arc::clone(&world));
    let mut rng = DetRng::new(seed);
    let ttl = 600;

    let mut root_zone = Zone::new(DomainName::parse("hns").expect("origin"), ttl);
    let mut cells = Vec::with_capacity(plan.cells);
    let mut records = 0usize;
    for c in 0..plan.cells {
        let host = world.add_host(format!("ns.cell{c}.hns"));
        let origin = cell_origin(c);
        let ns_name = DomainName::parse(&format!("ns.cell{c}.hns")).expect("ns name");
        root_zone
            .add(ResourceRecord {
                name: origin.clone(),
                rtype: RType::Ns,
                ttl,
                rdata: RData::Domain(ns_name.clone()),
            })
            .expect("delegation");
        root_zone
            .add(ResourceRecord::a(ns_name, ttl, NetAddr::of(host)))
            .expect("glue");
        records += 2;

        let mut zone = Zone::new(origin.clone(), ttl);
        let names = plan.names_in_cell(c);
        for k in 0..plan.contexts_in_cell(c) {
            let ctx = DomainName::parse(&format!("ctx{k}.cell{c}.hns")).expect("ctx");
            zone.add(ResourceRecord::unspec(
                ctx,
                ttl,
                format!("ns=NS-cell{c};map=identity").into_bytes(),
            ))
            .expect("context record");
            let map = DomainName::parse(&format!("map{k}.cell{c}.hns")).expect("map");
            let slot = rng.next_below(PAYLOAD_POOL as u64) as usize;
            zone.add(ResourceRecord::unspec(map, ttl, binding_payload(c, slot)))
                .expect("nsm mapping");
            records += 2;
        }
        for i in 0..names {
            let slot = rng.next_below(PAYLOAD_POOL as u64) as usize;
            zone.add(ResourceRecord::unspec(
                cell_name(c, i),
                ttl,
                binding_payload(c, slot),
            ))
            .expect("name record");
        }
        records += names;
        cells.push(deploy_bind(
            &net,
            host,
            single_zone_server(format!("meta-cell{c}"), zone, true),
        ));
    }
    let root = deploy_bind(
        &net,
        root_host,
        single_zone_server("root", root_zone, false),
    );
    CellWorld {
        world,
        net,
        client,
        root,
        cells,
        plan: *plan,
        records,
    }
}

impl CellWorld {
    /// Bytes actually resident across every zone's compact store
    /// (shared record bodies counted once).
    pub fn resident_bytes(&self) -> usize {
        self.deployments()
            .map(|d| {
                d.server
                    .with_db(|db| Self::db_bytes(db, Zone::resident_bytes))
            })
            .sum()
    }

    /// Bytes the same zones would hold under naive per-record copies —
    /// the `String`-keyed baseline the compact store is measured against.
    pub fn naive_bytes(&self) -> usize {
        self.deployments()
            .map(|d| d.server.with_db(|db| Self::db_bytes(db, Zone::size_bytes)))
            .sum()
    }

    fn deployments(&self) -> impl Iterator<Item = &BindDeployment> {
        std::iter::once(&self.root).chain(self.cells.iter())
    }

    fn db_bytes(db: &mut bindns::ZoneDb, f: impl Fn(&Zone) -> usize) -> usize {
        db.origins().iter().filter_map(|o| db.zone(o)).map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_world_delegates_and_dedups_record_bodies() {
        let plan = CellPlan::for_names(2048);
        let cw = build_cell_world(&plan, 7);
        assert_eq!(cw.plan.cells, 1);
        // Names resolve through the root's referral to the cell server.
        let resolver = bindns::recursive::RecursiveResolver::new(
            Arc::clone(&cw.net),
            cw.client,
            cw.root.std_binding,
        );
        let records = resolver
            .query(&cell_name(0, 5), RType::Unspec)
            .expect("resolve via delegation");
        assert_eq!(records.len(), 1);
        // The compact store keeps the shared payload pool once; the
        // naive accounting pays for it once per name.
        assert!(
            cw.resident_bytes() * 2 < cw.naive_bytes(),
            "resident {} vs naive {}",
            cw.resident_bytes(),
            cw.naive_bytes()
        );
    }

    #[test]
    fn cell_worlds_are_deterministic_per_seed() {
        let plan = CellPlan::for_names(1000);
        let a = build_cell_world(&plan, 42);
        let b = build_cell_world(&plan, 42);
        assert_eq!(a.records, b.records);
        assert_eq!(a.resident_bytes(), b.resident_bytes());
        assert_eq!(a.naive_bytes(), b.naive_bytes());
    }

    #[test]
    fn every_arrangement_imports_successfully() {
        for arrangement in Arrangement::all() {
            let deployed = deploy(arrangement, NsmCacheForm::Marshalled, CacheMode::Marshalled);
            deployed.run_import().unwrap_or_else(|e| {
                panic!("{}: {e}", arrangement.label());
            });
        }
    }

    #[test]
    fn arrangements_order_by_remote_hops_on_miss() {
        let ms: Vec<f64> = Arrangement::all()
            .into_iter()
            .map(|a| {
                deploy(a, NsmCacheForm::Marshalled, CacheMode::Marshalled).measure(CacheState::Miss)
            })
            .collect();
        // Row 1 (no hops) is cheapest; row 5 (two hops) is dearest.
        assert!(ms[0] < ms[1] && ms[0] < ms[2] && ms[0] < ms[3], "{ms:?}");
        assert!(ms[4] > ms[1] && ms[4] > ms[2] && ms[4] > ms[3], "{ms:?}");
    }

    #[test]
    fn cache_states_order_within_a_row() {
        let deployed = deploy(
            Arrangement::AllLinked,
            NsmCacheForm::Marshalled,
            CacheMode::Marshalled,
        );
        let a = deployed.measure(CacheState::Miss);
        let b = deployed.measure(CacheState::HnsHit);
        let c = deployed.measure(CacheState::BothHit);
        assert!(a > b && b > c, "A={a} B={b} C={c}");
    }
}

//! `hns-bench` — the experiment harness.
//!
//! Regenerates every table and figure of the paper's evaluation in
//! calibrated virtual time ([`experiments`]), plus criterion micro-benches
//! in real time (`benches/`). Run everything with:
//!
//! ```text
//! cargo run -p hns-bench --bin experiments -- all
//! ```
#![warn(missing_docs)]

pub mod cells;
pub mod experiments;
pub mod loadgen;
pub mod scenario;

pub use cells::{Cell, PaperTable, PlainTable};
pub use hns_core::obs;
pub use scenario::{deploy, Arrangement, CacheState, DeployedArrangement};

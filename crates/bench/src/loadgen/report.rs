//! JSON export of a load sweep (`hns-load-v2`) plus the baseline
//! regression check the CI guard runs.
//!
//! # Cold-operation cache semantics
//!
//! The per-run `hns_cache` object covers only the *warm* HNS instance.
//! Cold operations deliberately run a `CacheMode::Disabled` instance —
//! a full meta walk every time, the paper's uncached shape — and a
//! disabled cache counts nothing, so cold traffic never shows up as
//! cache misses (the `"misses": 0` a warm run reports is correct, not
//! missing accounting). The explicit `cold_walks` field carries the
//! cold volume instead. `binding_cache` reports the composed
//! fast path that serves the warm mix.

use hns_core::obs::json;
use hns_core::obs::metrics::HistogramStats;

use super::{LoadReport, OpenRunResult, RunResult};

fn stats_json(s: &HistogramStats) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \
         \"p99\": {}, \"mean\": {}}}",
        s.count,
        s.min,
        s.max,
        s.p50,
        s.p95,
        s.p99,
        json::number(s.mean())
    )
}

fn run_json(r: &RunResult) -> String {
    format!(
        "{{\"threads\": {}, \"ops\": {}, \"errors\": {}, \"wall_secs\": {}, \
         \"qps\": {}, \"warm_ops\": {}, \"cold_ops\": {}, \"bind_ops\": {}, \
         \"write_ops\": {}, \"transfer_ops\": {}, \
         \"latency_us\": {}, \
         \"hns_cache\": {{\"hits\": {}, \"misses\": {}, \"expired\": {}, \"cold_walks\": {}}}, \
         \"binding_cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}}}}}",
        r.threads,
        r.ops,
        r.errors,
        json::number(r.wall_secs),
        json::number(r.qps),
        r.warm_ops,
        r.cold_ops,
        r.bind_ops,
        r.write_ops,
        r.transfer_ops,
        stats_json(&r.latency_us),
        r.hns_hits,
        r.hns_misses,
        r.hns_expired,
        r.cold_ops,
        r.binding_hits,
        r.binding_misses,
        r.binding_inserts,
    )
}

fn open_run_json(r: &OpenRunResult) -> String {
    let windows: Vec<String> = r
        .windows
        .iter()
        .map(|w| {
            format!(
                "{{\"index\": {}, \"ops\": {}, \"errors\": {}, \"late_ops\": {}, \
                 \"backlog_max\": {}, \"lateness_mean_us\": {}, \"lateness_max_us\": {}, \
                 \"sojourn_mean_us\": {}, \"sojourn_max_us\": {}}}",
                w.index,
                w.ops,
                w.errors,
                w.late_ops,
                w.backlog_max,
                json::number(w.lateness_mean_us()),
                w.lateness_max_us,
                json::number(w.sojourn_mean_us()),
                w.sojourn_max_us,
            )
        })
        .collect();
    format!(
        "{{\"offered_qps\": {}, \"threads\": {}, \"duration_ms\": {}, \
         \"scheduled\": {}, \"ops\": {}, \"errors\": {}, \"wall_secs\": {}, \
         \"achieved_qps\": {}, \"latency_us\": {}, \"lateness_us\": {}, \
         \"late_ops\": {}, \"backlog_max\": {}, \"window_ms\": {}, \
         \"windows\": [{}]}}",
        json::number(r.offered_qps),
        r.threads,
        r.duration_ms,
        r.scheduled,
        r.ops,
        r.errors,
        json::number(r.wall_secs),
        json::number(r.achieved_qps),
        stats_json(&r.latency_us),
        stats_json(&r.lateness_us),
        r.late_ops,
        r.backlog_max,
        r.window_ms,
        windows.join(", "),
    )
}

/// Renders the whole sweep as an `hns-load-v2` JSON document.
pub fn to_json(report: &LoadReport) -> String {
    let config = &report.config;
    let closed: Vec<String> = report.runs.iter().map(run_json).collect();
    let open: Vec<String> = report.open_runs.iter().map(open_run_json).collect();
    let offered: Vec<String> = config
        .offered_qps
        .iter()
        .map(|&q| json::number(q))
        .collect();
    format!(
        "{{\n  \"schema\": \"hns-load-v2\",\n  \
         \"host\": {{\"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},\n  \
         \"config\": {{\"dispatch\": \"sharded\", \"ops_per_thread\": {}, \
         \"duration_ms\": {}, \"zipf_s\": {}, \"cold_frac\": {}, \
         \"bind_frac\": {}, \"write_frac\": {}, \"transfer_frac\": {}, \
         \"seed\": {}, \"faults\": {}, \
         \"offered_qps\": [{}], \"open_threads\": {}, \"open_duration_ms\": {}}},\n  \
         \"closed_runs\": [\n    {}\n  ],\n  \
         \"open_runs\": [\n    {}\n  ]\n}}\n",
        report.cores,
        report.os,
        report.arch,
        config.ops_per_thread,
        config
            .duration_ms
            .map_or("null".to_string(), |d| d.to_string()),
        json::number(config.zipf_s),
        json::number(config.cold_frac),
        json::number(config.bind_frac),
        json::number(config.write_frac),
        json::number(config.transfer_frac),
        config.seed,
        config.faults,
        offered.join(", "),
        config.open_threads,
        config.open_duration_ms,
        closed.join(",\n    "),
        open.join(",\n    "),
    )
}

/// Validates an `hns-load-v2` document: schema tag, host provenance,
/// at least one run of either kind, and the per-run fields the
/// baseline consumers read.
pub fn validate(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-load-v2") {
        return Err("missing or unexpected `schema`".into());
    }
    let host = v.get("host").ok_or("missing `host`")?;
    for field in ["cores", "os", "arch"] {
        if host.get(field).is_none() {
            return Err(format!("host: missing `{field}`"));
        }
    }
    let closed = v
        .get("closed_runs")
        .and_then(|r| r.as_array())
        .ok_or("missing `closed_runs` array")?;
    let open = v
        .get("open_runs")
        .and_then(|r| r.as_array())
        .ok_or("missing `open_runs` array")?;
    if closed.is_empty() && open.is_empty() {
        return Err("no runs in export".into());
    }
    for (i, run) in closed.iter().enumerate() {
        for field in [
            "threads",
            "ops",
            "qps",
            "write_ops",
            "transfer_ops",
            "hns_cache",
            "binding_cache",
        ] {
            if run.get(field).is_none() {
                return Err(format!("closed run {i}: missing `{field}`"));
            }
        }
        let lat = run
            .get("latency_us")
            .ok_or(format!("closed run {i}: missing `latency_us`"))?;
        for field in ["p50", "p95", "p99"] {
            if lat.get(field).is_none() {
                return Err(format!("closed run {i}: latency_us missing `{field}`"));
            }
        }
    }
    for (i, run) in open.iter().enumerate() {
        for field in [
            "offered_qps",
            "achieved_qps",
            "ops",
            "lateness_us",
            "backlog_max",
        ] {
            if run.get(field).is_none() {
                return Err(format!("open run {i}: missing `{field}`"));
            }
        }
        let lat = run
            .get("latency_us")
            .ok_or(format!("open run {i}: missing `latency_us`"))?;
        for field in ["p50", "p95", "p99"] {
            if lat.get(field).is_none() {
                return Err(format!("open run {i}: latency_us missing `{field}`"));
            }
        }
        if run.get("window_ms").and_then(|w| w.as_u64()).is_none() {
            return Err(format!("open run {i}: missing `window_ms`"));
        }
        let windows = run
            .get("windows")
            .and_then(|w| w.as_array())
            .ok_or(format!("open run {i}: missing `windows` array"))?;
        if windows.is_empty() {
            return Err(format!("open run {i}: empty `windows` series"));
        }
        for (j, w) in windows.iter().enumerate() {
            if w.get("index").and_then(|x| x.as_u64()) != Some(j as u64) {
                return Err(format!(
                    "open run {i}: window {j}: missing or non-contiguous `index`"
                ));
            }
            for field in [
                "ops",
                "late_ops",
                "backlog_max",
                "lateness_mean_us",
                "sojourn_mean_us",
            ] {
                if w.get(field).is_none() {
                    return Err(format!("open run {i}: window {j}: missing `{field}`"));
                }
            }
        }
    }
    Ok(())
}

/// Compares a fresh sweep against a committed baseline document: every
/// thread count present in both must keep at least `factor` of the
/// baseline's closed-loop QPS. Accepts `hns-load-v2` (`closed_runs`)
/// and the older `hns-load-v1` (`runs`) as the baseline. Returns a
/// human-readable summary on success.
pub fn check_regression(
    report: &LoadReport,
    baseline_text: &str,
    factor: f64,
) -> Result<String, String> {
    let v = json::parse(baseline_text).map_err(|e| format!("baseline parse error: {e}"))?;
    let runs = v
        .get("closed_runs")
        .or_else(|| v.get("runs"))
        .and_then(|r| r.as_array())
        .ok_or("baseline has neither `closed_runs` nor `runs`")?;
    let mut compared = Vec::new();
    for current in &report.runs {
        let Some(base_qps) = runs.iter().find_map(|run| {
            (run.get("threads").and_then(|t| t.as_u64()) == Some(current.threads as u64))
                .then(|| run.get("qps").and_then(|q| q.as_f64()))
                .flatten()
        }) else {
            continue;
        };
        let floor = base_qps * factor;
        if current.qps < floor {
            return Err(format!(
                "regression at {} threads: {:.0} QPS < {:.0} ({}x of baseline {:.0})",
                current.threads, current.qps, floor, factor, base_qps
            ));
        }
        compared.push(format!(
            "{} threads: {:.0} QPS >= {:.0} ({}x of baseline {:.0})",
            current.threads, current.qps, floor, factor, base_qps
        ));
    }
    if compared.is_empty() {
        return Err("no thread count present in both the run and the baseline".into());
    }
    Ok(compared.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{LoadConfig, OpenWindow};

    fn sample_run() -> RunResult {
        RunResult {
            threads: 2,
            ops: 1000,
            errors: 0,
            warm_ops: 880,
            cold_ops: 50,
            bind_ops: 50,
            write_ops: 20,
            transfer_ops: 5,
            wall_secs: 0.5,
            qps: 2000.0,
            latency_us: HistogramStats {
                count: 1000,
                sum: 500_000,
                min: 100,
                max: 9000,
                p50: 400,
                p95: 2000,
                p99: 5000,
            },
            hns_hits: 800,
            hns_misses: 100,
            hns_expired: 10,
            binding_hits: 850,
            binding_misses: 36,
            binding_inserts: 36,
        }
    }

    fn sample_open_run() -> OpenRunResult {
        OpenRunResult {
            offered_qps: 50_000.0,
            threads: 4,
            duration_ms: 500,
            scheduled: 25_000,
            ops: 25_000,
            errors: 0,
            wall_secs: 0.51,
            achieved_qps: 49_000.0,
            latency_us: HistogramStats {
                count: 25_000,
                sum: 1_000_000,
                min: 5,
                max: 900,
                p50: 30,
                p95: 120,
                p99: 400,
            },
            lateness_us: HistogramStats {
                count: 25_000,
                sum: 100_000,
                min: 0,
                max: 300,
                p50: 2,
                p95: 20,
                p99: 80,
            },
            late_ops: 7_000,
            backlog_max: 3,
            window_ms: 100,
            windows: (0..5)
                .map(|i| OpenWindow {
                    index: i,
                    ops: 5_000,
                    errors: 0,
                    late_ops: 1_400,
                    backlog_max: if i == 4 { 3 } else { 1 },
                    lateness_sum_us: 20_000,
                    lateness_max_us: 300,
                    sojourn_sum_us: 200_000,
                    sojourn_max_us: 900,
                })
                .collect(),
        }
    }

    fn sample_report() -> LoadReport {
        LoadReport {
            config: LoadConfig {
                offered_qps: vec![50_000.0],
                ..LoadConfig::default()
            },
            cores: 8,
            os: "linux",
            arch: "x86_64",
            runs: vec![sample_run()],
            open_runs: vec![sample_open_run()],
        }
    }

    #[test]
    fn export_round_trips_through_validate() {
        let rep = sample_report();
        let doc = rep.to_json();
        validate(&doc).expect("valid export");
        let v = json::parse(&doc).expect("parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("hns-load-v2")
        );
        let closed = v
            .get("closed_runs")
            .and_then(|r| r.as_array())
            .expect("closed_runs");
        assert_eq!(closed[0].get("threads").and_then(|t| t.as_u64()), Some(2));
        assert_eq!(
            closed[0]
                .get("hns_cache")
                .and_then(|c| c.get("cold_walks"))
                .and_then(|c| c.as_u64()),
            Some(50),
            "cold volume is explicit, not buried in misses"
        );
        assert_eq!(
            closed[0]
                .get("binding_cache")
                .and_then(|c| c.get("hits"))
                .and_then(|h| h.as_u64()),
            Some(850)
        );
        assert_eq!(
            closed[0].get("write_ops").and_then(|w| w.as_u64()),
            Some(20)
        );
        assert_eq!(
            closed[0].get("transfer_ops").and_then(|t| t.as_u64()),
            Some(5)
        );
        let open = v
            .get("open_runs")
            .and_then(|r| r.as_array())
            .expect("open_runs");
        assert_eq!(open[0].get("backlog_max").and_then(|b| b.as_u64()), Some(3));
        let windows = open[0]
            .get("windows")
            .and_then(|w| w.as_array())
            .expect("per-window series");
        assert_eq!(windows.len(), 5);
        assert_eq!(
            windows[4].get("backlog_max").and_then(|b| b.as_u64()),
            Some(3)
        );
        assert_eq!(
            windows[0].get("lateness_mean_us").and_then(|m| m.as_f64()),
            Some(4.0),
            "20_000 µs of lateness over 5_000 ops"
        );
    }

    #[test]
    fn validate_rejects_a_missing_window_series() {
        let mut rep = sample_report();
        rep.open_runs[0].windows.clear();
        let err = validate(&rep.to_json()).expect_err("empty windows rejected");
        assert!(err.contains("windows"), "{err}");
    }

    #[test]
    fn validate_rejects_wrong_schema_and_empty_runs() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        let mut rep = sample_report();
        rep.runs.clear();
        rep.open_runs.clear();
        assert!(validate(&rep.to_json()).is_err());
    }

    #[test]
    fn regression_check_compares_matching_thread_counts() {
        let rep = sample_report();
        let baseline = rep.to_json();
        // Identical run: trivially above any factor < 1.
        check_regression(&rep, &baseline, 0.5).expect("no regression vs itself");
        // A baseline 3x faster at the same thread count trips the guard.
        let mut fast = sample_report();
        fast.runs[0].qps = 6000.0;
        let fast_baseline = fast.to_json();
        let err = check_regression(&rep, &fast_baseline, 0.5).expect_err("regression");
        assert!(err.contains("regression at 2 threads"), "{err}");
        // v1 baselines (`runs`) still compare.
        let v1 = "{\"schema\": \"hns-load-v1\", \"runs\": [{\"threads\": 2, \"qps\": 1000.0}]}";
        check_regression(&rep, v1, 0.5).expect("v1 baseline accepted");
        // Disjoint thread counts are an error, not a silent pass.
        let disjoint = "{\"runs\": [{\"threads\": 64, \"qps\": 1.0}]}";
        assert!(check_regression(&rep, disjoint, 0.5).is_err());
    }
}

//! JSON export of a load sweep (`hns-load-v1`).

use hns_core::obs::json;
use hns_core::obs::metrics::HistogramStats;

use super::{LoadConfig, RunResult};

fn stats_json(s: &HistogramStats) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \
         \"p99\": {}, \"mean\": {}}}",
        s.count,
        s.min,
        s.max,
        s.p50,
        s.p95,
        s.p99,
        json::number(s.mean())
    )
}

fn run_json(r: &RunResult) -> String {
    format!(
        "{{\"threads\": {}, \"ops\": {}, \"errors\": {}, \"wall_secs\": {}, \
         \"qps\": {}, \"warm_ops\": {}, \"cold_ops\": {}, \"bind_ops\": {}, \
         \"latency_us\": {}, \
         \"hns_cache\": {{\"hits\": {}, \"misses\": {}, \"expired\": {}}}}}",
        r.threads,
        r.ops,
        r.errors,
        json::number(r.wall_secs),
        json::number(r.qps),
        r.warm_ops,
        r.cold_ops,
        r.bind_ops,
        stats_json(&r.latency_us),
        r.hns_hits,
        r.hns_misses,
        r.hns_expired,
    )
}

/// Renders the whole sweep as an `hns-load-v1` JSON document.
pub fn to_json(config: &LoadConfig, cores: usize, runs: &[RunResult]) -> String {
    let runs_json: Vec<String> = runs.iter().map(run_json).collect();
    format!(
        "{{\n  \"schema\": \"hns-load-v1\",\n  \"host\": {{\"cores\": {cores}}},\n  \
         \"config\": {{\"ops_per_thread\": {}, \"duration_ms\": {}, \"zipf_s\": {}, \
         \"cold_frac\": {}, \"bind_frac\": {}, \"seed\": {}, \"faults\": {}}},\n  \
         \"runs\": [\n    {}\n  ]\n}}\n",
        config.ops_per_thread,
        config
            .duration_ms
            .map_or("null".to_string(), |d| d.to_string()),
        json::number(config.zipf_s),
        json::number(config.cold_frac),
        json::number(config.bind_frac),
        config.seed,
        config.faults,
        runs_json.join(",\n    "),
    )
}

/// Validates an `hns-load-v1` document: schema tag, non-empty `runs`,
/// and the per-run fields the baseline consumers read.
pub fn validate(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-load-v1") {
        return Err("missing or unexpected `schema`".into());
    }
    if v.get("host").and_then(|h| h.get("cores")).is_none() {
        return Err("missing `host.cores`".into());
    }
    let runs = v
        .get("runs")
        .and_then(|r| r.as_array())
        .ok_or("missing `runs` array")?;
    if runs.is_empty() {
        return Err("no runs in export".into());
    }
    for (i, run) in runs.iter().enumerate() {
        for field in ["threads", "ops", "qps"] {
            if run.get(field).is_none() {
                return Err(format!("run {i}: missing `{field}`"));
            }
        }
        let lat = run.get("latency_us").ok_or("missing `latency_us`")?;
        for field in ["p50", "p95", "p99"] {
            if lat.get(field).is_none() {
                return Err(format!("run {i}: latency_us missing `{field}`"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> RunResult {
        RunResult {
            threads: 2,
            ops: 1000,
            errors: 0,
            warm_ops: 900,
            cold_ops: 50,
            bind_ops: 50,
            wall_secs: 0.5,
            qps: 2000.0,
            latency_us: HistogramStats {
                count: 1000,
                sum: 500_000,
                min: 100,
                max: 9000,
                p50: 400,
                p95: 2000,
                p99: 5000,
            },
            hns_hits: 800,
            hns_misses: 100,
            hns_expired: 10,
        }
    }

    #[test]
    fn export_round_trips_through_validate() {
        let cfg = LoadConfig::default();
        let doc = to_json(&cfg, 8, &[sample_run()]);
        validate(&doc).expect("valid export");
        let v = json::parse(&doc).expect("parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("hns-load-v1")
        );
        let runs = v.get("runs").and_then(|r| r.as_array()).expect("runs");
        assert_eq!(runs[0].get("threads").and_then(|t| t.as_u64()), Some(2));
        assert_eq!(
            runs[0]
                .get("latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(|p| p.as_u64()),
            Some(5000)
        );
    }

    #[test]
    fn validate_rejects_wrong_schema_and_empty_runs() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        let cfg = LoadConfig::default();
        let empty = to_json(&cfg, 1, &[]);
        assert!(validate(&empty).is_err());
    }
}

//! E-L — the real-time multi-threaded load engine.
//!
//! Everything else in this crate measures *virtual* time: one logical
//! thread walks the stack and the clock advances by calibrated costs.
//! This module measures the other axis — how many operations per second
//! of *wall-clock* time the reproduction's stack sustains when many
//! client threads drive it concurrently — which is what the hot-path
//! contention work (sharded TTL cache, striped clock, snapshot-read
//! tables, bounded reply-cache eviction) exists to improve.
//!
//! Each run builds one shared testbed (public BIND, Clearinghouse, meta
//! BIND, NSMs), registers the same Zipf universe of departmental
//! contexts the hit-ratio experiment uses, then spawns N closed-loop
//! client threads. Per operation a thread draws a (context, query
//! class) pair from the Zipf sampler and issues, by configured mix:
//!
//! * a **warm** `FindNSM` against a shared demarshalled-cache HNS
//!   (the dominant, cache-hit path),
//! * a **cold** `FindNSM` against a shared cache-disabled HNS (the full
//!   meta-walk-every-time path), or
//! * a full HRPC **bind** — `Import` = `FindNSM` plus a binding-NSM
//!   call — for `hrpc_binding` pairs.
//!
//! Latency is the real elapsed time of the operation, recorded into an
//! [`obs`](hns_core::obs) histogram; throughput is ops over wall time.
//! Virtual-time numbers are unaffected: concurrency changes how fast
//! the simulation *executes*, never what it *computes*.

pub mod report;
pub mod zipf;

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::obs::metrics::HistogramStats;
use hns_core::obs::MetricsRegistry;
use hns_core::query::QueryClass;
use hns_core::service::Hns;
use hrpc::ProgramId;
use nsms::harness::{
    Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, NS_BIND, NS_CH, PRINT_SERVICE,
    PRINT_SERVICE_PROGRAM,
};
use nsms::import::Importer;
use nsms::nsm_cache::NsmCacheForm;
use simnet::rng::DetRng;

use crate::cells::PlainTable;
use zipf::ZipfSampler;

/// Distinct departmental contexts in the universe (same shape as the
/// hit-ratio experiment: even ranks BIND-backed, odd Clearinghouse).
const CONTEXTS: usize = 12;

/// Load engine configuration (the `experiments -- loadgen` knobs).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Thread counts to sweep, one run per entry.
    pub threads: Vec<usize>,
    /// Closed-loop operations per thread per run.
    pub ops_per_thread: u64,
    /// Optional wall-clock cap per run; whichever of ops/duration is
    /// reached first ends a thread's loop.
    pub duration_ms: Option<u64>,
    /// Zipf skew exponent over the context/class universe.
    pub zipf_s: f64,
    /// Fraction of operations issued cold (cache-disabled HNS).
    pub cold_frac: f64,
    /// Fraction of `hrpc_binding` operations that run a full `Import`.
    pub bind_frac: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Crash the meta server for the whole measured run: cold operations
    /// fail fast with `HostUnreachable` while the pre-warmed paths keep
    /// serving, so throughput under faults is measurable.
    pub faults: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            threads: vec![1, 2, 4, 8],
            ops_per_thread: 2_000,
            duration_ms: None,
            zipf_s: 1.0,
            cold_frac: 0.05,
            bind_frac: 0.30,
            seed: 1987,
            faults: false,
        }
    }
}

/// Result of one run (one thread count).
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Client threads driven.
    pub threads: usize,
    /// Operations completed across all threads.
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Warm `FindNSM` operations.
    pub warm_ops: u64,
    /// Cold `FindNSM` operations.
    pub cold_ops: u64,
    /// Full `Import` operations.
    pub bind_ops: u64,
    /// Wall-clock seconds from barrier release to last worker done.
    pub wall_secs: f64,
    /// Operations per wall-clock second.
    pub qps: f64,
    /// Real per-operation latency distribution (microseconds).
    pub latency_us: HistogramStats,
    /// Warm HNS cache hits over the measured run.
    pub hns_hits: u64,
    /// Warm HNS cache misses over the measured run.
    pub hns_misses: u64,
    /// Warm HNS cache TTL expirations over the measured run.
    pub hns_expired: u64,
}

/// A full sweep plus its configuration.
#[derive(Debug)]
pub struct LoadReport {
    /// The configuration the sweep ran with.
    pub config: LoadConfig,
    /// Logical cores of the machine that produced it.
    pub cores: usize,
    /// One result per entry in `config.threads`.
    pub runs: Vec<RunResult>,
}

/// One sampled operation, precomputed at setup so the hot loop only
/// indexes and draws.
struct Op {
    qc: QueryClass,
    name: HnsName,
    /// `Some` for `hrpc_binding` pairs: the service to import.
    bind: Option<(&'static str, ProgramId)>,
}

/// The shared per-run stack.
struct Stack {
    tb: Testbed,
    warm: Arc<Hns>,
    cold: Arc<Hns>,
    ops: Vec<Op>,
}

fn build_stack(zipf_s: f64) -> (Stack, ZipfSampler) {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);

    let registrar = tb.make_hns(tb.hosts.meta, CacheMode::Disabled);
    let classes = [
        QueryClass::hrpc_binding(),
        QueryClass::mailbox_location(),
        QueryClass::file_location(),
    ];
    let mut ops = Vec::new();
    for i in 0..CONTEXTS {
        let (ns, individual, bind) = if i % 2 == 0 {
            (
                NS_BIND,
                "fiji.cs.washington.edu",
                (DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM),
            )
        } else {
            (
                NS_CH,
                "printserver:cs:uw",
                (PRINT_SERVICE, PRINT_SERVICE_PROGRAM),
            )
        };
        let ctx = Context::new(format!(
            "dept{i}-{}",
            if i % 2 == 0 { "bind" } else { "ch" }
        ))
        .expect("ctx");
        registrar
            .register_context(&ctx, ns, &NameMapping::Identity)
            .expect("register");
        for (ci, qc) in classes.iter().enumerate() {
            ops.push(Op {
                qc: qc.clone(),
                name: HnsName::new(ctx.clone(), individual).expect("name"),
                // classes[0] is hrpc_binding — the importable pairs.
                bind: (ci == 0).then_some(bind),
            });
        }
    }

    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let cold = tb.make_hns(tb.hosts.client, CacheMode::Disabled);

    // Pre-warm: one FindNSM per pair fills the warm cache; one Import
    // per binding pair warms the binding NSMs' own caches.
    let importer = Importer::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        HnsHandle::Linked(Arc::clone(&warm)),
    );
    for op in &ops {
        warm.find_nsm(&op.qc, &op.name).expect("pre-warm FindNSM");
        if let Some((service, program)) = op.bind {
            importer
                .import(service, program, &op.name)
                .expect("pre-warm Import");
        }
    }

    let sampler = ZipfSampler::new(ops.len(), zipf_s);
    (
        Stack {
            tb,
            warm,
            cold,
            ops,
        },
        sampler,
    )
}

/// Runs one thread count against a freshly built stack.
fn run_once(config: &LoadConfig, threads: usize) -> RunResult {
    let (stack, sampler) = build_stack(config.zipf_s);
    if config.faults {
        // Crash the meta server for the whole measured run (the caches
        // are already warm). Cold operations walk into the crash and
        // fail fast; warm and bind traffic keeps flowing, answering from
        // the caches — stale once their TTL passes mid-run.
        let mut plan = simnet::faults::FaultPlan::new();
        plan.crash(stack.tb.hosts.meta, stack.tb.world.now(), None);
        stack.tb.world.set_faults(Some(plan));
    }
    let metrics = MetricsRegistry::new();
    let latency = metrics.histogram("loadgen", "op_latency_us");
    let ops_ctr = metrics.counter("loadgen", "ops");
    let err_ctr = metrics.counter("loadgen", "errors");
    let warm_ctr = metrics.counter("loadgen", "warm_ops");
    let cold_ctr = metrics.counter("loadgen", "cold_ops");
    let bind_ctr = metrics.counter("loadgen", "bind_ops");

    let hns0 = stack.warm.cache_stats();
    let barrier = Barrier::new(threads + 1);
    let mut master = DetRng::new(config.seed ^ ((threads as u64) << 32));
    let ops_per_thread = config.ops_per_thread;
    let duration_ms = config.duration_ms;
    let cold_frac = config.cold_frac;
    let bind_frac = config.bind_frac;

    // Workers spawn and park on the barrier, which releases the moment
    // the main thread (the final waiter) arrives — so the timestamp
    // taken just *before* main waits marks the release to within the
    // barrier's own overhead. (Stamping after `wait` returns is racy:
    // on a loaded machine the workers can drain the whole run before
    // main is rescheduled.) `scope` returning means every worker has
    // finished, so `started.elapsed()` is the run's wall time.
    let mut started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let mut rng = master.fork();
            let sampler = &sampler;
            let stack = &stack;
            let barrier = &barrier;
            let latency = Arc::clone(&latency);
            let ops_ctr = Arc::clone(&ops_ctr);
            let err_ctr = Arc::clone(&err_ctr);
            let warm_ctr = Arc::clone(&warm_ctr);
            let cold_ctr = Arc::clone(&cold_ctr);
            let bind_ctr = Arc::clone(&bind_ctr);
            let importer = Importer::new(
                Arc::clone(&stack.tb.net),
                stack.tb.hosts.client,
                HnsHandle::Linked(Arc::clone(&stack.warm)),
            );
            scope.spawn(move || {
                barrier.wait();
                let deadline = duration_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                for _ in 0..ops_per_thread {
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            break;
                        }
                    }
                    let op = &stack.ops[sampler.sample(&mut rng)];
                    let cold = rng.chance(cold_frac);
                    let bind = !cold && op.bind.is_some() && rng.chance(bind_frac);
                    let t0 = Instant::now();
                    let failed = if cold {
                        cold_ctr.inc();
                        stack.cold.find_nsm(&op.qc, &op.name).is_err()
                    } else if bind {
                        bind_ctr.inc();
                        let (service, program) = op.bind.expect("bind op");
                        importer.import(service, program, &op.name).is_err()
                    } else {
                        warm_ctr.inc();
                        stack.warm.find_nsm(&op.qc, &op.name).is_err()
                    };
                    latency.record(t0.elapsed().as_micros() as u64);
                    ops_ctr.inc();
                    if failed {
                        err_ctr.inc();
                    }
                }
            });
        }
        started = Instant::now();
        barrier.wait();
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let hns1 = stack.warm.cache_stats();
    let snap = metrics.snapshot();
    let ops = snap.counter("loadgen", "ops").unwrap_or(0);
    RunResult {
        threads,
        ops,
        errors: snap.counter("loadgen", "errors").unwrap_or(0),
        warm_ops: snap.counter("loadgen", "warm_ops").unwrap_or(0),
        cold_ops: snap.counter("loadgen", "cold_ops").unwrap_or(0),
        bind_ops: snap.counter("loadgen", "bind_ops").unwrap_or(0),
        wall_secs,
        qps: if wall_secs > 0.0 {
            ops as f64 / wall_secs
        } else {
            0.0
        },
        latency_us: snap
            .histogram("loadgen", "op_latency_us")
            .copied()
            .unwrap_or(HistogramStats {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0,
            }),
        hns_hits: hns1.hits - hns0.hits,
        hns_misses: hns1.misses - hns0.misses,
        hns_expired: hns1.expired - hns0.expired,
    }
}

/// Runs the full sweep: one fresh stack and one measured run per entry
/// in `config.threads`.
pub fn run(config: &LoadConfig) -> LoadReport {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runs = config
        .threads
        .iter()
        .map(|&t| run_once(config, t))
        .collect();
    LoadReport {
        config: config.clone(),
        cores,
        runs,
    }
}

impl LoadReport {
    /// Renders the sweep as a table.
    pub fn render(&self) -> String {
        let mut table = PlainTable::new(
            format!(
                "E-L — multi-threaded load engine: closed-loop FindNSM + bind \
                 traffic, Zipf(s={}) over {} pairs, {:.0}% cold / {:.0}% bind, \
                 {} ops/thread ({} cores)",
                self.config.zipf_s,
                CONTEXTS * 3,
                self.config.cold_frac * 100.0,
                self.config.bind_frac * 100.0,
                self.config.ops_per_thread,
                self.cores
            ),
            vec![
                "threads", "ops", "errors", "wall (s)", "QPS", "p50 (us)", "p95 (us)", "p99 (us)",
            ],
        );
        for r in &self.runs {
            table.push_row(vec![
                r.threads.to_string(),
                r.ops.to_string(),
                r.errors.to_string(),
                format!("{:.3}", r.wall_secs),
                format!("{:.0}", r.qps),
                r.latency_us.p50.to_string(),
                r.latency_us.p95.to_string(),
                r.latency_us.p99.to_string(),
            ]);
        }
        table.render()
    }

    /// The `hns-load-v1` JSON document for this sweep.
    pub fn to_json(&self) -> String {
        report::to_json(&self.config, self.cores, &self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_two_threads_accounting_is_exact() {
        let config = LoadConfig {
            threads: vec![2],
            ops_per_thread: 150,
            ..LoadConfig::default()
        };
        let rep = run(&config);
        assert_eq!(rep.runs.len(), 1);
        let r = &rep.runs[0];
        assert_eq!(r.threads, 2);
        assert_eq!(r.ops, 300, "closed loop completes every op");
        assert_eq!(r.errors, 0, "no operation fails on the testbed");
        assert_eq!(r.warm_ops + r.cold_ops + r.bind_ops, r.ops);
        assert_eq!(r.latency_us.count, r.ops);
        assert!(r.wall_secs > 0.0 && r.qps > 0.0);
        assert!(r.warm_ops > 0, "warm path dominates the mix");
        assert!(
            r.hns_hits > 0,
            "pre-warmed shared cache serves the warm path"
        );
        report::validate(&rep.to_json()).expect("export validates");
        let rendered = rep.render();
        assert!(rendered.contains("QPS"), "{rendered}");
    }

    #[test]
    fn faults_fail_the_cold_path_and_only_the_cold_path() {
        let config = LoadConfig {
            threads: vec![2],
            ops_per_thread: 150,
            faults: true,
            ..LoadConfig::default()
        };
        let rep = run(&config);
        let r = &rep.runs[0];
        assert_eq!(r.ops, 300);
        assert_eq!(
            r.errors, r.cold_ops,
            "with the meta server crashed, exactly the cold operations fail"
        );
        assert!(r.cold_ops > 0, "the mix must exercise the cold path");
        assert!(r.warm_ops > 0);
        report::validate(&rep.to_json()).expect("export validates");
    }

    #[test]
    fn duration_cap_stops_early() {
        let config = LoadConfig {
            threads: vec![1],
            ops_per_thread: u64::MAX,
            duration_ms: Some(50),
            ..LoadConfig::default()
        };
        let rep = run(&config);
        let r = &rep.runs[0];
        assert!(r.ops > 0);
        assert!(r.wall_secs < 30.0, "cap bounded the run");
    }
}

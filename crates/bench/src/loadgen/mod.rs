//! E-L — the real-time load engine: sharded closed-loop dispatch plus
//! an open-loop (offered-load) arrival mode.
//!
//! Everything else in this crate measures *virtual* time: one logical
//! thread walks the stack and the clock advances by calibrated costs.
//! This module measures the other axis — how many operations per second
//! of *wall-clock* time the reproduction's stack sustains when many
//! client threads drive it concurrently — which is what the hot-path
//! contention work (sharded TTL cache, striped clock, snapshot-read
//! tables, composed binding cache, batched virtual-time charging)
//! exists to improve.
//!
//! # Sharded dispatch
//!
//! Each worker owns a complete private stack — its own simulated world
//! (clock, metrics, fault plan), public BIND, Clearinghouse, meta BIND,
//! NSMs, warm and cold HNS instances, importer, RNG, and latency
//! histogram. Nothing mutable is shared across threads on the measured
//! path, so the engine scales with cores instead of serializing on a
//! shared clock and registry. Two per-worker switches buy the warm-path
//! throughput:
//!
//! * the **composed binding cache** (see `hns_core::binding_cache`): a
//!   warm `FindNSM` collapses from six mapping probes with re-parsing
//!   to one probe returning a `Copy` binding, and
//! * **batched virtual-time charging** (`VirtualClock::set_batched`):
//!   cost charges accumulate thread-locally and flush on read, so hot
//!   loops skip shared-cache-line traffic.
//!
//! Per operation a worker draws a (context, query class) pair from the
//! Zipf sampler and issues, by configured mix: a **warm** `FindNSM`
//! (composed-cache path), a **cold** `FindNSM` against a cache-disabled
//! HNS (the full meta-walk-every-time path), or a full HRPC **bind**
//! (`Import` = `FindNSM` + a binding-NSM call).
//!
//! With `--write-frac` above zero the mix also drives the `regd`
//! registration frontend (E-R's write path): that fraction of
//! operations becomes Clearinghouse writes — ownership **transfers**
//! (`--transfer-frac` of the writes, each appending a signed chain
//! link, with a release + re-register reset before the owner pool
//! would force a cycle rejection) and re-bind **updates** (the rest).
//!
//! # Closed vs. open loop
//!
//! Closed-loop runs issue the next operation the moment the previous
//! one returns: they measure *capacity* but, under overload, latency is
//! bounded by the loop itself (coordinated omission). Open-loop runs
//! ([`open`]) draw Poisson arrival schedules at a configured offered
//! QPS and charge each operation's latency from its *scheduled* arrival
//! (sojourn time), so queueing delay under overload is visible, along
//! with lateness and backlog accounting.
//!
//! Virtual-time numbers are unaffected by any of this: concurrency
//! changes how fast the simulation *executes*, never what it
//! *computes*.

pub mod open;
pub mod report;
pub mod zipf;

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use hns_core::binding_cache::BindingCacheStats;
use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::obs::metrics::HistogramStats;
use hns_core::obs::LocalHistogram;
use hns_core::query::QueryClass;
use hns_core::service::Hns;
use hrpc::ProgramId;
use nsms::harness::{
    Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, NS_BIND, NS_CH, PRINT_SERVICE,
    PRINT_SERVICE_PROGRAM,
};
use nsms::import::Importer;
use nsms::nsm_cache::NsmCacheForm;
use parking_lot::Mutex;
use regd::harness::{owner_key, owner_name};
use regd::Registry;
use simnet::rng::DetRng;

use crate::cells::PlainTable;
pub use open::{OpenRunResult, OpenWindow};
use zipf::ZipfSampler;

/// Distinct departmental contexts in the universe (same shape as the
/// hit-ratio experiment: even ranks BIND-backed, odd Clearinghouse).
const CONTEXTS: usize = 12;

/// Names the write mix operates on, per worker.
const WRITE_NAMES: usize = 8;

/// Owner pool backing the write mix. Transfers step through the pool in
/// order and reset (release + re-register) before any revisit, so the
/// chain never trips the cycle rule.
const WRITE_OWNERS: usize = 12;

/// Load engine configuration (the `experiments -- loadgen` knobs).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Thread counts to sweep, one closed-loop run per entry.
    pub threads: Vec<usize>,
    /// Closed-loop operations per thread per run.
    pub ops_per_thread: u64,
    /// Optional wall-clock cap per closed-loop run; whichever of
    /// ops/duration is reached first ends a thread's loop.
    pub duration_ms: Option<u64>,
    /// Zipf skew exponent over the context/class universe.
    pub zipf_s: f64,
    /// Fraction of operations issued cold (cache-disabled HNS).
    pub cold_frac: f64,
    /// Fraction of `hrpc_binding` operations that run a full `Import`.
    pub bind_frac: f64,
    /// Fraction of operations sent through the `regd` write path
    /// (0 disables the write mix entirely).
    pub write_frac: f64,
    /// Of the write operations, the fraction that are ownership
    /// transfers; the rest are re-bind updates.
    pub transfer_frac: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Crash the meta server for the whole measured run: cold operations
    /// fail fast with `HostUnreachable` while the pre-warmed paths keep
    /// serving, so throughput under faults is measurable.
    pub faults: bool,
    /// Offered-load levels (total QPS) to sweep open-loop, one run per
    /// entry. Empty = closed-loop only.
    pub offered_qps: Vec<f64>,
    /// Worker threads for each open-loop run.
    pub open_threads: usize,
    /// Wall-clock duration of each open-loop run.
    pub open_duration_ms: u64,
    /// Window width for the open-loop per-window series (wall-clock
    /// milliseconds; operations bin by *scheduled* arrival).
    pub open_window_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            threads: vec![1, 2, 4, 8],
            ops_per_thread: 2_000,
            duration_ms: None,
            zipf_s: 1.0,
            cold_frac: 0.05,
            bind_frac: 0.30,
            write_frac: 0.0,
            transfer_frac: 0.25,
            seed: 1987,
            faults: false,
            offered_qps: Vec::new(),
            open_threads: 4,
            open_duration_ms: 500,
            open_window_ms: 100,
        }
    }
}

/// Result of one closed-loop run (one thread count).
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Client threads driven.
    pub threads: usize,
    /// Operations completed across all threads.
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Warm `FindNSM` operations.
    pub warm_ops: u64,
    /// Cold `FindNSM` operations.
    pub cold_ops: u64,
    /// Full `Import` operations.
    pub bind_ops: u64,
    /// `regd` write operations (re-bind updates plus transfers).
    pub write_ops: u64,
    /// Ownership transfers (a subset of `write_ops`).
    pub transfer_ops: u64,
    /// Wall-clock seconds from barrier release to last worker done.
    pub wall_secs: f64,
    /// Operations per wall-clock second.
    pub qps: f64,
    /// Real per-operation latency distribution (microseconds), merged
    /// exactly from the per-worker histograms.
    pub latency_us: HistogramStats,
    /// Warm-instance per-mapping cache hits over the measured run,
    /// summed across workers. With the composed binding cache enabled
    /// the warm path only reaches this cache when a composed entry has
    /// expired, so small numbers here are expected. Cold operations run
    /// a deliberately cache-disabled instance and are *not* counted as
    /// misses anywhere — see `cold_ops` for their volume.
    pub hns_hits: u64,
    /// Warm-instance per-mapping cache misses (see `hns_hits`).
    pub hns_misses: u64,
    /// Warm-instance per-mapping cache TTL expirations.
    pub hns_expired: u64,
    /// Composed binding-cache hits across workers (the warm fast path).
    pub binding_hits: u64,
    /// Composed binding-cache misses across workers.
    pub binding_misses: u64,
    /// Composed binding-cache entries inserted across workers.
    pub binding_inserts: u64,
}

/// A full sweep plus its configuration.
#[derive(Debug)]
pub struct LoadReport {
    /// The configuration the sweep ran with.
    pub config: LoadConfig,
    /// Logical cores visible to this process (cgroup-limited
    /// `available_parallelism`, so a container reports its quota, not
    /// the physical machine).
    pub cores: usize,
    /// Operating system the run executed on.
    pub os: &'static str,
    /// CPU architecture the run executed on.
    pub arch: &'static str,
    /// One closed-loop result per entry in `config.threads`.
    pub runs: Vec<RunResult>,
    /// One open-loop result per entry in `config.offered_qps`.
    pub open_runs: Vec<OpenRunResult>,
}

/// One sampled operation, precomputed at setup so the hot loop only
/// indexes and draws.
struct Op {
    qc: QueryClass,
    name: HnsName,
    /// `Some` for `hrpc_binding` pairs: the service to import.
    bind: Option<(&'static str, ProgramId)>,
}

/// One worker's private stack: its own simulated world, HNS instances,
/// importer, and operation universe. Nothing here is shared across
/// threads.
struct WorkerStack {
    tb: Testbed,
    warm: Arc<Hns>,
    cold: Arc<Hns>,
    importer: Importer,
    ops: Vec<Op>,
    /// Present only when the configured mix has writes.
    write: Option<WriteState>,
}

/// The worker's private slice of the `regd` write path: a registration
/// frontend over the shard's Clearinghouse plus the per-name holder
/// positions the transfer traffic advances.
struct WriteState {
    reg: Registry,
    names: Vec<String>,
    /// Current holder index (into the owner pool) per name. One thread
    /// owns each stack; the lock only satisfies the scoped-thread
    /// borrow, it is never contended.
    holders: Mutex<Vec<usize>>,
}

impl WriteState {
    /// Executes one write operation; returns (kind, failed) with kind
    /// indexing write=3 / transfer=4.
    fn run_write(&self, rng: &mut DetRng, config: &LoadConfig) -> (u8, bool) {
        let ni = rng.next_below(self.names.len() as u64) as usize;
        let name = &self.names[ni];
        let mut holders = self.holders.lock();
        let h = holders[ni];
        if rng.chance(config.transfer_frac) {
            let failed = if h + 1 < WRITE_OWNERS {
                let failed = self
                    .reg
                    .transfer(&owner_name(h), owner_key(h), name, &owner_name(h + 1), None)
                    .is_err();
                if !failed {
                    holders[ni] = h + 1;
                }
                failed
            } else {
                // The pool is exhausted: release and re-register, which
                // starts a fresh chain epoch the cycle rule accepts.
                let failed = self
                    .reg
                    .release(&owner_name(h), owner_key(h), name)
                    .is_err()
                    || self
                        .reg
                        .register(&owner_name(0), owner_key(0), name, NS_BIND)
                        .is_err();
                if !failed {
                    holders[ni] = 0;
                }
                failed
            };
            (4, failed)
        } else {
            let service = if rng.chance(0.5) { NS_CH } else { NS_BIND };
            (
                3,
                self.reg
                    .update(&owner_name(h), owner_key(h), name, service)
                    .is_err(),
            )
        }
    }
}

/// What one worker hands back after its run.
struct WorkerOut {
    ops: u64,
    errors: u64,
    warm_ops: u64,
    cold_ops: u64,
    bind_ops: u64,
    write_ops: u64,
    transfer_ops: u64,
    latency: LocalHistogram,
    hns_hits: u64,
    hns_misses: u64,
    hns_expired: u64,
    binding: BindingCacheStats,
}

fn build_worker_stack(config: &LoadConfig) -> WorkerStack {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);

    let registrar = tb.make_hns(tb.hosts.meta, CacheMode::Disabled);
    let classes = [
        QueryClass::hrpc_binding(),
        QueryClass::mailbox_location(),
        QueryClass::file_location(),
    ];
    let mut ops = Vec::new();
    for i in 0..CONTEXTS {
        let (ns, individual, bind) = if i % 2 == 0 {
            (
                NS_BIND,
                "fiji.cs.washington.edu",
                (DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM),
            )
        } else {
            (
                NS_CH,
                "printserver:cs:uw",
                (PRINT_SERVICE, PRINT_SERVICE_PROGRAM),
            )
        };
        let ctx = Context::new(format!(
            "dept{i}-{}",
            if i % 2 == 0 { "bind" } else { "ch" }
        ))
        .expect("ctx");
        registrar
            .register_context(&ctx, ns, &NameMapping::Identity)
            .expect("register");
        for (ci, qc) in classes.iter().enumerate() {
            ops.push(Op {
                qc: qc.clone(),
                name: HnsName::new(ctx.clone(), individual).expect("name"),
                // classes[0] is hrpc_binding — the importable pairs.
                bind: (ci == 0).then_some(bind),
            });
        }
    }

    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let cold = tb.make_hns(tb.hosts.client, CacheMode::Disabled);
    // The warm instance is the composed-cache throughput path; the
    // pre-warm walk below both fills its per-mapping cache and seeds
    // the composed entries.
    warm.set_binding_cache(true);

    // Pre-warm: one FindNSM per pair fills the warm caches; one Import
    // per binding pair warms the binding NSMs' own caches.
    let importer = Importer::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        HnsHandle::Linked(Arc::clone(&warm)),
    );
    for op in &ops {
        warm.find_nsm(&op.qc, &op.name).expect("pre-warm FindNSM");
        if let Some((service, program)) = op.bind {
            importer
                .import(service, program, &op.name)
                .expect("pre-warm Import");
        }
    }

    let write = (config.write_frac > 0.0).then(|| {
        let reg = Registry::new(
            Arc::clone(&tb.net),
            tb.hosts.client,
            tb.ch.binding,
            tb.creds.clone(),
            "cs",
            "uw",
        );
        for i in 0..WRITE_OWNERS {
            reg.register_owner(owner_name(i), owner_key(i));
        }
        let names: Vec<String> = (0..WRITE_NAMES).map(|i| format!("wsvc{i}")).collect();
        for name in &names {
            reg.register(&owner_name(0), owner_key(0), name, NS_BIND)
                .expect("register write name");
        }
        WriteState {
            reg,
            names,
            holders: Mutex::new(vec![0; WRITE_NAMES]),
        }
    });

    WorkerStack {
        tb,
        warm,
        cold,
        importer,
        ops,
        write,
    }
}

/// Builds one private stack per worker, optionally crashing each
/// shard's meta server, and switches each world to batched charging for
/// the measured run.
fn build_shards(threads: usize, config: &LoadConfig) -> Vec<WorkerStack> {
    (0..threads)
        .map(|_| {
            let stack = build_worker_stack(config);
            if config.faults {
                // Crash the meta server for the whole measured run (the
                // caches are already warm). Cold operations walk into
                // the crash and fail fast; warm and bind traffic keeps
                // flowing, answering from the caches — stale once their
                // TTL passes mid-run.
                let mut plan = simnet::faults::FaultPlan::new();
                plan.crash(stack.tb.hosts.meta, stack.tb.world.now(), None);
                stack.tb.world.set_faults(Some(plan));
            }
            stack.tb.world.clock.set_batched(true);
            stack
        })
        .collect()
}

impl WorkerStack {
    /// Executes one drawn operation; returns (kind, failed) where kind
    /// indexes warm=0 / cold=1 / bind=2 / write=3 / transfer=4.
    fn run_op(&self, rng: &mut DetRng, sampler: &ZipfSampler, config: &LoadConfig) -> (u8, bool) {
        if let Some(write) = &self.write {
            if rng.chance(config.write_frac) {
                return write.run_write(rng, config);
            }
        }
        let op = &self.ops[sampler.sample(rng)];
        let cold = rng.chance(config.cold_frac);
        let bind = !cold && op.bind.is_some() && rng.chance(config.bind_frac);
        if cold {
            (1, self.cold.find_nsm(&op.qc, &op.name).is_err())
        } else if bind {
            let (service, program) = op.bind.expect("bind op");
            (2, self.importer.import(service, program, &op.name).is_err())
        } else {
            (0, self.warm.find_nsm(&op.qc, &op.name).is_err())
        }
    }

    /// Snapshot of the warm instance's cache counters.
    fn warm_stats(&self) -> (u64, u64, u64) {
        let s = self.warm.cache_stats();
        (s.hits, s.misses, s.expired)
    }
}

/// Runs one closed-loop thread count, one private stack per worker.
fn run_once(config: &LoadConfig, threads: usize) -> RunResult {
    let sampler = ZipfSampler::new(CONTEXTS * 3, config.zipf_s);
    let stacks = build_shards(threads, config);
    let barrier = Barrier::new(threads + 1);
    let mut master = DetRng::new(config.seed ^ ((threads as u64) << 32));
    let ops_per_thread = config.ops_per_thread;
    let duration_ms = config.duration_ms;

    // Workers spawn and park on the barrier, which releases the moment
    // the main thread (the final waiter) arrives — so the timestamp
    // taken just *before* main waits marks the release to within the
    // barrier's own overhead. (Stamping after `wait` returns is racy:
    // on a loaded machine the workers can drain the whole run before
    // main is rescheduled.) `scope` returning means every worker has
    // finished, so `started.elapsed()` is the run's wall time.
    let mut started = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = stacks
            .iter()
            .map(|stack| {
                let mut rng = master.fork();
                let sampler = &sampler;
                let barrier = &barrier;
                scope.spawn(move || {
                    let warm0 = stack.warm_stats();
                    barrier.wait();
                    let deadline = duration_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                    let mut latency = LocalHistogram::new();
                    let mut counts = [0u64; 5];
                    let mut errors = 0u64;
                    for _ in 0..ops_per_thread {
                        if let Some(deadline) = deadline {
                            if Instant::now() >= deadline {
                                break;
                            }
                        }
                        let t0 = Instant::now();
                        let (kind, failed) = stack.run_op(&mut rng, sampler, config);
                        latency.record(t0.elapsed().as_micros() as u64);
                        counts[kind as usize] += 1;
                        errors += u64::from(failed);
                    }
                    // Batched charges would die with this thread
                    // otherwise; flush so post-run stat reads see them.
                    stack.tb.world.clock.flush_local();
                    let warm1 = stack.warm_stats();
                    WorkerOut {
                        ops: counts.iter().sum(),
                        errors,
                        warm_ops: counts[0],
                        cold_ops: counts[1],
                        bind_ops: counts[2],
                        write_ops: counts[3] + counts[4],
                        transfer_ops: counts[4],
                        latency,
                        hns_hits: warm1.0 - warm0.0,
                        hns_misses: warm1.1 - warm0.1,
                        hns_expired: warm1.2 - warm0.2,
                        binding: stack.warm.binding_cache_stats(),
                    }
                })
            })
            .collect();
        started = Instant::now();
        barrier.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut latency = LocalHistogram::new();
    let mut r = RunResult {
        threads,
        ops: 0,
        errors: 0,
        warm_ops: 0,
        cold_ops: 0,
        bind_ops: 0,
        write_ops: 0,
        transfer_ops: 0,
        wall_secs,
        qps: 0.0,
        latency_us: HistogramStats::default(),
        hns_hits: 0,
        hns_misses: 0,
        hns_expired: 0,
        binding_hits: 0,
        binding_misses: 0,
        binding_inserts: 0,
    };
    for out in &outs {
        r.ops += out.ops;
        r.errors += out.errors;
        r.warm_ops += out.warm_ops;
        r.cold_ops += out.cold_ops;
        r.bind_ops += out.bind_ops;
        r.write_ops += out.write_ops;
        r.transfer_ops += out.transfer_ops;
        r.hns_hits += out.hns_hits;
        r.hns_misses += out.hns_misses;
        r.hns_expired += out.hns_expired;
        r.binding_hits += out.binding.hits;
        r.binding_misses += out.binding.misses;
        r.binding_inserts += out.binding.inserts;
        latency.merge(&out.latency);
    }
    r.latency_us = latency.stats();
    if wall_secs > 0.0 {
        r.qps = r.ops as f64 / wall_secs;
    }
    r
}

/// Runs the full sweep: the closed-loop thread sweep, then one
/// open-loop run per offered-load level.
pub fn run(config: &LoadConfig) -> LoadReport {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runs = config
        .threads
        .iter()
        .map(|&t| run_once(config, t))
        .collect();
    let open_runs = config
        .offered_qps
        .iter()
        .map(|&q| open::run_open(config, q))
        .collect();
    LoadReport {
        config: config.clone(),
        cores,
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        runs,
        open_runs,
    }
}

impl LoadReport {
    /// Renders the sweep as one table (closed-loop) or two (plus the
    /// open-loop offered-load sweep).
    pub fn render(&self) -> String {
        let mut table = PlainTable::new(
            format!(
                "E-L — sharded load engine: closed-loop FindNSM + bind \
                 traffic, Zipf(s={}) over {} pairs, {:.0}% cold / {:.0}% bind, \
                 {:.0}% write, {} ops/thread ({} cores)",
                self.config.zipf_s,
                CONTEXTS * 3,
                self.config.cold_frac * 100.0,
                self.config.bind_frac * 100.0,
                self.config.write_frac * 100.0,
                self.config.ops_per_thread,
                self.cores
            ),
            vec![
                "threads",
                "ops",
                "errors",
                "writes",
                "transfers",
                "wall (s)",
                "QPS",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
            ],
        );
        for r in &self.runs {
            table.push_row(vec![
                r.threads.to_string(),
                r.ops.to_string(),
                r.errors.to_string(),
                r.write_ops.to_string(),
                r.transfer_ops.to_string(),
                format!("{:.3}", r.wall_secs),
                format!("{:.0}", r.qps),
                r.latency_us.p50.to_string(),
                r.latency_us.p95.to_string(),
                r.latency_us.p99.to_string(),
            ]);
        }
        let mut out = table.render();
        if !self.open_runs.is_empty() {
            let mut open_table = PlainTable::new(
                format!(
                    "E-L — open-loop offered load: Poisson arrivals over {} \
                     threads, {} ms per level (sojourn latency from scheduled \
                     arrival)",
                    self.config.open_threads, self.config.open_duration_ms
                ),
                vec![
                    "offered QPS",
                    "achieved QPS",
                    "ops",
                    "errors",
                    "p50 (us)",
                    "p99 (us)",
                    "late ops",
                    "max backlog",
                ],
            );
            for r in &self.open_runs {
                open_table.push_row(vec![
                    format!("{:.0}", r.offered_qps),
                    format!("{:.0}", r.achieved_qps),
                    r.ops.to_string(),
                    r.errors.to_string(),
                    r.latency_us.p50.to_string(),
                    r.latency_us.p99.to_string(),
                    r.late_ops.to_string(),
                    r.backlog_max.to_string(),
                ]);
            }
            out.push('\n');
            out.push_str(&open_table.render());
            // Per-window overload shape: backlog and mean lateness over
            // the scheduled horizon, one sparkline pair per level.
            for r in &self.open_runs {
                let backlog: Vec<f64> = r.windows.iter().map(|w| w.backlog_max as f64).collect();
                let lateness: Vec<f64> = r.windows.iter().map(|w| w.lateness_mean_us()).collect();
                out.push_str(&format!(
                    "  {:>7.0} QPS windows ({} ms): backlog |{}| max={}  \
                     lateness |{}| mean max={:.0} us\n",
                    r.offered_qps,
                    r.window_ms,
                    hns_core::obs::timeline::sparkline(&backlog),
                    r.backlog_max,
                    hns_core::obs::timeline::sparkline(&lateness),
                    lateness.iter().cloned().fold(0.0f64, f64::max),
                ));
            }
        }
        out
    }

    /// The `hns-load-v2` JSON document for this sweep.
    pub fn to_json(&self) -> String {
        report::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_two_threads_accounting_is_exact() {
        let config = LoadConfig {
            threads: vec![2],
            ops_per_thread: 150,
            ..LoadConfig::default()
        };
        let rep = run(&config);
        assert_eq!(rep.runs.len(), 1);
        let r = &rep.runs[0];
        assert_eq!(r.threads, 2);
        assert_eq!(r.ops, 300, "closed loop completes every op");
        assert_eq!(r.errors, 0, "no operation fails on the testbed");
        assert_eq!(r.warm_ops + r.cold_ops + r.bind_ops + r.write_ops, r.ops);
        assert_eq!(r.write_ops, 0, "write mix is off by default");
        assert_eq!(
            r.latency_us.count, r.ops,
            "merged worker histograms account for every op"
        );
        assert!(r.wall_secs > 0.0 && r.qps > 0.0);
        assert!(r.warm_ops > 0, "warm path dominates the mix");
        assert!(
            r.binding_hits > 0,
            "pre-seeded composed cache serves the warm path"
        );
        report::validate(&rep.to_json()).expect("export validates");
        let rendered = rep.render();
        assert!(rendered.contains("QPS"), "{rendered}");
    }

    #[test]
    fn faults_fail_the_cold_path_and_only_the_cold_path() {
        let config = LoadConfig {
            threads: vec![2],
            ops_per_thread: 150,
            faults: true,
            ..LoadConfig::default()
        };
        let rep = run(&config);
        let r = &rep.runs[0];
        assert_eq!(r.ops, 300);
        assert_eq!(
            r.errors, r.cold_ops,
            "with the meta server crashed, exactly the cold operations fail"
        );
        assert!(r.cold_ops > 0, "the mix must exercise the cold path");
        assert!(r.warm_ops > 0);
        report::validate(&rep.to_json()).expect("export validates");
    }

    #[test]
    fn write_mix_drives_the_registration_frontend() {
        let config = LoadConfig {
            threads: vec![2],
            ops_per_thread: 200,
            write_frac: 0.4,
            transfer_frac: 0.5,
            ..LoadConfig::default()
        };
        let rep = run(&config);
        let r = &rep.runs[0];
        assert_eq!(r.ops, 400);
        assert_eq!(r.errors, 0, "no write fails on the healthy testbed");
        assert_eq!(r.warm_ops + r.cold_ops + r.bind_ops + r.write_ops, r.ops);
        assert!(r.write_ops > 0, "the mix must exercise the write path");
        assert!(r.transfer_ops > 0, "the mix must exercise transfers");
        assert!(r.transfer_ops < r.write_ops, "updates ride along too");
        report::validate(&rep.to_json()).expect("export validates");
        let rendered = rep.render();
        assert!(rendered.contains("transfers"), "{rendered}");
    }

    #[test]
    fn duration_cap_stops_early() {
        let config = LoadConfig {
            threads: vec![1],
            ops_per_thread: u64::MAX,
            duration_ms: Some(50),
            ..LoadConfig::default()
        };
        let rep = run(&config);
        let r = &rep.runs[0];
        assert!(r.ops > 0);
        assert!(r.wall_secs < 30.0, "cap bounded the run");
    }

    #[test]
    fn open_loop_levels_produce_runs() {
        let config = LoadConfig {
            threads: vec![],
            offered_qps: vec![500.0, 2_000.0],
            open_threads: 2,
            open_duration_ms: 120,
            ..LoadConfig::default()
        };
        let rep = run(&config);
        assert!(rep.runs.is_empty());
        assert_eq!(rep.open_runs.len(), 2);
        for (r, &offered) in rep.open_runs.iter().zip(&config.offered_qps) {
            assert_eq!(r.offered_qps, offered);
            assert!(r.scheduled > 0, "Poisson schedule generated arrivals");
            assert_eq!(r.ops, r.scheduled, "every scheduled arrival completed");
            assert_eq!(r.errors, 0);
            assert_eq!(r.latency_us.count, r.ops);
            assert!(r.achieved_qps > 0.0);
        }
        report::validate(&rep.to_json()).expect("export validates");
        let rendered = rep.render();
        assert!(rendered.contains("offered QPS"), "{rendered}");
    }
}

//! Zipf-skewed sampling over a fixed universe.

use simnet::rng::DetRng;

/// Inverse-CDF sampler with weights `1/(rank+1)^s`, precomputed so a
/// sample is one RNG draw plus a binary search (the per-op hot path of
/// the load engine — the experiment-harness version of this sampler
/// walks the weights linearly per draw, which is fine at 150 calls but
/// not at hundreds of thousands).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with skew exponent `s` (`s = 0`
    /// is uniform; `s = 1` the classic Zipf the hit-ratio experiment
    /// uses).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the universe is empty (never: `new` rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let x = rng.next_f64();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_draws_prefer_low_ranks() {
        let z = ZipfSampler::new(36, 1.0);
        let mut rng = DetRng::new(7);
        let mut counts = vec![0u64; 36];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[30]);
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = DetRng::new(7);
        let mut counts = vec![0u64; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "{counts:?}");
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let z = ZipfSampler::new(12, 1.0);
        let a: Vec<usize> = {
            let mut rng = DetRng::new(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = DetRng::new(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! Open-loop (offered-load) arrival mode.
//!
//! A closed loop can never overload the stack: each worker waits for
//! one operation to finish before issuing the next, so under saturation
//! the *arrival rate adapts to the service rate* and queueing delay is
//! invisible (coordinated omission). The open loop instead fixes the
//! offered load: each worker precomputes a Poisson arrival schedule at
//! its share of the offered QPS, dispatches each operation at (or as
//! soon as possible after) its scheduled instant, and charges latency
//! from the *scheduled arrival* — sojourn time — so time spent queued
//! behind a slow operation counts against the system.
//!
//! Three overload signals ride along:
//!
//! * **lateness** — how far past its scheduled instant each operation
//!   was actually dispatched,
//! * **late ops** — how many operations were dispatched late at all,
//! * **max backlog** — the deepest the queue of due-but-not-yet-
//!   dispatched arrivals got.
//!
//! Schedules are deterministic for a fixed seed (proptested below):
//! worker `w` at offered level `q` draws from a seed derived from the
//! config seed, `q`'s bit pattern, and `w`, so re-running a sweep
//! replays identical arrival processes.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use hns_core::obs::metrics::HistogramStats;
use hns_core::obs::LocalHistogram;
use simnet::rng::DetRng;

use super::zipf::ZipfSampler;
use super::{build_shards, LoadConfig, CONTEXTS};

/// Result of one open-loop run (one offered-load level).
#[derive(Debug, Clone, Copy)]
pub struct OpenRunResult {
    /// Total offered load (QPS) across all workers.
    pub offered_qps: f64,
    /// Worker threads driven.
    pub threads: usize,
    /// Scheduled duration of the run.
    pub duration_ms: u64,
    /// Arrivals scheduled across all workers.
    pub scheduled: u64,
    /// Operations completed (every scheduled arrival is eventually
    /// dispatched; the run ends when the last one finishes).
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Wall-clock seconds from barrier release to last worker done.
    pub wall_secs: f64,
    /// Completed operations per wall-clock second. Tracks
    /// `offered_qps` while the stack keeps up; falls below it (with the
    /// run overrunning `duration_ms`) under overload.
    pub achieved_qps: f64,
    /// Sojourn latency (microseconds): completion minus *scheduled*
    /// arrival, so queueing delay is visible.
    pub latency_us: HistogramStats,
    /// Dispatch lateness (microseconds): actual minus scheduled
    /// dispatch instant.
    pub lateness_us: HistogramStats,
    /// Operations dispatched after their scheduled instant.
    pub late_ops: u64,
    /// Deepest due-but-undispatched arrival queue observed.
    pub backlog_max: u64,
}

/// Draws a Poisson arrival schedule: microsecond offsets from run
/// start, strictly within `duration_ms`, with exponential inter-arrival
/// times of mean `1/rate`. Deterministic for a fixed seed. An empty
/// schedule results from a non-positive rate.
pub fn poisson_schedule(seed: u64, rate_per_sec: f64, duration_ms: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if rate_per_sec <= 0.0 {
        return out;
    }
    let mut rng = DetRng::new(seed);
    let mean_us = 1_000_000.0 / rate_per_sec;
    let horizon_us = duration_ms as f64 * 1_000.0;
    let mut t = 0.0;
    loop {
        t += rng.next_exp(mean_us);
        if t >= horizon_us {
            return out;
        }
        out.push(t as u64);
    }
}

/// Seed for worker `w`'s arrival schedule at offered level `q`.
fn schedule_seed(config_seed: u64, offered_qps: f64, worker: u64) -> u64 {
    config_seed ^ offered_qps.to_bits().rotate_left(17) ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What one open-loop worker hands back.
struct OpenWorkerOut {
    scheduled: u64,
    ops: u64,
    errors: u64,
    latency: LocalHistogram,
    lateness: LocalHistogram,
    late_ops: u64,
    backlog_max: u64,
}

/// Runs one offered-load level: `config.open_threads` workers, each
/// with its own stack and its own Poisson schedule at an equal share of
/// `offered_qps`.
pub fn run_open(config: &LoadConfig, offered_qps: f64) -> OpenRunResult {
    let threads = config.open_threads.max(1);
    let duration_ms = config.open_duration_ms;
    let sampler = ZipfSampler::new(CONTEXTS * 3, config.zipf_s);
    let stacks = build_shards(threads, config.faults);
    let schedules: Vec<Vec<u64>> = (0..threads)
        .map(|w| {
            poisson_schedule(
                schedule_seed(config.seed, offered_qps, w as u64),
                offered_qps / threads as f64,
                duration_ms,
            )
        })
        .collect();
    let barrier = Barrier::new(threads + 1);
    let mut master = DetRng::new(config.seed ^ offered_qps.to_bits());

    let mut started = Instant::now();
    let outs: Vec<OpenWorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = stacks
            .iter()
            .zip(&schedules)
            .map(|(stack, schedule)| {
                let mut rng = master.fork();
                let sampler = &sampler;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut latency = LocalHistogram::new();
                    let mut lateness = LocalHistogram::new();
                    let mut errors = 0u64;
                    let mut late_ops = 0u64;
                    let mut backlog_max = 0u64;
                    barrier.wait();
                    let start = Instant::now();
                    for (i, &at_us) in schedule.iter().enumerate() {
                        // Wait out the gap to the scheduled arrival:
                        // sleep for the bulk, spin the last stretch
                        // (sleep granularity is coarser than the
                        // microsecond schedule).
                        loop {
                            let elapsed = start.elapsed().as_micros() as u64;
                            if elapsed >= at_us {
                                break;
                            }
                            let gap = at_us - elapsed;
                            if gap > 300 {
                                std::thread::sleep(Duration::from_micros(gap - 200));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let dispatched = start.elapsed().as_micros() as u64;
                        let late = dispatched.saturating_sub(at_us);
                        lateness.record(late);
                        late_ops += u64::from(late > 0);
                        // Arrivals already due beyond the ones dispatched
                        // so far (including this one) are the backlog.
                        let due = schedule.partition_point(|&t| t <= dispatched);
                        backlog_max = backlog_max.max((due - i) as u64);
                        let (_, failed) = stack.run_op(&mut rng, sampler, config);
                        let done = start.elapsed().as_micros() as u64;
                        latency.record(done - at_us);
                        errors += u64::from(failed);
                    }
                    stack.tb.world.clock.flush_local();
                    OpenWorkerOut {
                        scheduled: schedule.len() as u64,
                        ops: schedule.len() as u64,
                        errors,
                        latency,
                        lateness,
                        late_ops,
                        backlog_max,
                    }
                })
            })
            .collect();
        started = Instant::now();
        barrier.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop worker panicked"))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut latency = LocalHistogram::new();
    let mut lateness = LocalHistogram::new();
    let mut r = OpenRunResult {
        offered_qps,
        threads,
        duration_ms,
        scheduled: 0,
        ops: 0,
        errors: 0,
        wall_secs,
        achieved_qps: 0.0,
        latency_us: HistogramStats::default(),
        lateness_us: HistogramStats::default(),
        late_ops: 0,
        backlog_max: 0,
    };
    for out in &outs {
        r.scheduled += out.scheduled;
        r.ops += out.ops;
        r.errors += out.errors;
        r.late_ops += out.late_ops;
        r.backlog_max = r.backlog_max.max(out.backlog_max);
        latency.merge(&out.latency);
        lateness.merge(&out.lateness);
    }
    r.latency_us = latency.stats();
    r.lateness_us = lateness.stats();
    if wall_secs > 0.0 {
        r.achieved_qps = r.ops as f64 / wall_secs;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let s = poisson_schedule(42, 10_000.0, 100);
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(s.iter().all(|&t| t < 100_000), "within the horizon");
    }

    #[test]
    fn zero_rate_schedules_nothing() {
        assert!(poisson_schedule(1, 0.0, 1_000).is_empty());
        assert!(poisson_schedule(1, -5.0, 1_000).is_empty());
    }

    proptest! {
        /// Fixed seed ⇒ identical arrival schedule, run to run.
        #[test]
        fn schedule_is_deterministic_for_fixed_seed(
            seed in 0u64..u64::MAX,
            rate in 1.0f64..100_000.0,
            duration_ms in 1u64..2_000,
        ) {
            let a = poisson_schedule(seed, rate, duration_ms);
            let b = poisson_schedule(seed, rate, duration_ms);
            prop_assert_eq!(a, b);
        }

        /// Arrival count concentrates around rate × duration: for a
        /// Poisson process the count over the horizon has mean λT, so a
        /// generous ±50% band plus slack catches only real breakage
        /// (wrong unit, wrong mean) and never the stochastic tail.
        #[test]
        fn schedule_count_tracks_offered_load(
            seed in 0u64..u64::MAX,
            rate in 1_000.0f64..50_000.0,
        ) {
            let duration_ms = 1_000;
            let n = poisson_schedule(seed, rate, duration_ms).len() as f64;
            let expect = rate * duration_ms as f64 / 1_000.0;
            prop_assert!(
                n > expect * 0.5 && n < expect * 1.5,
                "count {} vs expected {}", n, expect
            );
        }

        /// Per-worker schedules merged equal one global offered load:
        /// the union of W independent Poisson processes at λ/W is a
        /// Poisson process at λ, so the merged count tracks λT too.
        #[test]
        fn split_schedules_sum_to_the_offered_load(
            seed in 0u64..u64::MAX,
            workers in 1usize..8,
        ) {
            let rate = 20_000.0;
            let duration_ms = 500;
            let total: usize = (0..workers)
                .map(|w| {
                    poisson_schedule(
                        schedule_seed(seed, rate, w as u64),
                        rate / workers as f64,
                        duration_ms,
                    )
                    .len()
                })
                .sum();
            let expect = rate * duration_ms as f64 / 1_000.0;
            let total = total as f64;
            prop_assert!(
                total > expect * 0.5 && total < expect * 1.5,
                "count {} vs expected {}", total, expect
            );
        }
    }
}

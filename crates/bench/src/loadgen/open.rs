//! Open-loop (offered-load) arrival mode.
//!
//! A closed loop can never overload the stack: each worker waits for
//! one operation to finish before issuing the next, so under saturation
//! the *arrival rate adapts to the service rate* and queueing delay is
//! invisible (coordinated omission). The open loop instead fixes the
//! offered load: each worker precomputes a Poisson arrival schedule at
//! its share of the offered QPS, dispatches each operation at (or as
//! soon as possible after) its scheduled instant, and charges latency
//! from the *scheduled arrival* — sojourn time — so time spent queued
//! behind a slow operation counts against the system.
//!
//! Three overload signals ride along:
//!
//! * **lateness** — how far past its scheduled instant each operation
//!   was actually dispatched,
//! * **late ops** — how many operations were dispatched late at all,
//! * **max backlog** — the deepest the queue of due-but-not-yet-
//!   dispatched arrivals got.
//!
//! Schedules are deterministic for a fixed seed (proptested below):
//! worker `w` at offered level `q` draws from a seed derived from the
//! config seed, `q`'s bit pattern, and `w`, so re-running a sweep
//! replays identical arrival processes.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use hns_core::obs::metrics::HistogramStats;
use hns_core::obs::LocalHistogram;
use simnet::rng::DetRng;

use super::zipf::ZipfSampler;
use super::{build_shards, LoadConfig, CONTEXTS};

/// One fixed wall-clock window of an open-loop run. Operations bin by
/// *scheduled* arrival (`at_us / window`), so window membership is
/// deterministic for a fixed seed even though the measured values are
/// wall-clock. Sums and maxima merge exactly across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenWindow {
    /// Window index; window `i` covers scheduled arrivals in
    /// `[i*window_ms, (i+1)*window_ms)`.
    pub index: u64,
    /// Operations whose scheduled arrival fell in this window.
    pub ops: u64,
    /// Of those, how many returned an error.
    pub errors: u64,
    /// Of those, how many were dispatched after their scheduled instant.
    pub late_ops: u64,
    /// Deepest due-but-undispatched backlog observed at a dispatch in
    /// this window.
    pub backlog_max: u64,
    /// Sum of dispatch lateness (µs) over the window's operations.
    pub lateness_sum_us: u64,
    /// Worst dispatch lateness (µs) in the window.
    pub lateness_max_us: u64,
    /// Sum of sojourn latency (µs; completion minus scheduled arrival).
    pub sojourn_sum_us: u64,
    /// Worst sojourn latency (µs) in the window.
    pub sojourn_max_us: u64,
}

impl OpenWindow {
    /// Mean dispatch lateness (µs); 0 for an empty window.
    pub fn lateness_mean_us(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.lateness_sum_us as f64 / self.ops as f64
        }
    }

    /// Mean sojourn latency (µs); 0 for an empty window.
    pub fn sojourn_mean_us(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.sojourn_sum_us as f64 / self.ops as f64
        }
    }

    /// Folds another worker's same-index window into this one. Sums add
    /// and maxima max, so the merge is exact — the merged window equals
    /// what a single worker observing all the operations would report.
    fn merge(&mut self, other: &OpenWindow) {
        self.ops += other.ops;
        self.errors += other.errors;
        self.late_ops += other.late_ops;
        self.backlog_max = self.backlog_max.max(other.backlog_max);
        self.lateness_sum_us += other.lateness_sum_us;
        self.lateness_max_us = self.lateness_max_us.max(other.lateness_max_us);
        self.sojourn_sum_us += other.sojourn_sum_us;
        self.sojourn_max_us = self.sojourn_max_us.max(other.sojourn_max_us);
    }
}

/// Result of one open-loop run (one offered-load level).
#[derive(Debug, Clone)]
pub struct OpenRunResult {
    /// Total offered load (QPS) across all workers.
    pub offered_qps: f64,
    /// Worker threads driven.
    pub threads: usize,
    /// Scheduled duration of the run.
    pub duration_ms: u64,
    /// Arrivals scheduled across all workers.
    pub scheduled: u64,
    /// Operations completed (every scheduled arrival is eventually
    /// dispatched; the run ends when the last one finishes).
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Wall-clock seconds from barrier release to last worker done.
    pub wall_secs: f64,
    /// Completed operations per wall-clock second. Tracks
    /// `offered_qps` while the stack keeps up; falls below it (with the
    /// run overrunning `duration_ms`) under overload.
    pub achieved_qps: f64,
    /// Sojourn latency (microseconds): completion minus *scheduled*
    /// arrival, so queueing delay is visible.
    pub latency_us: HistogramStats,
    /// Dispatch lateness (microseconds): actual minus scheduled
    /// dispatch instant.
    pub lateness_us: HistogramStats,
    /// Operations dispatched after their scheduled instant.
    pub late_ops: u64,
    /// Deepest due-but-undispatched arrival queue observed.
    pub backlog_max: u64,
    /// Width of the per-window series, wall-clock milliseconds.
    pub window_ms: u64,
    /// Per-window overload series covering the whole scheduled horizon
    /// (`ceil(duration_ms / window_ms)` windows, empty ones included),
    /// merged exactly across workers.
    pub windows: Vec<OpenWindow>,
}

/// Draws a Poisson arrival schedule: microsecond offsets from run
/// start, strictly within `duration_ms`, with exponential inter-arrival
/// times of mean `1/rate`. Deterministic for a fixed seed. An empty
/// schedule results from a non-positive rate.
pub fn poisson_schedule(seed: u64, rate_per_sec: f64, duration_ms: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if rate_per_sec <= 0.0 {
        return out;
    }
    let mut rng = DetRng::new(seed);
    let mean_us = 1_000_000.0 / rate_per_sec;
    let horizon_us = duration_ms as f64 * 1_000.0;
    let mut t = 0.0;
    loop {
        t += rng.next_exp(mean_us);
        if t >= horizon_us {
            return out;
        }
        out.push(t as u64);
    }
}

/// Seed for worker `w`'s arrival schedule at offered level `q`.
fn schedule_seed(config_seed: u64, offered_qps: f64, worker: u64) -> u64 {
    config_seed ^ offered_qps.to_bits().rotate_left(17) ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What one open-loop worker hands back.
struct OpenWorkerOut {
    scheduled: u64,
    ops: u64,
    errors: u64,
    latency: LocalHistogram,
    lateness: LocalHistogram,
    late_ops: u64,
    backlog_max: u64,
    windows: Vec<OpenWindow>,
}

/// Runs one offered-load level: `config.open_threads` workers, each
/// with its own stack and its own Poisson schedule at an equal share of
/// `offered_qps`.
pub fn run_open(config: &LoadConfig, offered_qps: f64) -> OpenRunResult {
    let threads = config.open_threads.max(1);
    let duration_ms = config.open_duration_ms;
    let window_ms = config.open_window_ms.max(1);
    let window_us = window_ms * 1_000;
    let n_windows = (duration_ms as usize * 1_000)
        .div_ceil(window_us as usize)
        .max(1);
    let sampler = ZipfSampler::new(CONTEXTS * 3, config.zipf_s);
    let stacks = build_shards(threads, config);
    let schedules: Vec<Vec<u64>> = (0..threads)
        .map(|w| {
            poisson_schedule(
                schedule_seed(config.seed, offered_qps, w as u64),
                offered_qps / threads as f64,
                duration_ms,
            )
        })
        .collect();
    let barrier = Barrier::new(threads + 1);
    let mut master = DetRng::new(config.seed ^ offered_qps.to_bits());

    let mut started = Instant::now();
    let outs: Vec<OpenWorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = stacks
            .iter()
            .zip(&schedules)
            .map(|(stack, schedule)| {
                let mut rng = master.fork();
                let sampler = &sampler;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut latency = LocalHistogram::new();
                    let mut lateness = LocalHistogram::new();
                    let mut errors = 0u64;
                    let mut late_ops = 0u64;
                    let mut backlog_max = 0u64;
                    let mut windows = vec![OpenWindow::default(); n_windows];
                    for (i, w) in windows.iter_mut().enumerate() {
                        w.index = i as u64;
                    }
                    barrier.wait();
                    let start = Instant::now();
                    for (i, &at_us) in schedule.iter().enumerate() {
                        // Wait out the gap to the scheduled arrival:
                        // sleep for the bulk, spin the last stretch
                        // (sleep granularity is coarser than the
                        // microsecond schedule).
                        loop {
                            let elapsed = start.elapsed().as_micros() as u64;
                            if elapsed >= at_us {
                                break;
                            }
                            let gap = at_us - elapsed;
                            if gap > 300 {
                                std::thread::sleep(Duration::from_micros(gap - 200));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let dispatched = start.elapsed().as_micros() as u64;
                        let late = dispatched.saturating_sub(at_us);
                        lateness.record(late);
                        late_ops += u64::from(late > 0);
                        // Arrivals already due beyond the ones dispatched
                        // so far (including this one) are the backlog.
                        let due = schedule.partition_point(|&t| t <= dispatched);
                        let backlog = (due - i) as u64;
                        backlog_max = backlog_max.max(backlog);
                        let (_, failed) = stack.run_op(&mut rng, sampler, config);
                        let done = start.elapsed().as_micros() as u64;
                        let sojourn = done - at_us;
                        latency.record(sojourn);
                        errors += u64::from(failed);
                        // Schedules stay inside the horizon, so the
                        // window index is always in range.
                        let w = &mut windows[(at_us / window_us) as usize];
                        w.ops += 1;
                        w.errors += u64::from(failed);
                        w.late_ops += u64::from(late > 0);
                        w.backlog_max = w.backlog_max.max(backlog);
                        w.lateness_sum_us += late;
                        w.lateness_max_us = w.lateness_max_us.max(late);
                        w.sojourn_sum_us += sojourn;
                        w.sojourn_max_us = w.sojourn_max_us.max(sojourn);
                    }
                    stack.tb.world.clock.flush_local();
                    OpenWorkerOut {
                        scheduled: schedule.len() as u64,
                        ops: schedule.len() as u64,
                        errors,
                        latency,
                        lateness,
                        late_ops,
                        backlog_max,
                        windows,
                    }
                })
            })
            .collect();
        started = Instant::now();
        barrier.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop worker panicked"))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut latency = LocalHistogram::new();
    let mut lateness = LocalHistogram::new();
    let mut r = OpenRunResult {
        offered_qps,
        threads,
        duration_ms,
        scheduled: 0,
        ops: 0,
        errors: 0,
        wall_secs,
        achieved_qps: 0.0,
        latency_us: HistogramStats::default(),
        lateness_us: HistogramStats::default(),
        late_ops: 0,
        backlog_max: 0,
        window_ms,
        windows: {
            let mut windows = vec![OpenWindow::default(); n_windows];
            for (i, w) in windows.iter_mut().enumerate() {
                w.index = i as u64;
            }
            windows
        },
    };
    for out in &outs {
        r.scheduled += out.scheduled;
        r.ops += out.ops;
        r.errors += out.errors;
        r.late_ops += out.late_ops;
        r.backlog_max = r.backlog_max.max(out.backlog_max);
        latency.merge(&out.latency);
        lateness.merge(&out.lateness);
        for (merged, w) in r.windows.iter_mut().zip(&out.windows) {
            merged.merge(w);
        }
    }
    r.latency_us = latency.stats();
    r.lateness_us = lateness.stats();
    if wall_secs > 0.0 {
        r.achieved_qps = r.ops as f64 / wall_secs;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let s = poisson_schedule(42, 10_000.0, 100);
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(s.iter().all(|&t| t < 100_000), "within the horizon");
    }

    #[test]
    fn zero_rate_schedules_nothing() {
        assert!(poisson_schedule(1, 0.0, 1_000).is_empty());
        assert!(poisson_schedule(1, -5.0, 1_000).is_empty());
    }

    #[test]
    fn window_merge_is_exact() {
        let a = OpenWindow {
            index: 3,
            ops: 10,
            errors: 1,
            late_ops: 4,
            backlog_max: 2,
            lateness_sum_us: 500,
            lateness_max_us: 200,
            sojourn_sum_us: 9_000,
            sojourn_max_us: 4_000,
        };
        let b = OpenWindow {
            index: 3,
            ops: 5,
            errors: 0,
            late_ops: 5,
            backlog_max: 7,
            lateness_sum_us: 1_500,
            lateness_max_us: 900,
            sojourn_sum_us: 1_000,
            sojourn_max_us: 350,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.ops, 15);
        assert_eq!(merged.errors, 1);
        assert_eq!(merged.late_ops, 9);
        assert_eq!(merged.backlog_max, 7);
        assert_eq!(merged.lateness_sum_us, 2_000);
        assert_eq!(merged.lateness_max_us, 900);
        assert_eq!(merged.sojourn_sum_us, 10_000);
        assert_eq!(merged.sojourn_max_us, 4_000);
        assert_eq!(merged.lateness_mean_us(), 2_000.0 / 15.0);
    }

    #[test]
    fn windows_cover_every_scheduled_op_exactly_once() {
        let config = LoadConfig {
            open_threads: 2,
            open_duration_ms: 120,
            open_window_ms: 25,
            ..LoadConfig::default()
        };
        let r = run_open(&config, 2_000.0);
        assert_eq!(r.window_ms, 25);
        assert_eq!(r.windows.len(), 5, "ceil(120 / 25) windows, empty included");
        for (i, w) in r.windows.iter().enumerate() {
            assert_eq!(w.index, i as u64, "contiguous indices");
            assert!(w.late_ops <= w.ops);
            assert!(w.lateness_max_us <= w.lateness_sum_us || w.ops <= 1);
        }
        // The windows partition the scheduled horizon: totals reassemble.
        assert_eq!(r.windows.iter().map(|w| w.ops).sum::<u64>(), r.ops);
        assert_eq!(r.windows.iter().map(|w| w.errors).sum::<u64>(), r.errors);
        assert_eq!(
            r.windows.iter().map(|w| w.late_ops).sum::<u64>(),
            r.late_ops
        );
        assert_eq!(
            r.windows.iter().map(|w| w.backlog_max).max().unwrap_or(0),
            r.backlog_max
        );
    }

    proptest! {
        /// Fixed seed ⇒ identical arrival schedule, run to run.
        #[test]
        fn schedule_is_deterministic_for_fixed_seed(
            seed in 0u64..u64::MAX,
            rate in 1.0f64..100_000.0,
            duration_ms in 1u64..2_000,
        ) {
            let a = poisson_schedule(seed, rate, duration_ms);
            let b = poisson_schedule(seed, rate, duration_ms);
            prop_assert_eq!(a, b);
        }

        /// Arrival count concentrates around rate × duration: for a
        /// Poisson process the count over the horizon has mean λT, so a
        /// generous ±50% band plus slack catches only real breakage
        /// (wrong unit, wrong mean) and never the stochastic tail.
        #[test]
        fn schedule_count_tracks_offered_load(
            seed in 0u64..u64::MAX,
            rate in 1_000.0f64..50_000.0,
        ) {
            let duration_ms = 1_000;
            let n = poisson_schedule(seed, rate, duration_ms).len() as f64;
            let expect = rate * duration_ms as f64 / 1_000.0;
            prop_assert!(
                n > expect * 0.5 && n < expect * 1.5,
                "count {} vs expected {}", n, expect
            );
        }

        /// Per-worker schedules merged equal one global offered load:
        /// the union of W independent Poisson processes at λ/W is a
        /// Poisson process at λ, so the merged count tracks λT too.
        #[test]
        fn split_schedules_sum_to_the_offered_load(
            seed in 0u64..u64::MAX,
            workers in 1usize..8,
        ) {
            let rate = 20_000.0;
            let duration_ms = 500;
            let total: usize = (0..workers)
                .map(|w| {
                    poisson_schedule(
                        schedule_seed(seed, rate, w as u64),
                        rate / workers as f64,
                        duration_ms,
                    )
                    .len()
                })
                .sum();
            let expect = rate * duration_ms as f64 / 1_000.0;
            let total = total as f64;
            prop_assert!(
                total > expect * 0.5 && total < expect * 1.5,
                "count {} vs expected {}", total, expect
            );
        }
    }
}

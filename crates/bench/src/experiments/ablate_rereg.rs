//! A4 — ablation: the costs of reregistration that direct access avoids.
//!
//! §2 rejects reregistration for four reasons: "problems with name
//! conflicts and consistency of information on the global and local
//! levels, because the reregistration cost is one that continues without
//! end, because the degree of system heterogeneity would be limited by the
//! rate at which the global name service could absorb the
//! reregistrations". This ablation measures staleness windows, recurring
//! absorption cost, and conflicts against the sync period.

use baselines::reregistration::{Reregistrar, SourceService};
use simnet::World;

use crate::cells::PlainTable;

/// Result of one sync-period setting.
#[derive(Debug, Clone, Copy)]
pub struct ReregPoint {
    /// Sync period, hours.
    pub period_h: f64,
    /// Mean staleness window of a freshly updated name, minutes.
    pub mean_staleness_min: f64,
    /// Global-service absorption cost per day, seconds of service time.
    pub absorb_cost_s_per_day: f64,
    /// Name conflicts discovered.
    pub conflicts: usize,
}

const NAMES_PER_SOURCE: usize = 60;
const SOURCES: usize = 3;
const SHARED_NAMES: usize = 5;
/// Local updates per hour across the whole system.
const UPDATES_PER_HOUR: usize = 12;
const HORIZON_H: u64 = 24;

/// Runs one setting of the sync period.
pub fn run_point(period_h: f64) -> ReregPoint {
    let world = World::paper();
    let mut r = Reregistrar::new();
    let mut source_ids = Vec::new();
    for s in 0..SOURCES {
        let mut src = SourceService::new();
        for n in 0..NAMES_PER_SOURCE {
            src.upsert(format!("src{s}-name{n}"), world.now());
        }
        // Shared names collide across sources — the conflict case the
        // HNS's per-context name space rules out.
        for n in 0..SHARED_NAMES {
            src.upsert(format!("shared-{n}"), world.now());
        }
        source_ids.push(r.add_source(src));
    }

    let mut conflicts = 0usize;
    let mut staleness_ms: Vec<f64> = Vec::new();
    let mut absorb_ms = 0.0;
    let period_ms = period_h * 3600.0 * 1000.0;
    let update_gap_ms = 3600.0 * 1000.0 / UPDATES_PER_HOUR as f64;
    let horizon_ms = HORIZON_H as f64 * 3600.0 * 1000.0;

    let mut next_sync = period_ms;
    let mut next_update = update_gap_ms;
    let mut update_seq = 0usize;
    let mut pending_updates: Vec<f64> = Vec::new(); // update times awaiting sync
    while world.now().as_ms_f64() < horizon_ms {
        let now = world.now().as_ms_f64();
        if next_update < next_sync && next_update <= horizon_ms {
            world.charge_ms(next_update - now);
            let src = source_ids[update_seq % SOURCES];
            let name = format!(
                "src{}-name{}",
                update_seq % SOURCES,
                update_seq % NAMES_PER_SOURCE
            );
            r.source_mut(src).upsert(name, world.now());
            pending_updates.push(world.now().as_ms_f64());
            update_seq += 1;
            next_update += update_gap_ms;
        } else if next_sync <= horizon_ms {
            world.charge_ms(next_sync - now);
            let sync_start = world.now().as_ms_f64();
            let (report, took, _) = world.measure(|| r.sync(&world));
            conflicts += report.conflicts;
            absorb_ms += took.as_ms_f64();
            for update_at in pending_updates.drain(..) {
                staleness_ms.push(sync_start - update_at);
            }
            next_sync += period_ms;
        } else {
            world.charge_ms(horizon_ms - now);
        }
    }

    let mean_staleness_min = if staleness_ms.is_empty() {
        period_h * 30.0 // No update landed; report the analytic mean.
    } else {
        staleness_ms.iter().sum::<f64>() / staleness_ms.len() as f64 / 60_000.0
    };
    ReregPoint {
        period_h,
        mean_staleness_min,
        absorb_cost_s_per_day: absorb_ms / 1000.0,
        conflicts,
    }
}

/// Runs the sweep.
pub fn run() -> PlainTable {
    let mut table = PlainTable::new(
        format!(
            "Ablation A4 — reregistration vs direct access \
             ({SOURCES} sources x {} names, {UPDATES_PER_HOUR} updates/h, 24 h)",
            NAMES_PER_SOURCE + SHARED_NAMES
        ),
        vec![
            "scheme",
            "mean staleness (min)",
            "global absorb cost (s/day)",
            "name conflicts",
        ],
    );
    for period_h in [0.5, 2.0, 8.0, 24.0] {
        let p = run_point(period_h);
        table.push_row(vec![
            format!("reregistration, sync every {period_h} h"),
            format!("{:.0}", p.mean_staleness_min),
            format!("{:.0}", p.absorb_cost_s_per_day),
            p.conflicts.to_string(),
        ]);
    }
    // Direct access: updates land in the local service immediately; global
    // clients see them as soon as any cached copy expires (TTL 600 s), and
    // the per-context name space admits no cross-system conflicts.
    table.push_row(vec![
        "direct access (HNS)".into(),
        format!("{:.0}", 600.0 / 60.0 / 2.0),
        "0".into(),
        "0".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_periods_mean_more_staleness_less_cost() {
        let fast = run_point(0.5);
        let slow = run_point(8.0);
        assert!(slow.mean_staleness_min > fast.mean_staleness_min * 3.0);
        assert!(slow.absorb_cost_s_per_day < fast.absorb_cost_s_per_day);
    }

    #[test]
    fn shared_names_conflict() {
        let p = run_point(2.0);
        assert!(
            p.conflicts > 0,
            "colliding namespaces must surface conflicts"
        );
    }

    #[test]
    fn absorb_cost_never_ends() {
        // Even with zero updates the periodic sync keeps paying.
        let p = run_point(0.5);
        assert!(
            p.absorb_cost_s_per_day > 100.0,
            "cost {}",
            p.absorb_cost_s_per_day
        );
    }
}

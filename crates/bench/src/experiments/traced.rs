//! E-T — end-to-end traced queries: per-query span breakdowns plus the
//! unified metrics snapshot.
//!
//! Reruns the Table 3.1 "HNS at client (linked), NSMs remote, marshalled
//! caches" row with tracing enabled and walks one `Import` through its
//! three interesting cache states:
//!
//! 1. **cold, sequential** — batching off; `FindNSM` performs the six
//!    cached remote data mappings one round trip each.
//! 2. **warm** — everything answered from the HNS and NSM caches.
//! 3. **cold, batched** — caches cleared, `MQUERY` + server-side chaser
//!    on; the cold path collapses to at most two remote round trips.
//!
//! Each query renders as a flame-style span tree, and the whole run dumps
//! a [`MetricsSnapshot`] covering the HNS cache, the per-mapping meta
//! lookups, the NSM layer, and the RPC fabric.

use std::sync::Arc;

use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::HnsName;
use hns_core::obs::MetricsSnapshot;
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::Importer;
use simnet::trace::TraceKind;

/// One traced query: its label, accounting, and rendered span tree.
#[derive(Debug, Clone)]
pub struct TracedQuery {
    /// What this query demonstrates.
    pub label: &'static str,
    /// Remote round trips the whole `Import` performed (FindNSM + the
    /// NSM call), from the world's remote-call counter delta.
    pub remote_round_trips: u64,
    /// Virtual duration of the query.
    pub duration_us: u64,
    /// Flame-style span breakdown.
    pub flame: String,
}

/// The full traced run: three queries plus the metrics snapshot.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The traced queries, in execution order.
    pub queries: Vec<TracedQuery>,
    /// The unified metrics snapshot taken after the last query.
    pub snapshot: MetricsSnapshot,
}

impl TracedRun {
    /// Human-readable report: per-query flame trees, then the metrics
    /// table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Traced Table 3.1 row — HNS linked at client, NSMs remote, marshalled caches\n",
        );
        for q in &self.queries {
            out.push_str(&format!(
                "\n--- {} ({:.3} ms, {} remote round trips) ---\n{}",
                q.label,
                q.duration_us as f64 / 1000.0,
                q.remote_round_trips,
                q.flame
            ));
        }
        out.push('\n');
        out.push_str(&self.snapshot.render());
        out
    }

    /// Machine-readable export: `{schema, queries, metrics}`.
    pub fn to_json(&self) -> String {
        use hns_core::obs::json::string;
        let mut out = String::from("{\"schema\": \"hns-trace-v1\", \"queries\": [");
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"label\": {}, \"remote_round_trips\": {}, \"duration_us\": {}, \"flame\": {}}}",
                string(q.label),
                q.remote_round_trips,
                q.duration_us,
                string(&q.flame)
            ));
        }
        out.push_str("], \"metrics\": ");
        out.push_str(&self.snapshot.to_json());
        out.push('}');
        out
    }
}

fn run_query(
    tb: &Testbed,
    importer: &Importer,
    name: &HnsName,
    label: &'static str,
) -> TracedQuery {
    let marker = tb.world.span(None, TraceKind::Info, label);
    let (result, took, delta) = tb
        .world
        .measure(|| importer.import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, name));
    result.expect("traced import");
    drop(marker);
    TracedQuery {
        label,
        remote_round_trips: delta.remote_calls,
        duration_us: took.as_us(),
        flame: String::new(), // filled from the tracer after the run
    }
}

/// Runs the traced scenario.
pub fn run() -> TracedRun {
    let tb = Testbed::build();
    let nsms = tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let importer = Importer::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        HnsHandle::Linked(Arc::clone(&hns)),
    );
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");

    tb.world.tracer.set_enabled(true);
    hns.set_batching(false);
    let mut queries = vec![run_query(
        &tb,
        &importer,
        &name,
        "query 1: cold, sequential FindNSM",
    )];
    queries.push(run_query(&tb, &importer, &name, "query 2: warm caches"));
    hns.clear_cache();
    nsms.bind.clear_cache();
    hns.set_batching(true);
    queries.push(run_query(
        &tb,
        &importer,
        &name,
        "query 3: cold, batched FindNSM (MQUERY + chaser)",
    ));
    tb.world.tracer.set_enabled(false);

    // Attach each marker span's subtree as the query's flame rendering.
    let traces = tb.world.tracer.query_traces();
    for q in queries.iter_mut() {
        if let Some(t) = traces.iter().find(|t| t.root.name == q.label) {
            q.flame = t.render();
        }
    }

    // Snapshot-time exports from the caches that keep their own atomics
    // (hns_cache, nsm_cache, bindns_cache — all registered with the
    // world at construction).
    tb.world.export_all_caches();
    TracedRun {
        queries,
        snapshot: tb.world.metrics().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_match_the_paper_model() {
        let run = run();
        // Import = FindNSM + one NSM call; the NSM's own backend lookup
        // adds one more remote call on the cold paths.
        assert_eq!(run.queries.len(), 3);
        let cold = &run.queries[0];
        let warm = &run.queries[1];
        let batched = &run.queries[2];
        assert_eq!(
            cold.remote_round_trips, 9,
            "cold sequential: 6 FindNSM + NSM call + BIND A lookup + portmapper"
        );
        assert_eq!(warm.remote_round_trips, 1, "warm: only the NSM call");
        assert!(
            batched.remote_trips_for_findnsm() <= 2,
            "batched FindNSM must collapse to ≤ 2 round trips ({} total)",
            batched.remote_round_trips
        );
    }

    impl TracedQuery {
        /// Round trips attributable to FindNSM alone (total minus the NSM
        /// call and the NSM's two backend lookups on a cold NSM cache).
        fn remote_trips_for_findnsm(&self) -> u64 {
            self.remote_round_trips.saturating_sub(3)
        }
    }

    #[test]
    fn flame_trees_show_the_span_hierarchy() {
        let run = run();
        let cold = &run.queries[0];
        assert!(
            cold.flame.contains("FindNSM(query class hrpcbinding"),
            "missing FindNSM root:\n{}",
            cold.flame
        );
        for mapping in 1..=6 {
            assert!(
                cold.flame.contains(&format!("mapping {mapping}:")),
                "missing mapping {mapping}:\n{}",
                cold.flame
            );
        }
        assert!(
            cold.flame.contains("rt="),
            "round trips not annotated:\n{}",
            cold.flame
        );
        let warm = &run.queries[1];
        assert!(
            warm.flame.contains("cache=hit"),
            "warm query should show a cache hit:\n{}",
            warm.flame
        );
        let batched = &run.queries[2];
        assert!(
            batched.flame.contains("MQUERY batch prefetch"),
            "batched query should show the prefetch span:\n{}",
            batched.flame
        );
    }

    #[test]
    fn snapshot_covers_every_required_component() {
        let run = run();
        let s = &run.snapshot;
        // HNS cache outcomes, including the coalesced and negative rows.
        for name in ["hits", "misses", "expired", "negative_hits", "coalesced"] {
            assert!(
                s.counter("hns_cache", name).is_some(),
                "missing hns_cache/{name}\n{}",
                s.render()
            );
        }
        // Per-mapping meta lookup latency histograms.
        for mapping in 1..=6 {
            let h = s
                .histogram("hns_meta", &format!("mapping{mapping}_us"))
                .unwrap_or_else(|| panic!("missing hns_meta/mapping{mapping}_us"));
            assert!(h.count >= 1);
        }
        // NSM call counts and the fabric's round-trip counter.
        assert!(s.counter("nsm", "queries").expect("nsm/queries") >= 3);
        assert!(s.counter("net", "remote_calls").expect("net/remote_calls") >= 10);
        // Round-trip distributions: sequential cold = 6, batched ≤ 2.
        let seq = s
            .histogram("hns", "find_nsm_round_trips_sequential")
            .expect("sequential histogram");
        assert_eq!(seq.max, 6, "sequential cold FindNSM is 6 round trips");
        let batched = s
            .histogram("hns", "find_nsm_round_trips_batched")
            .expect("batched histogram");
        assert!(
            batched.max <= 2,
            "batched FindNSM is at most 2 round trips, saw {}",
            batched.max
        );
    }

    #[test]
    fn json_export_parses_and_carries_the_metrics() {
        let run = run();
        let json = run.to_json();
        let v = hns_core::obs::json::parse(&json).expect("traced JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("hns-trace-v1")
        );
        let queries = v
            .get("queries")
            .and_then(|q| q.as_array())
            .expect("queries");
        assert_eq!(queries.len(), 3);
        for q in queries {
            assert!(q
                .get("remote_round_trips")
                .and_then(|n| n.as_u64())
                .is_some());
        }
        assert!(v.get("metrics").is_some());
    }
}

//! E3 — the §3 inline performance numbers: FindNSM cold/warm, the NSM call
//! by RPC suite, basic HNS overhead, and the underlying-service primitives.

use std::sync::Arc;

use bindns::rr::RType;
use clearinghouse::property::PROP_ADDRESS;
use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::query::QueryClass;
use hrpc::server::ProcServer;
use hrpc::{ComponentSet, HrpcBinding, ProgramId};
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;
use simnet::topology::NetAddr;
use wire::Value;

use crate::cells::{Cell, PaperTable};

/// Measures a single remote echo call under each HRPC suite (the
/// "remote call to the NSM takes 22-38 msec." spread).
pub fn suite_call_costs() -> Vec<(&'static str, f64)> {
    let tb = Testbed::build();
    let echo = Arc::new(ProcServer::new("echo").with_proc(1, |_c, a| Ok(a.clone())));
    let port = tb.net.export(tb.hosts.nsm, ProgramId(777), echo);
    let mut out = Vec::new();
    for (label, components) in [
        ("raw tcp", ComponentSet::raw_tcp(port)),
        ("raw udp", ComponentSet::raw_udp(port)),
        ("sun", ComponentSet::sun()),
        ("courier", ComponentSet::courier()),
    ] {
        let binding = HrpcBinding {
            host: tb.hosts.nsm,
            addr: NetAddr::of(tb.hosts.nsm),
            program: ProgramId(777),
            port,
            components,
        };
        let (r, took, _) = tb
            .world
            .measure(|| tb.net.call(tb.hosts.client, &binding, 1, &Value::Void));
        r.expect("echo");
        out.push((label, took.as_ms_f64()));
    }
    out
}

/// Runs the experiment and returns the comparison table.
pub fn run() -> PaperTable {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.client, NsmCacheForm::Marshalled);
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = QueryClass::hrpc_binding();

    let (r, cold, _) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    r.expect("cold FindNSM");
    let (r, warm, _) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    r.expect("warm FindNSM");

    let suites = suite_call_costs();
    let nsm_call_min = suites
        .iter()
        .map(|(_, ms)| *ms)
        .fold(f64::INFINITY, f64::min);
    let nsm_call_max = suites.iter().map(|(_, ms)| *ms).fold(0.0, f64::max);

    // Basic overhead: determining the NSM plus (when not cached) calling
    // it: warm FindNSM alone up to warm FindNSM + the dearest suite.
    let overhead_min = warm.as_ms_f64();
    let overhead_max = warm.as_ms_f64() + nsm_call_max;

    // Underlying-service primitives.
    let resolver = tb.std_resolver(tb.hosts.client);
    let (r, bind_ms, _) = tb.world.measure(|| {
        resolver.query_uncached(
            &bindns::DomainName::parse("fiji.cs.washington.edu").expect("name"),
            RType::A,
        )
    });
    r.expect("bind lookup");
    let ch_client = tb.ch_client(tb.hosts.client);
    let (r, ch_ms, _) = tb.world.measure(|| {
        ch_client.lookup_item(
            &clearinghouse::ThreePartName::parse("printserver:cs:uw").expect("name"),
            PROP_ADDRESS,
        )
    });
    r.expect("ch lookup");

    let mut table = PaperTable::new("§3 inline numbers (ms)", vec!["value"]);
    // The paper's standalone "FindNSM ... 460 msec" conflates the NSM
    // phase; Table 3.1's internal consistency (column A row 1 = 460 total,
    // B-C pinning the NSM miss phase near 90) places FindNSM-alone near
    // 370. We report against the table-consistent figure; see
    // EXPERIMENTS.md.
    table.push_row(
        "FindNSM, cold (table-consistent ~368)",
        vec![Cell::new(368.0, cold.as_ms_f64())],
    );
    table.push_row(
        "FindNSM, cached (88)",
        vec![Cell::new(88.0, warm.as_ms_f64())],
    );
    table.push_row(
        "NSM remote call, min (22)",
        vec![Cell::new(22.0, nsm_call_min)],
    );
    table.push_row(
        "NSM remote call, max (38)",
        vec![Cell::new(38.0, nsm_call_max)],
    );
    table.push_row(
        "basic HNS overhead, min (88)",
        vec![Cell::new(88.0, overhead_min)],
    );
    table.push_row(
        "basic HNS overhead, max (126)",
        vec![Cell::new(126.0, overhead_max)],
    );
    table.push_row(
        "BIND name→address lookup (27)",
        vec![Cell::new(27.0, bind_ms.as_ms_f64())],
    );
    table.push_row(
        "Clearinghouse lookup (156)",
        vec![Cell::new(156.0, ch_ms.as_ms_f64())],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_numbers_reproduce() {
        let table = run();
        assert!(
            table.worst_error_pct() < 10.0,
            "worst error {:.1}%\n{}",
            table.worst_error_pct(),
            table.render()
        );
    }

    #[test]
    fn suite_spread_is_22_to_38() {
        let suites = suite_call_costs();
        for (label, ms) in suites {
            assert!((21.0..=40.0).contains(&ms), "{label}: {ms} ms");
        }
    }
}

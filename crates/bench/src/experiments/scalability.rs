//! A3 — ablation: the scalability argument of §2 under load.
//!
//! "The basic distribution of the HNS occurs naturally since each new
//! system type introducing a new set of names also includes a name service
//! managing those names that we can take advantage of directly." A
//! reregistration-based global service concentrates every lookup on one
//! server; direct access spreads lookups across the subsystems' own
//! servers. This ablation sweeps the offered load and compares mean
//! response times.

use simnet::des::{
    route_all_to, route_uniform, ArrivalProcess, OpenWorkload, QueueSim, ServiceTime,
};
use simnet::rng::DetRng;

use crate::cells::PlainTable;

/// Mean lookup service time of a name server, ms (the BIND primitive's
/// server-side component plus marshalling).
const SERVICE_MS: f64 = 10.0;
/// Number of federated subsystem name services.
const FEDERATION: usize = 4;
/// Jobs per sweep point.
const JOBS: u64 = 40_000;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Offered load, lookups per second.
    pub rate_per_s: f64,
    /// Mean response of the single central server, ms (`None` if the
    /// server is saturated at this rate).
    pub central_ms: Option<f64>,
    /// Mean response with lookups spread over the federation, ms.
    pub federated_ms: Option<f64>,
}

/// Runs one sweep point.
pub fn run_point(rate_per_s: f64) -> LoadPoint {
    let rate_per_ms = rate_per_s / 1000.0;
    let service = ServiceTime::Exponential {
        mean_ms: SERVICE_MS,
    };

    let central_ms = if rate_per_ms * SERVICE_MS < 0.98 {
        let mut sim = QueueSim::new();
        let s = sim.add_server(service);
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson { rate_per_ms },
            JOBS,
            DetRng::new(101),
        );
        sim.run_open(wl, route_all_to(s), &mut DetRng::new(102))
            .map(|stats| stats.mean_ms)
    } else {
        None // rho >= 1: unstable.
    };

    let federated_ms = if rate_per_ms * SERVICE_MS / (FEDERATION as f64) < 0.98 {
        let mut sim = QueueSim::new();
        for _ in 0..FEDERATION {
            sim.add_server(service);
        }
        let wl = OpenWorkload::new(
            ArrivalProcess::Poisson { rate_per_ms },
            JOBS,
            DetRng::new(101),
        );
        sim.run_open(wl, route_uniform(FEDERATION), &mut DetRng::new(102))
            .map(|stats| stats.mean_ms)
    } else {
        None
    };

    LoadPoint {
        rate_per_s,
        central_ms,
        federated_ms,
    }
}

/// Runs the sweep.
pub fn run() -> PlainTable {
    let mut table = PlainTable::new(
        format!(
            "Ablation A3 — load response: one central reregistered server vs \
             {FEDERATION} federated subsystem name services (service {SERVICE_MS} ms)"
        ),
        vec!["lookups/s", "central mean (ms)", "federated mean (ms)"],
    );
    for rate in [20.0, 50.0, 80.0, 95.0, 150.0, 300.0] {
        let point = run_point(rate);
        let show = |v: Option<f64>| match v {
            Some(ms) => format!("{ms:.1}"),
            None => "saturated".to_string(),
        };
        table.push_row(vec![
            format!("{rate:.0}"),
            show(point.central_ms),
            show(point.federated_ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_wins_at_high_load() {
        let point = run_point(80.0); // rho_central = 0.8, rho_fed = 0.2
        let central = point.central_ms.expect("stable");
        let federated = point.federated_ms.expect("stable");
        assert!(
            federated * 2.0 < central,
            "federated {federated} vs central {central}"
        );
    }

    #[test]
    fn central_saturates_first() {
        let point = run_point(150.0); // rho_central = 1.5
        assert!(point.central_ms.is_none());
        assert!(point.federated_ms.is_some());
    }

    #[test]
    fn light_load_is_comparable() {
        let point = run_point(20.0); // rho_central = 0.2
        let central = point.central_ms.expect("stable");
        let federated = point.federated_ms.expect("stable");
        assert!((central - federated).abs() < central * 0.5);
    }
}

//! E-TL — the chaos scenario as a *time series*: windowed sampling
//! through baseline → fault → recovery, exported as `hns-timeline-v1`.
//!
//! The event-table chaos scenario ([`super::chaos`]) proves the
//! degradation modes happen; this one shows their *shape over time*,
//! which is what ROADMAP item 5's self-tuning controller needs. A probe
//! loop (warm `FindNSM`, cold `FindNSM`, `Import` with an NSM-failover
//! alternate) runs every [`PROBE_MS`] virtual milliseconds while the
//! [`World`]'s sampler closes fixed windows:
//!
//! 1. **baseline** — probes succeed, the warm cache fills and hits.
//! 2. **quiet TTL gap** — no probes while every cache entry expires
//!    (one big virtual-time jump; the crossed windows land in the
//!    timeline as empty rows, exercising the zero-activity sparkline
//!    clamp).
//! 3. **fault** — the seeded [`FaultPlan`] windows open: serve-stale on
//!    the warm path, fail-fast `HostUnreachable` on the cold path, NSM
//!    failover on `Import` — visible per window in `faults/*` deltas.
//! 4. **recovery** — time passes the last fault window (the plan stays
//!    installed; closed windows are inert) and probing resumes.
//!
//! Recovery accounting, derived from the probe stream and the timeline:
//! *time-to-first-success* (virtual time from the last fault window
//! closing to the first fully-successful probe round), and
//! *windows-to-baseline* / *MTTR* (windows / virtual time until the
//! first post-clear window with probe traffic and zero fault activity).
//!
//! Everything runs in virtual time under seeded jitter, so the render
//! and the JSON export are byte-identical across same-seed runs
//! (golden-tested below).

use std::sync::Arc;

use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::HnsName;
use hns_core::obs::json::{number, string};
use hns_core::obs::{Timeline, TimelineWindow};
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::Importer;
use simnet::faults::FaultPlan;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use simnet::World;

use super::chaos::{ChaosConfig, SPIKE_MS, WINDOW_SECS};

/// Virtual milliseconds between probe rounds.
pub const PROBE_MS: u64 = 2_000;
/// Default sampling window width in virtual milliseconds.
pub const DEFAULT_WINDOW_MS: u64 = 10_000;
/// Probe rounds per active phase (baseline / fault / recovery).
const ROUNDS: u64 = 30;

/// Configuration: the chaos fault selection plus the window width.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Fault selection and seed (shared with `experiments chaos`).
    pub chaos: ChaosConfig,
    /// Sampling window width, virtual milliseconds.
    pub window_ms: u64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            chaos: ChaosConfig::default(),
            window_ms: DEFAULT_WINDOW_MS,
        }
    }
}

/// One phase of the scenario, in virtual time.
#[derive(Debug, Clone)]
pub struct Phase {
    /// `baseline`, `ttl-gap`, `fault`, or `recovery`.
    pub label: &'static str,
    /// Phase start, virtual µs.
    pub from_us: u64,
    /// Phase end, virtual µs.
    pub until_us: u64,
}

/// Recovery accounting derived from the probe stream and the timeline.
#[derive(Debug, Clone, Copy)]
pub struct Recovery {
    /// When the fault plan was installed (virtual µs).
    pub fault_start_us: u64,
    /// When the last fault window closed (virtual µs).
    pub fault_clear_us: u64,
    /// Virtual µs from fault clear to the end of the first
    /// fully-successful probe round.
    pub time_to_first_success_us: u64,
    /// Whole windows between the one containing the fault clear and the
    /// first window with probe traffic and zero fault activity.
    pub windows_to_baseline: u64,
    /// Virtual µs from fault start to the start of the first
    /// back-to-baseline window — the mean-time-to-recovery the timeline
    /// measures.
    pub mttr_us: u64,
    /// Whether a back-to-baseline window was found at all.
    pub recovered: bool,
}

/// The full timeline run.
#[derive(Debug, Clone)]
pub struct TimelineRun {
    /// The configuration it ran with.
    pub config: TimelineConfig,
    /// The sampled timeline (windows + phase marks).
    pub timeline: Timeline,
    /// Phase spans, in order.
    pub phases: Vec<Phase>,
    /// Recovery accounting.
    pub recovery: Recovery,
}

fn probe_round(
    warm: &Arc<hns_core::service::Hns>,
    cold: &Arc<hns_core::service::Hns>,
    importer: &Importer,
    world: &Arc<World>,
    qc: &hns_core::query::QueryClass,
    name: &HnsName,
) -> bool {
    let mut clean = true;
    match warm.find_nsm_report(qc, name) {
        Ok((_, report)) => clean &= !report.stale_served,
        Err(_) => clean = false,
    }
    if cold.find_nsm(qc, name).is_err() {
        clean = false;
    }
    // Failover detection mirrors the chaos scenario: read through a
    // snapshot so the `faults/*` rows are never registered by the probe
    // itself.
    let failovers = || {
        world
            .metrics()
            .snapshot()
            .counter("faults", "nsm_failovers")
            .unwrap_or(0)
    };
    let before = failovers();
    if importer
        .import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, name)
        .is_err()
        || failovers() > before
    {
        clean = false;
    }
    clean
}

/// Runs the timeline scenario.
pub fn run(config: &TimelineConfig) -> TimelineRun {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    let replica = tb.deploy_binding_bind_replica(tb.hosts.agent, NsmCacheForm::Demarshalled);
    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let cold = tb.make_hns(tb.hosts.client, CacheMode::Disabled);
    let importer = Importer::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        HnsHandle::Linked(Arc::clone(&warm)),
    );
    importer.set_alternate_nsm(Some(replica));
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = hns_core::query::QueryClass::hrpc_binding();
    let world = &tb.world;
    let probe_step = SimDuration::from_ms(PROBE_MS);

    world.start_sampling(SimDuration::from_ms(config.window_ms));
    let mut phases: Vec<Phase> = Vec::new();
    let phase_open = |phases: &mut Vec<Phase>, world: &Arc<World>, label: &'static str| {
        let now = world.now().as_us();
        if let Some(last) = phases.last_mut() {
            last.until_us = now;
        }
        world.sample_mark(label);
        phases.push(Phase {
            label,
            from_us: now,
            until_us: now,
        });
    };
    // Pads virtual time forward to `target` (sampler ticks ride along).
    let pace = |world: &Arc<World>, target: SimTime| {
        let now = world.now();
        if now < target {
            world.charge(target.since(now));
        }
    };

    // Phase 1: baseline probing.
    phase_open(&mut phases, world, "baseline");
    let baseline_t0 = world.now();
    for i in 0..ROUNDS {
        pace(world, baseline_t0 + probe_step * i);
        probe_round(&warm, &cold, &importer, world, &qc, &name);
    }

    // Phase 2: quiet gap — every cache entry expires; no probes, so the
    // crossed windows stay empty.
    phase_open(&mut phases, world, "ttl-gap");
    world.charge_ms(f64::from(hns_core::META_TTL) * 1000.0 + 1_000.0);

    // Phase 3: open the fault windows (same structure and seeded jitter
    // as the chaos scenario) and probe through them.
    let mut rng = DetRng::new(config.chaos.seed);
    let mut jitter = || SimDuration::from_ms(rng.next_below(5_000));
    let base = world.now();
    let window = SimDuration::from_ms(WINDOW_SECS * 1000);
    let mut plan = FaultPlan::new();
    let mut last_heal = base;
    let mut open = |from: SimTime| {
        let until = from + window;
        if until > last_heal {
            last_heal = until;
        }
        (from, Some(until))
    };
    if config.chaos.crash {
        let (from, until) = open(base + jitter());
        plan.crash(tb.hosts.meta, from, until);
        let (from, until) = open(base + jitter());
        plan.crash(tb.hosts.nsm, from, until);
    }
    if config.chaos.partition {
        let (from, until) = open(base + jitter());
        plan.partition(tb.hosts.client, tb.hosts.meta, from, until);
    }
    if config.chaos.latency_spike {
        let (from, until) = open(base + jitter());
        plan.latency_spike(tb.hosts.client, tb.hosts.bind, from, until, SPIKE_MS);
    }
    world.set_faults(Some(plan));
    let fault_start_us = world.now().as_us();
    phase_open(&mut phases, world, "fault");
    // Step past the largest possible jitter, well inside the windows.
    world.charge_ms(6_000.0);
    let fault_t0 = world.now();
    for i in 0..ROUNDS {
        pace(world, fault_t0 + probe_step * i);
        probe_round(&warm, &cold, &importer, world, &qc, &name);
    }

    // Phase 4: heal — advance exactly to the last window's close (the
    // plan stays installed; closed windows must be inert), then probe
    // until the service is fully clean again.
    pace(world, last_heal);
    let fault_clear_us = world.now().as_us();
    phase_open(&mut phases, world, "recovery");
    let mut first_success_us = None;
    let recovery_t0 = world.now() + SimDuration::from_ms(1_000);
    for i in 0..ROUNDS {
        pace(world, recovery_t0 + probe_step * i);
        let clean = probe_round(&warm, &cold, &importer, world, &qc, &name);
        if clean && first_success_us.is_none() {
            first_success_us = Some(world.now().as_us());
        }
    }
    if let Some(last) = phases.last_mut() {
        last.until_us = world.now().as_us();
    }

    let timeline = world.finish_sampling().expect("sampler installed");

    // Recovery accounting from the timeline: the first window after the
    // fault clear with probe traffic and zero fault activity.
    let clear_window = fault_clear_us.saturating_sub(timeline.origin_us) / timeline.interval_us;
    let is_baseline_like = |w: &TimelineWindow| {
        w.counter("hns", "find_nsm_calls") > 0
            && w.counter("faults", "stale_served") == 0
            && w.counter("faults", "unreachable_calls") == 0
            && w.counter("faults", "nsm_failovers") == 0
    };
    let back_to_baseline = timeline
        .windows
        .iter()
        .find(|w| w.index > clear_window && is_baseline_like(w));
    let recovery = Recovery {
        fault_start_us,
        fault_clear_us,
        time_to_first_success_us: first_success_us
            .map(|t| t.saturating_sub(fault_clear_us))
            .unwrap_or(0),
        windows_to_baseline: back_to_baseline
            .map(|w| w.index - clear_window)
            .unwrap_or(0),
        mttr_us: back_to_baseline
            .map(|w| w.start_us.saturating_sub(fault_start_us))
            .unwrap_or(0),
        recovered: first_success_us.is_some() && back_to_baseline.is_some(),
    };

    TimelineRun {
        config: *config,
        timeline,
        phases,
        recovery,
    }
}

impl TimelineRun {
    /// The named per-window series of the export: probe traffic, fault
    /// activity, cache hit ratio, stale-serve rate, and windowed
    /// `find_nsm_us` percentiles. Ratios clamp to 0 on empty windows —
    /// no division by zero reaches the export or the sparklines.
    pub fn series(&self) -> Vec<(String, Vec<f64>)> {
        let t = &self.timeline;
        let counters = |component: &str, name: &str| -> Vec<f64> {
            t.counter_series(component, name)
                .into_iter()
                .map(|v| v as f64)
                .collect()
        };
        let mut out = vec![
            (
                "hns/find_nsm_calls".into(),
                counters("hns", "find_nsm_calls"),
            ),
            (
                "faults/stale_served".into(),
                counters("faults", "stale_served"),
            ),
            (
                "faults/unreachable_calls".into(),
                counters("faults", "unreachable_calls"),
            ),
            (
                "faults/nsm_failovers".into(),
                counters("faults", "nsm_failovers"),
            ),
        ];
        let hit_ratio = t.series(|w| {
            let hits = w.counter("hns_cache", "hits") as f64;
            let lookups = hits
                + w.counter("hns_cache", "misses") as f64
                + w.counter("hns_cache", "expired") as f64
                + w.counter("hns_cache", "negative_hits") as f64
                + w.counter("hns_cache", "coalesced") as f64
                + w.counter("hns_cache", "stale_serves") as f64;
            if lookups > 0.0 {
                hits / lookups
            } else {
                0.0
            }
        });
        out.push(("hns_cache/hit_ratio".into(), hit_ratio));
        let stale_rate = t.series(|w| {
            let calls = w.counter("hns", "find_nsm_calls") as f64;
            if calls > 0.0 {
                w.counter("faults", "stale_served") as f64 / calls
            } else {
                0.0
            }
        });
        out.push(("hns/stale_serve_rate".into(), stale_rate));
        for (suffix, pick) in [("p50", 0usize), ("p95", 1), ("p99", 2)] {
            let series = t.series(|w| {
                w.histogram("hns", "find_nsm_us")
                    .map(|h| [h.p50, h.p95, h.p99][pick] as f64)
                    .unwrap_or(0.0)
            });
            out.push((format!("hns/find_nsm_us_{suffix}"), series));
        }
        out
    }

    /// Human-readable report: the sparkline rows, the phase table, and
    /// the recovery accounting.
    pub fn render(&self) -> String {
        let c = &self.config.chaos;
        let mut out = format!(
            "E-TL — chaos timeline: crash={} partition={} latency-spike={} seed={} window={} ms\n",
            c.crash, c.partition, c.latency_spike, c.seed, self.config.window_ms
        );
        out.push_str(&self.timeline.render_series(&self.series()));
        out.push_str("phases:\n");
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<9} {:>7} ms .. {:>7} ms\n",
                p.label,
                p.from_us / 1000,
                p.until_us / 1000
            ));
        }
        let r = &self.recovery;
        out.push_str(&format!(
            "recovery: fault cleared @ {} ms; first clean probe +{} ms; \
             {} window(s) to baseline; MTTR {} ms; recovered={}\n",
            r.fault_clear_us / 1000,
            r.time_to_first_success_us / 1000,
            r.windows_to_baseline,
            r.mttr_us / 1000,
            r.recovered
        ));
        out
    }

    /// The `hns-timeline-v1` JSON document for this run.
    pub fn to_json(&self) -> String {
        let c = &self.config.chaos;
        let mut out = format!(
            "{{\"schema\": \"hns-timeline-v1\",\n  \"scenario\": \"chaos\",\n  \
             \"config\": {{\"crash\": {}, \"partition\": {}, \"latency_spike\": {}, \
             \"seed\": {}, \"window_ms\": {}}},\n  ",
            c.crash, c.partition, c.latency_spike, c.seed, self.config.window_ms
        );
        out.push_str(&self.timeline.json_fields());
        out.push_str(",\n  \"series\": {");
        for (i, (name, values)) in self.series().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: [", string(name)));
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&number(*v));
            }
            out.push(']');
        }
        out.push_str("\n  },\n  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"label\": {}, \"from_us\": {}, \"until_us\": {}}}",
                string(p.label),
                p.from_us,
                p.until_us
            ));
        }
        let r = &self.recovery;
        out.push_str(&format!(
            "],\n  \"recovery\": {{\"fault_start_us\": {}, \"fault_clear_us\": {}, \
             \"time_to_first_success_us\": {}, \"windows_to_baseline\": {}, \
             \"mttr_us\": {}, \"recovered\": {}}}\n}}",
            r.fault_start_us,
            r.fault_clear_us,
            r.time_to_first_success_us,
            r.windows_to_baseline,
            r.mttr_us,
            r.recovered
        ));
        out
    }
}

/// Validates an `hns-timeline-v1` document: schema tag, well-formed
/// contiguous windows, consistent series lengths, and — when present
/// (the chaos export always carries them) — the three phases and the
/// recovery fields.
pub fn validate(text: &str) -> Result<(), String> {
    let v = hns_core::obs::json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-timeline-v1") {
        return Err("missing or unexpected `schema`".into());
    }
    let interval = v
        .get("interval_us")
        .and_then(|i| i.as_u64())
        .ok_or("missing `interval_us`")?;
    if interval == 0 {
        return Err("`interval_us` must be positive".into());
    }
    let windows = v
        .get("windows")
        .and_then(|w| w.as_array())
        .ok_or("missing `windows` array")?;
    for (i, w) in windows.iter().enumerate() {
        if w.get("index").and_then(|x| x.as_u64()) != Some(i as u64) {
            return Err(format!("window {i}: missing or non-contiguous `index`"));
        }
        let start = w.get("start_us").and_then(|x| x.as_u64());
        let end = w.get("end_us").and_then(|x| x.as_u64());
        match (start, end) {
            (Some(s), Some(e)) if e >= s => {}
            _ => return Err(format!("window {i}: bad `start_us`/`end_us`")),
        }
        for field in ["counters", "histograms"] {
            if w.get(field).and_then(|x| x.as_array()).is_none() {
                return Err(format!("window {i}: missing `{field}` array"));
            }
        }
    }
    if let Some(series) = v.get("series") {
        for name in series.keys() {
            let len = series.get(name).and_then(|s| s.as_array()).map(|a| a.len());
            if len != Some(windows.len()) {
                return Err(format!(
                    "series `{name}`: length {:?} != {} windows",
                    len,
                    windows.len()
                ));
            }
        }
    }
    if let Some(phases) = v.get("phases").and_then(|p| p.as_array()) {
        for label in ["baseline", "fault", "recovery"] {
            if !phases
                .iter()
                .any(|p| p.get("label").and_then(|l| l.as_str()) == Some(label))
            {
                return Err(format!("no `{label}` phase in export"));
            }
        }
    }
    if let Some(recovery) = v.get("recovery") {
        for field in [
            "fault_clear_us",
            "time_to_first_success_us",
            "windows_to_baseline",
            "mttr_us",
        ] {
            if recovery.get(field).is_none() {
                return Err(format!("recovery missing `{field}`"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_in<'a>(run: &'a TimelineRun, label: &str) -> Vec<&'a TimelineWindow> {
        let phase = run
            .phases
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("missing phase {label}"));
        // Full containment: a window straddling a phase boundary (e.g.
        // the one the fault clears inside) belongs to neither phase.
        run.timeline
            .windows
            .iter()
            .filter(|w| w.start_us >= phase.from_us && w.end_us <= phase.until_us)
            .collect()
    }

    #[test]
    fn three_phases_are_visible_in_the_series() {
        let run = run(&TimelineConfig::default());
        // Baseline: probe traffic, no fault activity.
        let baseline = windows_in(&run, "baseline");
        assert!(!baseline.is_empty());
        assert!(baseline
            .iter()
            .all(|w| w.counter("faults", "stale_served") == 0));
        assert!(baseline
            .iter()
            .any(|w| w.counter("hns", "find_nsm_calls") > 0));
        // The TTL gap leaves quiet windows behind.
        assert!(
            windows_in(&run, "ttl-gap").iter().any(|w| w.is_quiet()),
            "expected quiet windows in the TTL gap"
        );
        // Fault: stale serves and unreachable calls per window.
        let fault = windows_in(&run, "fault");
        assert!(fault
            .iter()
            .any(|w| w.counter("faults", "stale_served") > 0));
        assert!(fault
            .iter()
            .any(|w| w.counter("faults", "unreachable_calls") > 0));
        // Recovery: probe traffic with no fault activity again.
        let recovery = windows_in(&run, "recovery");
        assert!(recovery
            .iter()
            .any(|w| w.counter("hns", "find_nsm_calls") > 0
                && w.counter("faults", "stale_served") == 0
                && w.counter("faults", "unreachable_calls") == 0));
    }

    #[test]
    fn recovery_accounting_reports_a_finite_mttr() {
        let run = run(&TimelineConfig::default());
        let r = &run.recovery;
        assert!(r.recovered);
        assert!(r.fault_clear_us > r.fault_start_us);
        assert!(r.time_to_first_success_us > 0);
        assert!(r.mttr_us > 0);
        // MTTR spans at least the fault windows themselves.
        assert!(r.mttr_us >= r.fault_clear_us - r.fault_start_us);
    }

    #[test]
    fn windowed_percentiles_differ_from_cumulative_ones() {
        let run = run(&TimelineConfig::default());
        // The fault phase's warm path answers from stale cache (fast),
        // so its windowed p95 must sit below the baseline cold-walk p95
        // — invisible in a cumulative histogram.
        let p95 = |windows: &[&TimelineWindow]| {
            windows
                .iter()
                .filter_map(|w| w.histogram("hns", "find_nsm_us"))
                .map(|h| h.p95)
                .max()
                .unwrap_or(0)
        };
        let baseline = p95(&windows_in(&run, "baseline"));
        let fault = p95(&windows_in(&run, "fault"));
        assert!(baseline > 0 && fault > 0);
        assert!(
            fault < baseline,
            "fault-phase windowed p95 ({fault}) should drop below baseline ({baseline})"
        );
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let config = TimelineConfig::default();
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn json_export_validates_and_carries_series() {
        let run = run(&TimelineConfig::default());
        let json = run.to_json();
        validate(&json).expect("timeline JSON validates");
        let v = hns_core::obs::json::parse(&json).expect("parses");
        let windows = v.get("windows").unwrap().as_array().unwrap().len();
        assert!(windows >= 10);
        let series = v.get("series").unwrap();
        for name in [
            "faults/stale_served",
            "hns_cache/hit_ratio",
            "hns/find_nsm_us_p95",
            "hns/stale_serve_rate",
        ] {
            let s = series.get(name).unwrap_or_else(|| panic!("series {name}"));
            assert_eq!(s.as_array().unwrap().len(), windows);
        }
        assert_eq!(
            v.get("recovery")
                .and_then(|r| r.get("recovered"))
                .and_then(|x| x.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        assert!(validate("{\"schema\": \"hns-timeline-v1\"}").is_err());
        assert!(
            validate("{\"schema\": \"hns-timeline-v1\", \"interval_us\": 0, \"windows\": []}")
                .is_err()
        );
        assert!(validate(
            "{\"schema\": \"hns-timeline-v1\", \"interval_us\": 1000, \"windows\": [], \
             \"series\": {\"x\": [1]}}"
        )
        .is_err());
        assert!(validate(
            "{\"schema\": \"hns-timeline-v1\", \"interval_us\": 1000, \"windows\": []}"
        )
        .is_ok());
    }

    #[test]
    fn render_prints_the_fault_and_recovery_curve() {
        let run = run(&TimelineConfig::default());
        let r = run.render();
        assert!(r.contains("faults/stale_served"), "{r}");
        assert!(r.contains("hns_cache/hit_ratio"), "{r}");
        assert!(r.contains("recovery: fault cleared"), "{r}");
        assert!(r.contains("MTTR"), "{r}");
        assert!(!r.contains("NaN"), "{r}");
    }
}

//! E7 — Figure 2.1: HNS query processing, as an executable trace.
//!
//! Two successive queries through identical client code: one name lives in
//! BIND, the other in the Clearinghouse; the client calls whichever NSM the
//! HNS designates without knowing which name service answers.

use std::sync::Arc;

use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::HnsName;
use nsms::harness::{
    Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, PRINT_SERVICE, PRINT_SERVICE_PROGRAM,
};
use nsms::nsm_cache::NsmCacheForm;
use nsms::Importer;

/// Runs the walkthrough and returns the rendered trace.
pub fn run() -> String {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let importer = Importer::new(Arc::clone(&tb.net), tb.hosts.client, HnsHandle::Linked(hns));

    tb.world.tracer.set_enabled(true);
    tb.world.trace(
        None,
        simnet::trace::TraceKind::Info,
        "--- query 1: a BIND name ---",
    );
    let bind_name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    importer
        .import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &bind_name)
        .expect("BIND import");

    tb.world.trace(
        None,
        simnet::trace::TraceKind::Info,
        "--- query 2: a Clearinghouse name ---",
    );
    let ch_name = HnsName::new(tb.ctx_ch(), "printserver:cs:uw").expect("name");
    importer
        .import(PRINT_SERVICE, PRINT_SERVICE_PROGRAM, &ch_name)
        .expect("CH import");
    tb.world.tracer.set_enabled(false);

    format!(
        "Figure 2.1 — HNS query processing (executable trace)\n\
         Client -> HNS (FindNSM) -> designated NSM -> underlying name service\n\n{}",
        tb.world.tracer.render_tree()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shows_both_name_services() {
        let trace = run();
        assert!(trace.contains("FindNSM"), "missing FindNSM:\n{trace}");
        assert!(trace.contains("public-bind"), "missing BIND:\n{trace}");
        assert!(trace.contains("clearinghouse"), "missing CH:\n{trace}");
        assert!(
            trace.contains("nsm-hrpcbinding-bind"),
            "missing BIND NSM:\n{trace}"
        );
        assert!(
            trace.contains("nsm-hrpcbinding-ch"),
            "missing CH NSM:\n{trace}"
        );
    }

    #[test]
    fn queries_flow_client_hns_nsm_service() {
        let trace = run();
        // Within query 1, FindNSM precedes the NSM which precedes the
        // public BIND's lookup for the portmapper phase.
        let find = trace.find("FindNSM(query class hrpcbinding").expect("find");
        let nsm = trace.find("nsm-hrpcbinding-bind: query").expect("nsm");
        assert!(find < nsm, "FindNSM must precede the NSM call");
    }
}

//! E-C — chaos: graceful degradation under injected faults.
//!
//! Installs a seeded [`FaultPlan`] on the testbed — the meta server and
//! the primary NSM host crash, the client ↔ meta link partitions, the
//! client ↔ public-BIND link takes a latency spike — and walks the same
//! warm / cold / `Import` trio through three phases:
//!
//! 1. **baseline** — faults scheduled but not yet active; every path
//!    succeeds and the warm cache fills.
//! 2. **fault** — virtual time is advanced past the cache TTL and into
//!    the fault windows. The warm `FindNSM` keeps answering from expired
//!    cache entries (serve-stale, paper §4, marked `stale_served`), the
//!    cold `FindNSM` fails fast with a typed `HostUnreachable`, and
//!    `Import` fails over from the crashed primary binding NSM to a
//!    replica on another host.
//! 3. **recovery** — time is advanced past every window; all three paths
//!    succeed again with no stale serves and no failovers, proving
//!    nothing got permanently stuck.
//!
//! Everything runs in virtual time under a seeded plan, so the rendered
//! report and the `hns-chaos-v1` JSON export are byte-identical across
//! runs with the same configuration.

use std::sync::Arc;

use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::error::HnsError;
use hns_core::name::HnsName;
use hns_core::obs::MetricsSnapshot;
use hrpc::RpcError;
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::Importer;
use simnet::faults::FaultPlan;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

use crate::cells::PlainTable;

/// Which faults the chaos scenario injects (the `experiments chaos`
/// flags).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Crash the meta server and the primary NSM host.
    pub crash: bool,
    /// Partition the client ↔ meta link.
    pub partition: bool,
    /// Add a latency spike to the client ↔ public-BIND link.
    pub latency_spike: bool,
    /// Seed for the window-jitter RNG.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            crash: true,
            partition: true,
            latency_spike: true,
            seed: 42,
        }
    }
}

/// One operation observed during the scenario.
#[derive(Debug, Clone)]
pub struct ChaosEvent {
    /// `baseline`, `fault`, or `recovery`.
    pub phase: &'static str,
    /// Which operation ran.
    pub label: &'static str,
    /// What happened (`ok`, `ok (stale)`, `ok (failover)`, or an error).
    pub outcome: String,
    /// Virtual time the operation took.
    pub took_us: u64,
}

/// Aggregate outcomes the acceptance assertions read.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOutcomes {
    /// Queries answered from expired cache entries (`faults/stale_served`).
    pub stale_served: u64,
    /// Calls that gave up with `HostUnreachable` (`faults/unreachable_calls`).
    pub host_unreachable: u64,
    /// Imports served by the alternate NSM (`faults/nsm_failovers`).
    pub nsm_failovers: u64,
    /// Every recovery-phase operation succeeded without stale serves.
    pub recovered: bool,
}

/// The full chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The fault selection it ran with.
    pub config: ChaosConfig,
    /// Per-operation observations, in execution order.
    pub events: Vec<ChaosEvent>,
    /// Aggregate outcomes.
    pub outcomes: ChaosOutcomes,
    /// The unified metrics snapshot taken after recovery.
    pub snapshot: MetricsSnapshot,
}

/// The latency added to the client ↔ public-BIND link, in milliseconds.
pub const SPIKE_MS: f64 = 250.0;
/// Length of every fault window, in virtual seconds.
pub const WINDOW_SECS: u64 = 120;

fn record(
    world: &simnet::World,
    events: &mut Vec<ChaosEvent>,
    phase: &'static str,
    label: &'static str,
    op: impl FnOnce() -> Result<String, HnsError>,
) {
    let t0 = world.now();
    let outcome = match op() {
        Ok(tag) => tag,
        Err(HnsError::Rpc(RpcError::HostUnreachable { host, attempts })) => {
            format!("HostUnreachable({host}, {attempts} attempts)")
        }
        Err(other) => format!("error: {other}"),
    };
    events.push(ChaosEvent {
        phase,
        label,
        outcome,
        took_us: world.now().since(t0).as_us(),
    });
}

/// Runs the chaos scenario.
pub fn run(config: &ChaosConfig) -> ChaosRun {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    let replica = tb.deploy_binding_bind_replica(tb.hosts.agent, NsmCacheForm::Demarshalled);
    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let cold = tb.make_hns(tb.hosts.client, CacheMode::Disabled);
    let importer = Importer::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        HnsHandle::Linked(Arc::clone(&warm)),
    );
    importer.set_alternate_nsm(Some(replica));
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = hns_core::query::QueryClass::hrpc_binding();
    let world = &tb.world;

    let warm_op = |warm: &Arc<hns_core::service::Hns>| {
        let (_, report) = warm.find_nsm_report(&qc, &name)?;
        Ok(if report.stale_served {
            "ok (stale)".to_string()
        } else {
            "ok".to_string()
        })
    };
    // Read through a snapshot: asking the registry for the counter would
    // *register* it, and `faults/*` rows must only appear once a fault
    // actually fires.
    let failovers = || {
        world
            .metrics()
            .snapshot()
            .counter("faults", "nsm_failovers")
            .unwrap_or(0)
    };
    let import_op = |importer: &Importer| {
        let before = failovers();
        importer.import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &name)?;
        let after = failovers();
        Ok(if after > before {
            "ok (failover)".to_string()
        } else {
            "ok".to_string()
        })
    };

    let mut events = Vec::new();
    record(world, &mut events, "baseline", "warm FindNSM", || {
        warm_op(&warm)
    });
    record(world, &mut events, "baseline", "cold FindNSM", || {
        cold.find_nsm(&qc, &name).map(|_| "ok".to_string())
    });
    record(world, &mut events, "baseline", "Import", || {
        import_op(&importer)
    });

    // Let every cache entry expire, then open the fault windows with a
    // little seeded jitter so different seeds exercise different window
    // alignments (all still in virtual time — fully deterministic).
    world.charge_ms(f64::from(hns_core::META_TTL) * 1000.0 + 1_000.0);
    let mut rng = DetRng::new(config.seed);
    let mut jitter = || SimDuration::from_ms(rng.next_below(5_000));
    let base = world.now();
    let window = SimDuration::from_ms(WINDOW_SECS * 1000);
    let mut plan = FaultPlan::new();
    let mut last_heal = base;
    let mut open = |from: SimTime| {
        let until = from + window;
        if until > last_heal {
            last_heal = until;
        }
        (from, Some(until))
    };
    if config.crash {
        let (from, until) = open(base + jitter());
        plan.crash(tb.hosts.meta, from, until);
        let (from, until) = open(base + jitter());
        plan.crash(tb.hosts.nsm, from, until);
    }
    if config.partition {
        let (from, until) = open(base + jitter());
        plan.partition(tb.hosts.client, tb.hosts.meta, from, until);
    }
    if config.latency_spike {
        let (from, until) = open(base + jitter());
        plan.latency_spike(tb.hosts.client, tb.hosts.bind, from, until, SPIKE_MS);
    }
    world.set_faults(Some(plan));
    // Step into the windows: past the largest possible jitter plus a
    // margin, but well inside the 120 s windows.
    world.charge_ms(6_000.0);

    record(world, &mut events, "fault", "warm FindNSM", || {
        warm_op(&warm)
    });
    record(world, &mut events, "fault", "cold FindNSM", || {
        cold.find_nsm(&qc, &name).map(|_| "ok".to_string())
    });
    record(world, &mut events, "fault", "Import", || {
        import_op(&importer)
    });

    // Heal: advance past every window (the plan stays installed — closed
    // windows must be inert on their own).
    world.charge(last_heal.since(world.now()) + SimDuration::from_ms(1_000));

    record(world, &mut events, "recovery", "warm FindNSM", || {
        warm_op(&warm)
    });
    record(world, &mut events, "recovery", "cold FindNSM", || {
        cold.find_nsm(&qc, &name).map(|_| "ok".to_string())
    });
    record(world, &mut events, "recovery", "Import", || {
        import_op(&importer)
    });

    // Flush every registered snapshot-time cache export. Disabled
    // caches stay silent, so the cold (Disabled) instance no longer
    // clobbers the warm instance's `hns_cache` rows with zeros.
    world.export_all_caches();
    let snapshot = world.metrics().snapshot();
    let recovered = events
        .iter()
        .filter(|e| e.phase == "recovery")
        .all(|e| e.outcome == "ok");
    ChaosRun {
        config: *config,
        events,
        outcomes: ChaosOutcomes {
            stale_served: snapshot.counter("faults", "stale_served").unwrap_or(0),
            host_unreachable: snapshot.counter("faults", "unreachable_calls").unwrap_or(0),
            nsm_failovers: snapshot.counter("faults", "nsm_failovers").unwrap_or(0),
            recovered,
        },
        snapshot,
    }
}

impl ChaosRun {
    /// Human-readable report: the event table, the outcome summary, and
    /// the metrics snapshot.
    pub fn render(&self) -> String {
        let mut table = PlainTable::new(
            format!(
                "E-C — chaos: crash={} partition={} latency-spike={} seed={}",
                self.config.crash,
                self.config.partition,
                self.config.latency_spike,
                self.config.seed
            ),
            vec!["phase", "operation", "outcome", "took (ms)"],
        );
        for e in &self.events {
            table.push_row(vec![
                e.phase.to_string(),
                e.label.to_string(),
                e.outcome.clone(),
                format!("{:.3}", e.took_us as f64 / 1000.0),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "\nstale served: {}  unreachable calls: {}  NSM failovers: {}  recovered: {}\n\n",
            self.outcomes.stale_served,
            self.outcomes.host_unreachable,
            self.outcomes.nsm_failovers,
            self.outcomes.recovered
        ));
        out.push_str(&self.snapshot.render());
        out
    }

    /// The `hns-chaos-v1` JSON document for this run.
    pub fn to_json(&self) -> String {
        use hns_core::obs::json::string;
        let mut out = format!(
            "{{\"schema\": \"hns-chaos-v1\", \"config\": {{\"crash\": {}, \
             \"partition\": {}, \"latency_spike\": {}, \"seed\": {}}}, \"events\": [",
            self.config.crash, self.config.partition, self.config.latency_spike, self.config.seed
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"phase\": {}, \"label\": {}, \"outcome\": {}, \"took_us\": {}}}",
                string(e.phase),
                string(e.label),
                string(&e.outcome),
                e.took_us
            ));
        }
        out.push_str(&format!(
            "], \"outcomes\": {{\"stale_served\": {}, \"host_unreachable\": {}, \
             \"nsm_failovers\": {}, \"recovered\": {}}}, \"metrics\": ",
            self.outcomes.stale_served,
            self.outcomes.host_unreachable,
            self.outcomes.nsm_failovers,
            self.outcomes.recovered
        ));
        out.push_str(&self.snapshot.to_json());
        out.push('}');
        out
    }
}

/// Validates an `hns-chaos-v1` document: schema tag, the three phases'
/// events, and the outcome fields the acceptance assertions read.
pub fn validate(text: &str) -> Result<(), String> {
    let v = hns_core::obs::json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-chaos-v1") {
        return Err("missing or unexpected `schema`".into());
    }
    let events = v
        .get("events")
        .and_then(|e| e.as_array())
        .ok_or("missing `events` array")?;
    if events.is_empty() {
        return Err("no events in export".into());
    }
    for phase in ["baseline", "fault", "recovery"] {
        if !events
            .iter()
            .any(|e| e.get("phase").and_then(|p| p.as_str()) == Some(phase))
        {
            return Err(format!("no `{phase}` events in export"));
        }
    }
    let outcomes = v.get("outcomes").ok_or("missing `outcomes`")?;
    for field in [
        "stale_served",
        "host_unreachable",
        "nsm_failovers",
        "recovered",
    ] {
        if outcomes.get(field).is_none() {
            return Err(format!("outcomes missing `{field}`"));
        }
    }
    if v.get("metrics").is_none() {
        return Err("missing `metrics` snapshot".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_degrades_gracefully_and_recovers() {
        let run = run(&ChaosConfig::default());
        let by = |phase: &str, label: &str| {
            run.events
                .iter()
                .find(|e| e.phase == phase && e.label == label)
                .unwrap_or_else(|| panic!("missing event {phase}/{label}"))
                .outcome
                .clone()
        };
        for label in ["warm FindNSM", "cold FindNSM", "Import"] {
            assert_eq!(by("baseline", label), "ok", "{label}");
            assert_eq!(by("recovery", label), "ok", "{label}");
        }
        assert_eq!(by("fault", "warm FindNSM"), "ok (stale)");
        assert!(
            by("fault", "cold FindNSM").starts_with("HostUnreachable"),
            "{}",
            by("fault", "cold FindNSM")
        );
        assert_eq!(by("fault", "Import"), "ok (failover)");
        assert!(run.outcomes.stale_served > 0);
        assert!(run.outcomes.host_unreachable > 0);
        assert_eq!(run.outcomes.nsm_failovers, 1);
        assert!(run.outcomes.recovered);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let config = ChaosConfig::default();
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn json_export_parses_and_validates() {
        let run = run(&ChaosConfig::default());
        let json = run.to_json();
        validate(&json).expect("chaos JSON validates");
        let v = hns_core::obs::json::parse(&json).expect("parses");
        assert_eq!(
            v.get("outcomes")
                .and_then(|o| o.get("recovered"))
                .and_then(|r| r.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn partition_alone_still_blocks_the_cold_path() {
        let run = run(&ChaosConfig {
            crash: false,
            latency_spike: false,
            ..ChaosConfig::default()
        });
        let fault_cold = run
            .events
            .iter()
            .find(|e| e.phase == "fault" && e.label == "cold FindNSM")
            .expect("event");
        assert!(
            fault_cold.outcome.starts_with("HostUnreachable"),
            "{}",
            fault_cold.outcome
        );
        // The primary NSM host is up, so Import needs no failover.
        assert_eq!(run.outcomes.nsm_failovers, 0);
        assert!(run.outcomes.recovered);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        assert!(validate("{\"schema\": \"hns-chaos-v1\", \"events\": []}").is_err());
    }
}

//! E2 — Table 3.2: the effect of marshalling costs on cache access speed
//! (msec), plus the paper's "standard BIND routines" footnote.

use hns_core::cache::{CacheMode, HnsCache, MetaKey};
use simnet::World;
use wire::Value;

use crate::cells::{Cell, PaperTable};

/// Paper values: rows are 1 and 6 resource records; columns are cache
/// miss, marshalled hit, demarshalled hit.
pub const PAPER: [[f64; 3]; 2] = [[20.23, 11.11, 0.83], [32.34, 26.17, 1.22]];

/// Paper values for the hand-written standard routines at 1 and 6 records.
pub const PAPER_STD: [f64; 2] = [0.65, 2.6];

fn entry_value(rrs: usize) -> Value {
    Value::List(
        (0..rrs)
            .map(|i| Value::str(format!("record payload number {i}")))
            .collect(),
    )
}

fn key(rrs: usize) -> MetaKey {
    MetaKey::host_addr("BIND", &format!("host-{rrs}"))
}

/// Measures one cache hit through the real cache in the given mode.
fn measure_hit(world: &World, mode: CacheMode, rrs: usize) -> f64 {
    let cache = HnsCache::new(mode);
    cache.insert(world, key(rrs), &entry_value(rrs), rrs, 600);
    let (got, took, _) = world.measure(|| cache.get(world, &key(rrs)));
    assert!(got.is_some(), "warm entry must hit");
    took.as_ms_f64()
}

/// Runs the experiment and returns the comparison table.
///
/// The miss column is the marshalling component charged by the miss path
/// (the generated request-marshal + response-demarshal the HRPC-to-BIND
/// interface pays per lookup); hits are measured through the real cache.
pub fn run() -> PaperTable {
    let world = World::paper();
    let mut table = PaperTable::new(
        "Table 3.2 — marshalling costs vs cache access speed (ms)",
        vec![
            "Cache miss",
            "Marshalled cache hit",
            "Demarshalled cache hit",
        ],
    );
    for (row, &rrs) in [1usize, 6].iter().enumerate() {
        let miss = world.costs.generated_miss(rrs);
        let marshalled = measure_hit(&world, CacheMode::Marshalled, rrs);
        let demarshalled = measure_hit(&world, CacheMode::Demarshalled, rrs);
        table.push_row(
            format!("{rrs} resource record(s) per name"),
            vec![
                Cell::new(PAPER[row][0], miss),
                Cell::new(PAPER[row][1], marshalled),
                Cell::new(PAPER[row][2], demarshalled),
            ],
        );
    }
    table
}

/// The standard-routines comparison (paper footnote to Table 3.2).
pub fn run_standard_routines() -> PaperTable {
    let world = World::paper();
    let mut table = PaperTable::new(
        "Standard BIND library marshalling routines (ms)",
        vec!["hand-written marshal"],
    );
    for (row, &rrs) in [1usize, 6].iter().enumerate() {
        let measured = world.costs.fast_marshal(rrs);
        table.push_row(
            format!("{rrs} resource record(s)"),
            vec![Cell::new(PAPER_STD[row], measured)],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_2_reproduces_closely() {
        let table = run();
        // The demarshalled-hit cells carry the fixed probe cost (0.05 ms)
        // on top of Table 3.2's access cost, ~6% at the sub-millisecond
        // scale.
        assert!(
            table.worst_error_pct() < 8.0,
            "worst cell error {:.1}%\n{}",
            table.worst_error_pct(),
            table.render()
        );
    }

    #[test]
    fn demarshalled_caching_is_dramatically_faster() {
        // "by simply changing the cache to keep demarshalled information,
        // the times decreased dramatically".
        let table = run();
        for (label, cells) in &table.rows {
            assert!(
                cells[2].measured * 8.0 < cells[1].measured,
                "{label}: demarshalled {} vs marshalled {}",
                cells[2].measured,
                cells[1].measured
            );
        }
    }

    #[test]
    fn standard_routines_match_paper() {
        let table = run_standard_routines();
        assert!(table.worst_error_pct() < 2.0, "{}", table.render());
    }

    #[test]
    fn generated_marshalling_dwarfs_standard() {
        // The paper's surprise: generated ~20 ms vs standard 0.65 ms.
        let world = World::paper();
        assert!(world.costs.generated_miss(1) > 20.0 * world.costs.fast_marshal(1));
    }
}

//! E6 — equation (1): when is remote placement of the HNS or the NSMs
//! preferable to linking them locally?

use hns_core::analysis::Eq1Inputs;
use hns_core::cache::CacheMode;
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::{Cell, PaperTable, PlainTable};
use crate::scenario::{deploy, Arrangement, CacheState};

/// Results of the equation-(1) experiment.
#[derive(Debug)]
pub struct Eq1Results {
    /// Thresholds computed from the paper's inputs and from our measured
    /// Table 3.1 cells.
    pub thresholds: PaperTable,
    /// A sweep over the additional remote hit fraction `q`.
    pub sweep: PlainTable,
}

/// Runs the analysis.
pub fn run() -> Eq1Results {
    // Paper inputs: HNS placement uses row 5's hit/miss (261/547), NSM
    // placement row 4's C/B (147/225); C(remote call) = 33.
    let paper_hns = Eq1Inputs {
        remote_call_ms: 33.0,
        hit_ms: 261.0,
        miss_ms: 547.0,
    };
    let paper_nsm = Eq1Inputs {
        remote_call_ms: 33.0,
        hit_ms: 147.0,
        miss_ms: 225.0,
    };

    // Our measured equivalents, from the same cells of our Table 3.1.
    let row5 = deploy(
        Arrangement::AllRemote,
        NsmCacheForm::Marshalled,
        CacheMode::Marshalled,
    );
    let measured_hns = Eq1Inputs {
        remote_call_ms: 33.0,
        hit_ms: row5.measure(CacheState::HnsHit),
        miss_ms: row5.measure(CacheState::Miss),
    };
    let row4 = deploy(
        Arrangement::RemoteNsms,
        NsmCacheForm::Marshalled,
        CacheMode::Marshalled,
    );
    let measured_nsm = Eq1Inputs {
        remote_call_ms: 33.0,
        hit_ms: row4.measure(CacheState::BothHit),
        miss_ms: row4.measure(CacheState::HnsHit),
    };

    let mut thresholds = PaperTable::new(
        "Equation (1): required additional remote hit fraction q (percent)",
        vec!["threshold"],
    );
    thresholds.push_row(
        "remote HNS (paper: 11%)",
        vec![Cell::new(
            paper_hns.remote_threshold().unwrap_or(f64::NAN) * 100.0,
            measured_hns.remote_threshold().unwrap_or(f64::NAN) * 100.0,
        )],
    );
    thresholds.push_row(
        "remote NSMs (paper: 42%)",
        vec![Cell::new(
            paper_nsm.remote_threshold().unwrap_or(f64::NAN) * 100.0,
            measured_nsm.remote_threshold().unwrap_or(f64::NAN) * 100.0,
        )],
    );

    // Sweep q and report the preferred placement at base hit rate p = 0.3.
    let p = 0.3;
    let mut sweep = PlainTable::new(
        "Placement preference vs additional remote hit fraction q (p = 0.30)",
        vec![
            "q",
            "HNS: local (ms)",
            "HNS: remote (ms)",
            "HNS prefers",
            "NSM prefers",
        ],
    );
    for step in 0..=10 {
        let q = step as f64 * 0.05;
        let local = measured_hns.local_cost(p);
        let remote = measured_hns.remote_cost(p, q);
        let nsm_pref = if measured_nsm.remote_cost(p, q) < measured_nsm.local_cost(p) {
            "remote"
        } else {
            "local"
        };
        sweep.push_row(vec![
            format!("{q:.2}"),
            format!("{local:.0}"),
            format!("{remote:.0}"),
            if remote < local { "remote" } else { "local" }.to_string(),
            nsm_pref.to_string(),
        ]);
    }
    Eq1Results { thresholds, sweep }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_thresholds_track_paper() {
        let results = run();
        // The HNS threshold is small (~11%), the NSM threshold large
        // (~42%): the paper's qualitative conclusion. Allow generous
        // headroom on the absolute numbers.
        let hns_q = results.thresholds.rows[0].1[0].measured;
        let nsm_q = results.thresholds.rows[1].1[0].measured;
        assert!((5.0..25.0).contains(&hns_q), "HNS threshold {hns_q}%");
        assert!((30.0..70.0).contains(&nsm_q), "NSM threshold {nsm_q}%");
        assert!(hns_q * 2.0 < nsm_q, "HNS must be easier to justify remote");
    }

    #[test]
    fn sweep_flips_preference_once() {
        let results = run();
        let prefs: Vec<&str> = results
            .sweep
            .rows
            .iter()
            .map(|row| row[3].as_str())
            .collect();
        let flips = prefs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips <= 1, "preference should be monotone: {prefs:?}");
        assert_eq!(prefs.first(), Some(&"local"), "q=0 must prefer local");
    }
}

//! E-S — the million-name scale-out experiment.
//!
//! Builds cell-sharded worlds ([`crate::scenario::build_cell_world`])
//! at growing name counts and measures, per scale point:
//!
//! - **QPS** — virtual-time queries per second through a recursive
//!   resolver chasing the root's zone-delegation referrals into the
//!   per-cell meta servers, over a seeded hot/cold name sample.
//! - **resident bytes per name** — what the compact zone store
//!   (interned owner keys, `Arc`-shared record bodies) actually holds,
//!   against the naive per-record-copy accounting a `String`-keyed
//!   store would pay.
//! - **cache hit ratio** — the resolver's TTL cache over the sample.
//! - **preload bytes shipped** — a cold client's full AXFR of one
//!   cell's meta zone versus the IXFR-style incremental preload the
//!   same (now warm) client performs after a handful of meta updates.
//!
//! Everything runs in virtual time under a seeded plan, so the
//! rendered report and the `hns-scale-v1` JSON export are
//! byte-identical across runs with the same configuration.

use std::sync::Arc;

use bindns::name::DomainName;
use bindns::rr::{RType, ResourceRecord};
use bindns::update::UpdateOp;
use bindns::{HrpcResolver, RecursiveResolver};
use hns_core::cache::CacheMode;
use hns_core::service::Hns;
use hns_core::PreloadMode;
use simnet::rng::DetRng;

use crate::cells::CellPlan;
use crate::scenario::{build_cell_world, cell_name, cell_origin};

/// Workload shape for `experiments scale`.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Name counts to sweep, in order.
    pub names: Vec<usize>,
    /// Queries issued per scale point.
    pub queries: usize,
    /// Distinct names drawn into the query sample.
    pub sample: usize,
    /// Hot subset of the sample that takes 70% of the queries.
    pub hot: usize,
    /// Meta updates applied between the full and incremental preloads.
    pub updates: usize,
    /// Seed for world payloads and the query sample.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            names: vec![10_000, 100_000, 1_000_000],
            queries: 4096,
            sample: 512,
            hot: 64,
            updates: 16,
            seed: 1987,
        }
    }
}

/// What one cold-then-warm preload pair against a cell's meta server
/// shipped.
#[derive(Debug, Clone, Copy)]
pub struct PreloadPair {
    /// Bytes the cold client's full AXFR shipped.
    pub full_bytes: usize,
    /// Records in the full transfer.
    pub full_records: usize,
    /// Zone serial after the full transfer.
    pub full_serial: u32,
    /// Meta updates applied before the second preload.
    pub updates: usize,
    /// Bytes the warm client's incremental preload shipped.
    pub incremental_bytes: usize,
    /// Records the incremental preload re-seeded.
    pub incremental_records: usize,
    /// Zone serial after the incremental transfer.
    pub incremental_serial: u32,
    /// Mode the warm preload ran in (must be `Incremental`).
    pub incremental_mode: PreloadMode,
}

/// Measurements at one name count.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Registered names in this world.
    pub names: usize,
    /// Administrative cells (per-cell meta servers).
    pub cells: usize,
    /// Context directories across the delegation tree.
    pub contexts: usize,
    /// Total resource records (names + contexts + NSM maps + glue).
    pub records: usize,
    /// Bytes resident in the compact zone stores.
    pub resident_bytes: usize,
    /// Bytes under naive per-record-copy accounting.
    pub naive_bytes: usize,
    /// Queries issued.
    pub queries: usize,
    /// Virtual seconds the query phase took.
    pub virtual_secs: f64,
    /// Queries per virtual second.
    pub qps: f64,
    /// Resolver cache hits over the query phase.
    pub cache_hits: u64,
    /// Resolver cache misses over the query phase.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub hit_ratio: f64,
    /// The cold/warm preload comparison against cell 0.
    pub preload: PreloadPair,
}

impl ScalePoint {
    /// Resident bytes per registered name.
    pub fn resident_per_name(&self) -> f64 {
        self.resident_bytes as f64 / self.names as f64
    }

    /// Naive bytes per registered name.
    pub fn naive_per_name(&self) -> f64 {
        self.naive_bytes as f64 / self.names as f64
    }
}

/// The full scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// The workload it ran with.
    pub config: ScaleConfig,
    /// One point per configured name count, in order.
    pub points: Vec<ScalePoint>,
}

/// Runs the query phase: a seeded hot/cold sample resolved through the
/// delegation tree, measured in virtual time.
fn query_phase(
    cw: &crate::scenario::CellWorld,
    config: &ScaleConfig,
    rng: &mut DetRng,
) -> (f64, u64, u64) {
    let resolver = RecursiveResolver::new(Arc::clone(&cw.net), cw.client, cw.root.std_binding);
    let sample: Vec<DomainName> = (0..config.sample)
        .map(|_| {
            let (cell, index) = cw
                .plan
                .locate(rng.next_below(cw.plan.names as u64) as usize);
            cell_name(cell, index)
        })
        .collect();
    let hot = config.hot.min(sample.len());
    let (_, took, _) = cw.world.measure(|| {
        for _ in 0..config.queries {
            let name = if rng.chance(0.7) {
                &sample[rng.next_below(hot as u64) as usize]
            } else {
                &sample[rng.next_below(sample.len() as u64) as usize]
            };
            resolver.query(name, RType::Unspec).expect("scale query");
        }
    });
    let stats = resolver.cache_stats();
    (took.as_ms_f64() / 1000.0, stats.hits, stats.misses)
}

/// Runs the preload phase against cell 0: cold full AXFR, a few meta
/// updates, then the warm client's incremental preload.
fn preload_phase(
    cw: &crate::scenario::CellWorld,
    config: &ScaleConfig,
    rng: &mut DetRng,
) -> PreloadPair {
    let hns = Hns::new(
        Arc::clone(&cw.net),
        cw.client,
        cw.cells[0].hrpc_binding,
        cell_origin(0),
        CacheMode::Demarshalled,
    );
    let full = hns.preload().expect("cold preload");
    assert_eq!(full.mode, PreloadMode::Full, "cold client transfers fully");

    let updater = HrpcResolver::new(Arc::clone(&cw.net), cw.client, cw.cells[0].hrpc_binding);
    let cell0_names = cw.plan.names_in_cell(0);
    for u in 0..config.updates {
        let name = cell_name(0, rng.next_below(cell0_names as u64) as usize);
        updater
            .update(&UpdateOp::Replace {
                name: name.clone(),
                rtype: RType::Unspec,
                records: vec![ResourceRecord::unspec(
                    name,
                    600,
                    format!("rebound=generation-{u}").into_bytes(),
                )],
            })
            .expect("meta update");
    }
    let incr = hns.preload().expect("warm preload");

    PreloadPair {
        full_bytes: full.bytes,
        full_records: full.records,
        full_serial: full.serial,
        updates: config.updates,
        incremental_bytes: incr.bytes,
        incremental_records: incr.records,
        incremental_serial: incr.serial,
        incremental_mode: incr.mode,
    }
}

/// Runs the scale sweep.
pub fn run(config: &ScaleConfig) -> ScaleRun {
    let mut master = DetRng::new(config.seed);
    let mut points = Vec::with_capacity(config.names.len());
    for &names in &config.names {
        let mut rng = master.fork();
        let plan = CellPlan::for_names(names);
        let cw = build_cell_world(&plan, rng.next_u64());

        let resident_bytes = cw.resident_bytes();
        let naive_bytes = cw.naive_bytes();
        let metrics = cw.world.metrics();
        metrics.set_counter("zone_store", "resident_bytes", resident_bytes as u64);
        metrics.set_counter("zone_store", "naive_bytes", naive_bytes as u64);
        metrics.set_counter("interner", "strings", intern::global().len() as u64);
        metrics.set_counter(
            "interner",
            "resident_str_bytes",
            intern::global().resident_str_bytes() as u64,
        );

        let (virtual_secs, cache_hits, cache_misses) = query_phase(&cw, config, &mut rng);
        let preload = preload_phase(&cw, config, &mut rng);

        points.push(ScalePoint {
            names,
            cells: plan.cells,
            contexts: plan.total_contexts(),
            records: cw.records,
            resident_bytes,
            naive_bytes,
            queries: config.queries,
            virtual_secs,
            qps: config.queries as f64 / virtual_secs,
            cache_hits,
            cache_misses,
            hit_ratio: cache_hits as f64 / (cache_hits + cache_misses) as f64,
            preload,
        });
    }
    ScaleRun {
        config: config.clone(),
        points,
    }
}

impl ScaleRun {
    /// Human-readable report: one row per scale point plus the preload
    /// comparison.
    pub fn render(&self) -> String {
        let c = &self.config;
        let mut table = crate::cells::PlainTable::new(
            format!(
                "E-S — scale: names={:?} queries={} sample={} hot={} updates={} seed={}",
                c.names, c.queries, c.sample, c.hot, c.updates, c.seed
            ),
            vec![
                "names",
                "cells",
                "contexts",
                "records",
                "resident B/name",
                "naive B/name",
                "qps",
                "hit ratio",
                "preload full B",
                "preload incr B",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.names.to_string(),
                p.cells.to_string(),
                p.contexts.to_string(),
                p.records.to_string(),
                format!("{:.1}", p.resident_per_name()),
                format!("{:.1}", p.naive_per_name()),
                format!("{:.1}", p.qps),
                format!("{:.3}", p.hit_ratio),
                p.preload.full_bytes.to_string(),
                p.preload.incremental_bytes.to_string(),
            ]);
        }
        let mut out = table.render();
        for p in &self.points {
            out.push_str(&format!(
                "{} names: compact store holds {:.1} B/name vs {:.1} naive ({:.1}x); \
                 warm preload shipped {} B vs {} full after {} updates\n",
                p.names,
                p.resident_per_name(),
                p.naive_per_name(),
                p.naive_per_name() / p.resident_per_name(),
                p.preload.incremental_bytes,
                p.preload.full_bytes,
                p.preload.updates,
            ));
        }
        out
    }

    /// The `hns-scale-v1` JSON document for this run.
    pub fn to_json(&self) -> String {
        use hns_core::obs::json::number;
        let c = &self.config;
        let names: Vec<String> = c.names.iter().map(usize::to_string).collect();
        let mut out = format!(
            "{{\"schema\": \"hns-scale-v1\", \"config\": {{\"names\": [{}], \
             \"queries\": {}, \"sample\": {}, \"hot\": {}, \"updates\": {}, \
             \"seed\": {}}}, \"points\": [",
            names.join(", "),
            c.queries,
            c.sample,
            c.hot,
            c.updates,
            c.seed
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let pre = &p.preload;
            out.push_str(&format!(
                "{{\"names\": {}, \"cells\": {}, \"contexts\": {}, \"records\": {}, \
                 \"resident_bytes\": {}, \"naive_bytes\": {}, \
                 \"resident_bytes_per_name\": {}, \"naive_bytes_per_name\": {}, \
                 \"queries\": {}, \"virtual_secs\": {}, \"qps\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"hit_ratio\": {}, \
                 \"preload\": {{\"full_bytes\": {}, \"full_records\": {}, \
                 \"full_serial\": {}, \"updates\": {}, \"incremental_bytes\": {}, \
                 \"incremental_records\": {}, \"incremental_serial\": {}, \
                 \"incremental_mode\": \"{}\"}}}}",
                p.names,
                p.cells,
                p.contexts,
                p.records,
                p.resident_bytes,
                p.naive_bytes,
                number(p.resident_per_name()),
                number(p.naive_per_name()),
                p.queries,
                number(p.virtual_secs),
                number(p.qps),
                p.cache_hits,
                p.cache_misses,
                number(p.hit_ratio),
                pre.full_bytes,
                pre.full_records,
                pre.full_serial,
                pre.updates,
                pre.incremental_bytes,
                pre.incremental_records,
                pre.incremental_serial,
                match pre.incremental_mode {
                    PreloadMode::Full => "full",
                    PreloadMode::Incremental => "incremental",
                    PreloadMode::Unchanged => "unchanged",
                },
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Validates an `hns-scale-v1` document: schema tag, non-empty points
/// with every reported field, and the two scale-out claims — compact
/// storage beats the naive per-copy accounting, and a warm client's
/// incremental preload ships strictly fewer bytes than the cold full
/// transfer.
pub fn validate(text: &str) -> Result<(), String> {
    let v = hns_core::obs::json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-scale-v1") {
        return Err("missing or unexpected `schema`".into());
    }
    let config = v.get("config").ok_or("missing `config`")?;
    for field in ["names", "queries", "sample", "hot", "updates", "seed"] {
        if config.get(field).is_none() {
            return Err(format!("config missing `{field}`"));
        }
    }
    let points = v
        .get("points")
        .and_then(|p| p.as_array())
        .ok_or("missing `points` array")?;
    if points.is_empty() {
        return Err("no points in export".into());
    }
    for (i, p) in points.iter().enumerate() {
        for field in [
            "names",
            "cells",
            "contexts",
            "records",
            "resident_bytes",
            "naive_bytes",
            "resident_bytes_per_name",
            "naive_bytes_per_name",
            "queries",
            "virtual_secs",
            "qps",
            "cache_hits",
            "cache_misses",
            "hit_ratio",
        ] {
            if p.get(field).is_none() {
                return Err(format!("point {i} missing `{field}`"));
            }
        }
        let num = |field: &str| {
            p.get(field)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("point {i}: `{field}` is not a number"))
        };
        let resident = num("resident_bytes_per_name")?;
        let naive = num("naive_bytes_per_name")?;
        if resident >= naive {
            return Err(format!(
                "point {i}: resident bytes/name {resident} not below the naive baseline {naive}"
            ));
        }
        let preload = p
            .get("preload")
            .ok_or(format!("point {i} missing `preload`"))?;
        for field in [
            "full_bytes",
            "full_records",
            "full_serial",
            "updates",
            "incremental_bytes",
            "incremental_records",
            "incremental_serial",
            "incremental_mode",
        ] {
            if preload.get(field).is_none() {
                return Err(format!("point {i} preload missing `{field}`"));
            }
        }
        let full = preload
            .get("full_bytes")
            .and_then(|x| x.as_f64())
            .ok_or(format!("point {i}: `full_bytes` is not a number"))?;
        let incr = preload
            .get("incremental_bytes")
            .and_then(|x| x.as_f64())
            .ok_or(format!("point {i}: `incremental_bytes` is not a number"))?;
        if incr >= full {
            return Err(format!(
                "point {i}: incremental preload shipped {incr} B, not strictly below \
                 the full transfer's {full} B"
            ));
        }
        if preload.get("incremental_mode").and_then(|m| m.as_str()) != Some("incremental") {
            return Err(format!("point {i}: warm preload did not run incrementally"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleConfig {
        ScaleConfig {
            names: vec![2000, 10_000],
            queries: 512,
            sample: 128,
            hot: 16,
            updates: 8,
            seed: 1987,
        }
    }

    #[test]
    fn small_sweep_reports_the_scale_out_claims() {
        let run = run(&small());
        assert_eq!(run.points.len(), 2);
        for p in &run.points {
            assert!(
                p.resident_per_name() < p.naive_per_name() / 2.0,
                "compact store should at least halve {} vs {}",
                p.resident_per_name(),
                p.naive_per_name()
            );
            assert!(p.qps > 0.0);
            assert!(p.hit_ratio > 0.5, "hot sample must hit: {}", p.hit_ratio);
            assert_eq!(p.preload.incremental_mode, PreloadMode::Incremental);
            assert!(p.preload.incremental_bytes < p.preload.full_bytes);
            assert!(p.preload.incremental_serial > p.preload.full_serial);
        }
        // More names, more cells — and the per-name cost stays flat-ish
        // instead of growing with the world.
        assert!(run.points[1].cells >= run.points[0].cells);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let config = small();
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&small());
        let b = run(&ScaleConfig { seed: 7, ..small() });
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_export_parses_and_validates() {
        let run = run(&small());
        validate(&run.to_json()).expect("scale JSON validates");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        assert!(validate("{\"schema\": \"hns-scale-v1\", \"points\": []}").is_err());
        // A point that violates the compact-storage claim fails.
        let run = run(&ScaleConfig {
            names: vec![2000],
            queries: 64,
            sample: 16,
            hot: 4,
            updates: 2,
            seed: 3,
        });
        let json = run.to_json();
        let broken = json.replace(
            &format!(
                "\"resident_bytes_per_name\": {}",
                hns_core::obs::json::number(run.points[0].resident_per_name())
            ),
            "\"resident_bytes_per_name\": 1e9",
        );
        assert!(validate(&broken).is_err());
    }
}

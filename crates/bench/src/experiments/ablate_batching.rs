//! A5 — ablation: sequential six-round-trip `FindNSM` versus the batched
//! meta pipeline (one `MQUERY` with server-side mapping chasing).
//!
//! The paper's Table 3.1/3.2 numbers assume FindNSM's six data mappings
//! are resolved one remote lookup at a time. The batched pipeline sends a
//! single multi-question query whose reply piggybacks mappings 2–5 as
//! additional record sets (see `hns_core::chaser::MetaChaser`), leaving
//! only the public-BIND host-address lookup as a second round trip. This
//! ablation measures both configurations cold and warm so the round-trip
//! elision is visible as its own column — the sequential numbers are the
//! paper's, untouched.

use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::query::QueryClass;
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::PlainTable;

/// One configuration's measurements.
struct Run {
    label: &'static str,
    remote_calls: u64,
    ns_lookups: u64,
    ms: f64,
}

fn measure(batching: bool) -> (Run, Run) {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    hns.set_batching(batching);
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = QueryClass::hrpc_binding();

    let (r, cold_ms, cold_delta) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    r.expect("cold find_nsm");
    let cold = Run {
        label: if batching {
            "batched, cold"
        } else {
            "sequential, cold"
        },
        remote_calls: cold_delta.remote_calls,
        ns_lookups: cold_delta.ns_lookups,
        ms: cold_ms.as_ms_f64(),
    };

    let (r, warm_ms, warm_delta) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    r.expect("warm find_nsm");
    let warm = Run {
        label: if batching {
            "batched, warm"
        } else {
            "sequential, warm"
        },
        remote_calls: warm_delta.remote_calls,
        ns_lookups: warm_delta.ns_lookups,
        ms: warm_ms.as_ms_f64(),
    };
    (cold, warm)
}

/// Runs the ablation.
pub fn run() -> PlainTable {
    let (seq_cold, seq_warm) = measure(false);
    let (bat_cold, bat_warm) = measure(true);

    let mut table = PlainTable::new(
        "Ablation A5 — sequential FindNSM vs batched meta pipeline (MQUERY + chaser)",
        vec![
            "configuration",
            "remote round trips",
            "ns lookups",
            "time (ms)",
        ],
    );
    for run in [seq_cold, bat_cold, seq_warm, bat_warm] {
        table.push_row(vec![
            run.label.into(),
            run.remote_calls.to_string(),
            run.ns_lookups.to_string(),
            format!("{:.0}", run.ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_elides_four_round_trips_cold() {
        let table = run();
        let seq_cold_calls: u64 = table.rows[0][1].parse().expect("number");
        let bat_cold_calls: u64 = table.rows[1][1].parse().expect("number");
        assert_eq!(seq_cold_calls, 6, "sequential cold path is six calls");
        assert!(
            bat_cold_calls <= 2,
            "batched cold path made {bat_cold_calls} calls, want <= 2"
        );
        let seq_cold_ms: f64 = table.rows[0][3].parse().expect("number");
        let bat_cold_ms: f64 = table.rows[1][3].parse().expect("number");
        assert!(
            bat_cold_ms < seq_cold_ms,
            "batched cold {bat_cold_ms} must beat sequential {seq_cold_ms}"
        );
    }

    #[test]
    fn warm_paths_make_no_remote_calls_either_way() {
        let table = run();
        let seq_warm_calls: u64 = table.rows[2][1].parse().expect("number");
        let bat_warm_calls: u64 = table.rows[3][1].parse().expect("number");
        assert_eq!(seq_warm_calls, 0);
        assert_eq!(bat_warm_calls, 0);
    }
}

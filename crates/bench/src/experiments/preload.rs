//! E5 — cache preload by zone transfer: cost (~390 ms for ~2 KB) and the
//! break-even point ("effective where two or more calls to the HNS for
//! different context/query classes will be made").
//!
//! Two accountings are reported:
//!
//! * the **paper's accounting** — every distinct context/query-class call
//!   priced at the full cold `FindNSM` cost, which yields the paper's
//!   break-even of two calls;
//! * a **measured refinement** — successive distinct calls share meta
//!   entries (contexts, host-address results), so the no-preload side is
//!   cheaper than the paper's model and the break-even moves later. The
//!   paper's qualitative conclusion (preload pays off after a handful of
//!   calls) still holds.

use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::query::QueryClass;
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::{Cell, PaperTable, PlainTable};

/// The distinct (context, query class) pairs exercised, in order.
fn distinct_queries(tb: &Testbed) -> Vec<(QueryClass, HnsName)> {
    let bind = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let ch = HnsName::new(tb.ctx_ch(), "printserver:cs:uw").expect("name");
    vec![
        (QueryClass::hrpc_binding(), bind.clone()),
        (QueryClass::hrpc_binding(), ch.clone()),
        (QueryClass::mailbox_location(), bind.clone()),
        (QueryClass::mailbox_location(), ch.clone()),
        (QueryClass::file_location(), bind),
        (QueryClass::file_location(), ch),
    ]
}

fn build_testbed() -> Testbed {
    let tb = Testbed::build();
    // Populate the meta zone with the full NSM complement so its size is
    // in the ~2 KB regime the paper preloaded.
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);
    tb
}

/// Results of the preload experiment.
#[derive(Debug)]
pub struct PreloadResults {
    /// Paper-vs-measured headline numbers.
    pub headline: PaperTable,
    /// Break-even under the paper's accounting plus the measured
    /// shared-entry refinement.
    pub sweep: PlainTable,
    /// Break-even (paper's accounting).
    pub break_even_paper_model: Option<u32>,
    /// Break-even with cross-call sharing measured.
    pub break_even_measured: Option<u32>,
}

/// Runs the experiment.
pub fn run() -> PreloadResults {
    let tb = build_testbed();
    let queries = distinct_queries(&tb);

    // Preload cost and size.
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let (report, preload_ms, _) = tb.world.measure(|| hns.preload());
    let report = report.expect("preload");
    let preload_ms = preload_ms.as_ms_f64();

    // Full cold FindNSM (fresh instance) and pure warm cost.
    let probe = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let (qc0, name0) = &queries[0];
    let (r, cold_full, _) = tb.world.measure(|| probe.find_nsm(qc0, name0));
    r.expect("cold");
    let (r, warm, _) = tb.world.measure(|| probe.find_nsm(qc0, name0));
    r.expect("warm");
    let cold_full = cold_full.as_ms_f64();
    let warm = warm.as_ms_f64();

    let mut headline = PaperTable::new("Cache preload (ms)", vec!["value"]);
    headline.push_row("preload cost (~390)", vec![Cell::new(390.0, preload_ms)]);
    headline.push_row(
        "meta zone size (~2 KB)",
        vec![Cell::new(2048.0, report.bytes as f64)],
    );
    headline.push_row("cold FindNSM (368)", vec![Cell::new(368.0, cold_full)]);
    headline.push_row("warm FindNSM (88)", vec![Cell::new(88.0, warm)]);

    // Paper's accounting.
    let paper_model = hns_core::analysis::PreloadModel {
        preload_ms,
        cold_ms: cold_full,
        warm_ms: warm,
    };

    // Measured refinement: cumulative cost of k distinct queries without
    // preload (shared entries make later queries cheaper) and with it.
    let no_preload_hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let mut without_cum = Vec::new();
    let mut acc = 0.0;
    for (qc, name) in &queries {
        let (r, took, _) = tb.world.measure(|| no_preload_hns.find_nsm(qc, name));
        r.expect("no-preload query");
        acc += took.as_ms_f64();
        without_cum.push(acc);
    }
    let preload_hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let (r, measured_preload, _) = tb.world.measure(|| preload_hns.preload());
    r.expect("preload");
    let mut with_cum = Vec::new();
    let mut acc = measured_preload.as_ms_f64();
    for (qc, name) in &queries {
        let (r, took, _) = tb.world.measure(|| preload_hns.find_nsm(qc, name));
        r.expect("preloaded query");
        acc += took.as_ms_f64();
        with_cum.push(acc);
    }
    let break_even_measured = with_cum
        .iter()
        .zip(&without_cum)
        .position(|(w, wo)| w < wo)
        .map(|i| i as u32 + 1);

    let mut sweep = PlainTable::new(
        "Preload break-even: k distinct context/query-class calls",
        vec![
            "k",
            "paper model: with (ms)",
            "paper model: without (ms)",
            "measured: with (ms)",
            "measured: without (ms)",
        ],
    );
    for k in 1..=queries.len() as u32 {
        sweep.push_row(vec![
            k.to_string(),
            format!("{:.0}", paper_model.with_preload(k)),
            format!("{:.0}", paper_model.without_preload(k)),
            format!("{:.0}", with_cum[k as usize - 1]),
            format!("{:.0}", without_cum[k as usize - 1]),
        ]);
    }
    PreloadResults {
        headline,
        sweep,
        break_even_paper_model: paper_model.break_even_calls(),
        break_even_measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_cost_and_size_near_paper() {
        // Our registered NSM complement is a little larger than the
        // paper's "about 2KB", and the transfer cost scales with it.
        let results = run();
        assert!(
            results.headline.worst_error_pct() < 35.0,
            "{}",
            results.headline.render()
        );
    }

    #[test]
    fn break_even_at_two_calls_under_paper_accounting() {
        let results = run();
        assert_eq!(
            results.break_even_paper_model,
            Some(2),
            "{}",
            results.sweep.render()
        );
    }

    #[test]
    fn measured_break_even_is_a_handful_of_calls() {
        let results = run();
        let k = results
            .break_even_measured
            .expect("preload eventually wins");
        assert!(
            (2..=5).contains(&k),
            "measured break-even {k}\n{}",
            results.sweep.render()
        );
    }

    #[test]
    fn preload_guarantees_meta_cache_hits() {
        let tb = build_testbed();
        let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
        hns.preload().expect("preload");
        let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
        let (_, _, delta) = tb
            .world
            .measure(|| hns.find_nsm(&QueryClass::hrpc_binding(), &name));
        // Only the public host-address lookup (mapping 6) may go remote.
        assert!(
            delta.remote_calls <= 1,
            "preloaded FindNSM made {} remote calls",
            delta.remote_calls
        );
    }
}

//! A1 — ablation: `FindNSM` as three separate mappings (the paper's
//! choice) versus collapsing `(context, query class)` directly to the NSM
//! binding.
//!
//! "While we recognize that the lookups made by FindNSM could be collapsed
//! into fewer calls ... we chose to keep these mappings separate, because
//! this allows more flexibility and requires less redundant information."
//! This ablation quantifies both sides: the collapsed variant's faster
//! cold lookup, and its redundancy/update-amplification costs.

use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::nsm::NsmInfo;
use hns_core::query::QueryClass;
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::PlainTable;

/// A collapsed meta store: one record set per (context, query class)
/// carrying everything needed to call the NSM, including its resolved
/// address.
mod collapsed {
    use super::*;
    use bindns::name::DomainName;
    use bindns::rr::{RType, ResourceRecord};
    use bindns::update::UpdateOp;
    use hns_core::error::{HnsError, HnsResult};
    use hns_core::nsm::SuiteTag;
    use hrpc::{HrpcBinding, ProgramId};
    use simnet::topology::{HostId, NetAddr};

    /// The collapsed variant of the HNS.
    pub struct CollapsedHns {
        resolver: bindns::resolver::HrpcResolver,
        origin: DomainName,
    }

    impl CollapsedHns {
        /// Creates a collapsed store over the same modified BIND.
        pub fn new(tb: &Testbed, host: HostId) -> Self {
            CollapsedHns {
                resolver: bindns::resolver::HrpcResolver::new(
                    std::sync::Arc::clone(&tb.net),
                    host,
                    tb.meta_bind.hrpc_binding,
                ),
                origin: tb.meta_origin.clone(),
            }
        }

        fn key(&self, context: &str, qc: &QueryClass) -> HnsResult<DomainName> {
            DomainName::parse(&format!(
                "flat-{}--{}.{}",
                context,
                qc.as_str(),
                self.origin
            ))
            .map_err(|e| HnsError::BadMetaRecord(e.to_string()))
        }

        /// Registers the complete, pre-resolved binding for a pair.
        pub fn register(
            &self,
            context: &str,
            qc: &QueryClass,
            host: HostId,
            program: ProgramId,
            port: u16,
        ) -> HnsResult<()> {
            let name = self.key(context, qc)?;
            // Six records, mirroring the NSM info record set plus the
            // resolved address — the redundancy is the point.
            let payloads = [
                format!("addr={}", host.0),
                format!("prog={}", program.0),
                format!("port={port}"),
                "suite=sun".to_string(),
                "ver=1".to_string(),
                "owner=hcs".to_string(),
            ];
            let records = payloads
                .iter()
                .map(|p| {
                    ResourceRecord::unspec(name.clone(), hns_core::META_TTL, p.clone().into_bytes())
                })
                .collect();
            self.resolver
                .update(&UpdateOp::Replace {
                    name,
                    rtype: RType::Unspec,
                    records,
                })
                .map_err(HnsError::Rpc)
        }

        /// The collapsed FindNSM: one meta lookup, no recursion.
        pub fn find_nsm(&self, context: &str, qc: &QueryClass) -> HnsResult<HrpcBinding> {
            let name = self.key(context, qc)?;
            let records = self
                .resolver
                .query(&name, RType::Unspec)
                .map_err(HnsError::Rpc)?;
            let mut addr = None;
            let mut prog = None;
            let mut port = None;
            for r in &records {
                if let bindns::rr::RData::Opaque(bytes) = &r.rdata {
                    let s = String::from_utf8_lossy(bytes).to_string();
                    if let Some((k, v)) = s.split_once('=') {
                        match k {
                            "addr" => addr = v.parse::<u32>().ok(),
                            "prog" => prog = v.parse::<u32>().ok(),
                            "port" => port = v.parse::<u16>().ok(),
                            _ => {}
                        }
                    }
                }
            }
            let (addr, prog, port) = match (addr, prog, port) {
                (Some(a), Some(p), Some(q)) => (a, p, q),
                _ => return Err(HnsError::BadMetaRecord("incomplete flat record".into())),
            };
            let host = HostId(addr);
            Ok(HrpcBinding {
                host,
                addr: NetAddr::of(host),
                program: ProgramId(prog),
                port,
                components: SuiteTag::Sun.components(port),
            })
        }
    }
}

/// Redundancy accounting for `c` contexts, `q` query classes, `n` NSMs.
///
/// Separate: one record per context, one per (name service, query class)
/// pair, six per NSM. Collapsed: six records per (context, query class).
pub fn record_counts(contexts: usize, query_classes: usize, nsms: usize) -> (usize, usize) {
    let name_services = 2;
    let separate = contexts + name_services * query_classes + NsmInfo::RECORDS * nsms;
    let collapsed = contexts * query_classes * NsmInfo::RECORDS;
    (separate, collapsed)
}

/// Records that must be rewritten when one NSM moves host.
pub fn update_amplification(contexts_per_ns: usize) -> (usize, usize) {
    // Separate: rewrite that NSM's six-record info set once.
    // Collapsed: rewrite every (context, query class) entry naming it.
    (NsmInfo::RECORDS, contexts_per_ns * NsmInfo::RECORDS)
}

/// Runs the ablation.
pub fn run() -> PlainTable {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    let qc = QueryClass::hrpc_binding();

    // Separate (the real HNS), cold.
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let (r, separate_ms, separate_calls) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    let nsm_binding = r.expect("separate find");

    // Collapsed, cold.
    let flat = collapsed::CollapsedHns::new(&tb, tb.hosts.client);
    flat.register(
        "bind-uw",
        &qc,
        nsm_binding.host,
        nsm_binding.program,
        nsm_binding.port,
    )
    .expect("flat register");
    let (r, collapsed_ms, collapsed_calls) = tb.world.measure(|| flat.find_nsm("bind-uw", &qc));
    let flat_binding = r.expect("collapsed find");
    assert_eq!(flat_binding.host, nsm_binding.host, "variants must agree");

    let (sep_records, col_records) = record_counts(8, 5, 10);
    let (sep_update, col_update) = update_amplification(8);

    let mut table = PlainTable::new(
        "Ablation A1 — separate 3-mapping FindNSM vs collapsed 1-mapping variant",
        vec!["metric", "separate (paper's choice)", "collapsed"],
    );
    table.push_row(vec![
        "cold lookup (ms)".into(),
        format!("{:.0}", separate_ms.as_ms_f64()),
        format!("{:.0}", collapsed_ms.as_ms_f64()),
    ]);
    table.push_row(vec![
        "cold remote calls".into(),
        separate_calls.remote_calls.to_string(),
        collapsed_calls.remote_calls.to_string(),
    ]);
    table.push_row(vec![
        "meta records (8 ctx x 5 qc x 10 NSMs)".into(),
        sep_records.to_string(),
        col_records.to_string(),
    ]);
    table.push_row(vec![
        "records rewritten when one NSM moves".into(),
        sep_update.to_string(),
        col_update.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapsed_is_faster_cold_but_more_redundant() {
        let table = run();
        let cold_sep: f64 = table.rows[0][1].parse().expect("number");
        let cold_col: f64 = table.rows[0][2].parse().expect("number");
        assert!(
            cold_col * 3.0 < cold_sep,
            "collapsed {cold_col} vs separate {cold_sep}"
        );
        let rec_sep: usize = table.rows[2][1].parse().expect("number");
        let rec_col: usize = table.rows[2][2].parse().expect("number");
        assert!(
            rec_col > 2 * rec_sep,
            "collapsed must store more: {rec_col} vs {rec_sep}"
        );
        let upd_sep: usize = table.rows[3][1].parse().expect("number");
        let upd_col: usize = table.rows[3][2].parse().expect("number");
        assert!(upd_col > upd_sep, "collapsed must rewrite more on moves");
    }

    #[test]
    fn record_count_formulas() {
        let (sep, col) = record_counts(2, 1, 2);
        assert_eq!(sep, 2 + 2 + 12);
        assert_eq!(col, 12);
    }
}

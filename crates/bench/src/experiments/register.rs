//! E-R — the write-heavy registration workload.
//!
//! Drives the `regd` frontend over the replicated Clearinghouse
//! through five phases:
//!
//! 1. **register** — N names registered to distinct owners; every
//!    registration is one primary write plus a meta-zone re-bind.
//! 2. **transfer** — each name's chain grows to a seeded depth; each
//!    transfer is a single signed link write.
//! 3. **resolve** — a second frontend with a cold collapse cache walks
//!    each chain once, then resolves it repeatedly in a single hop:
//!    the collapse hit ratio and chain-walk count come from the
//!    `regd/*` counters.
//! 4. **staleness** — rounds of re-bind → seeded gap → lazy
//!    propagation, with a partitioned reader probing the replica in
//!    the gap: the staleness window is the virtual time a failed-over
//!    read can observe the old binding, and `stale reads` counts the
//!    probes that actually did.
//! 5. **partition** — the primary becomes unreachable from the write
//!    front: writes degrade to typed `HostUnreachable` (never silent
//!    loss), failed-over reads keep answering, and after healing the
//!    write path recovers.
//!
//! Everything runs in virtual time under a seeded plan, so the
//! rendered report and the `hns-reg-v1` JSON export are byte-identical
//! across runs with the same configuration.

use hns_core::obs::metrics::HistogramStats;
use hns_core::obs::MetricsSnapshot;
use nsms::harness::{NS_BIND, NS_CH};
use regd::harness::{owner_key, owner_name, RegTestbed};
use regd::RegError;
use simnet::faults::FaultPlan;
use simnet::rng::DetRng;

use crate::cells::PlainTable;

/// Workload shape for `experiments register`.
#[derive(Debug, Clone, Copy)]
pub struct RegisterConfig {
    /// Names registered (each to its own owner).
    pub names: usize,
    /// Upper bound (inclusive) on each name's seeded chain depth.
    pub max_depth: u32,
    /// Warm resolves per name in the resolve phase.
    pub warm_resolves: usize,
    /// Re-bind → propagate rounds in the staleness phase.
    pub staleness_rounds: usize,
    /// Seed for depths, gaps, and window jitter.
    pub seed: u64,
}

impl Default for RegisterConfig {
    fn default() -> Self {
        RegisterConfig {
            names: 12,
            max_depth: 8,
            warm_resolves: 4,
            staleness_rounds: 5,
            seed: 1987,
        }
    }
}

/// One observed operation.
#[derive(Debug, Clone)]
pub struct RegisterEvent {
    /// Which phase the operation ran in.
    pub phase: &'static str,
    /// What ran (usually the name operated on).
    pub label: String,
    /// What happened.
    pub outcome: String,
    /// Virtual time the operation took.
    pub took_us: u64,
}

/// Aggregates the acceptance assertions and the export read.
#[derive(Debug, Clone)]
pub struct RegisterOutcomes {
    /// Clearinghouse-write operations (registers + transfers + re-binds).
    pub write_ops: u64,
    /// Write operations per virtual second over the write phases.
    pub write_qps: f64,
    /// Full chain walks (`regd/chain_walks`).
    pub chain_walks: u64,
    /// Single-hop collapsed resolutions (`regd/collapse_hits`).
    pub collapse_hits: u64,
    /// Total resolutions (`regd/resolves`).
    pub resolves: u64,
    /// `collapse_hits / resolves`.
    pub hit_ratio: f64,
    /// Distribution of chain depths at transfer time.
    pub chain_depth: HistogramStats,
    /// Mean staleness window (write → propagation), virtual ms.
    pub staleness_mean_ms: f64,
    /// Largest staleness window, virtual ms.
    pub staleness_max_ms: f64,
    /// Failed-over reads that observed the old binding in the gap.
    pub stale_reads: u64,
    /// Writes that degraded to typed unreachability (`regd/write_unreachable`).
    pub write_unreachable: u64,
    /// The write path worked again after healing.
    pub recovered: bool,
}

/// The full registration run.
#[derive(Debug, Clone)]
pub struct RegisterRun {
    /// The workload it ran with.
    pub config: RegisterConfig,
    /// Per-operation observations, in execution order.
    pub events: Vec<RegisterEvent>,
    /// Aggregates.
    pub outcomes: RegisterOutcomes,
    /// The unified metrics snapshot taken at the end.
    pub snapshot: MetricsSnapshot,
}

fn reg_counter(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot.counter("regd", name).unwrap_or(0)
}

/// Runs the registration workload.
pub fn run(config: &RegisterConfig) -> RegisterRun {
    let owners = config.names + config.max_depth as usize + 1;
    let rtb = RegTestbed::build(owners);
    let reg = &rtb.registry;
    let world = &rtb.tb.world;
    let mut rng = DetRng::new(config.seed);
    let mut events = Vec::new();
    let names: Vec<String> = (0..config.names).map(|i| format!("svc{i}")).collect();

    // Phase 1: register. Owner i takes svc{i}, bound to BIND.
    let write_t0 = world.now();
    for (i, name) in names.iter().enumerate() {
        let t0 = world.now();
        reg.register(&owner_name(i), owner_key(i), name, NS_BIND)
            .expect("register");
        events.push(RegisterEvent {
            phase: "register",
            label: name.clone(),
            outcome: "ok".into(),
            took_us: world.now().since(t0).as_us(),
        });
    }

    // Phase 2: transfer. Each chain grows to a seeded depth through a
    // fresh run of owners (the cycle rule forbids revisits).
    let mut holder: Vec<usize> = (0..config.names).collect();
    for (i, name) in names.iter().enumerate() {
        let depth = rng.next_below(u64::from(config.max_depth) + 1) as u32;
        let t0 = world.now();
        for step in 0..depth {
            let from = holder[i];
            // Owners `names..owners` are the transfer pool; stepping
            // through it in order never revisits a holder.
            let to = config.names + step as usize;
            reg.transfer(
                &owner_name(from),
                owner_key(from),
                name,
                &owner_name(to),
                None,
            )
            .expect("transfer");
            holder[i] = to;
        }
        events.push(RegisterEvent {
            phase: "transfer",
            label: name.clone(),
            outcome: format!("depth {depth}"),
            took_us: world.now().since(t0).as_us(),
        });
    }
    let write_elapsed = world.now().since(write_t0);

    // Phase 3: resolve through a second, cold frontend.
    let reader = rtb.reader(rtb.tb.hosts.client, owners);
    for name in &names {
        let t0 = world.now();
        let cold = reader.resolve(name).expect("cold resolve");
        events.push(RegisterEvent {
            phase: "resolve",
            label: name.clone(),
            outcome: format!("walked depth={} head={}", cold.depth, cold.owner),
            took_us: world.now().since(t0).as_us(),
        });
        let t0 = world.now();
        let mut last = cold;
        for _ in 0..config.warm_resolves {
            last = reader.resolve(name).expect("warm resolve");
            assert!(!last.walked, "warm resolve must be a collapse hit");
        }
        events.push(RegisterEvent {
            phase: "resolve",
            label: name.clone(),
            outcome: format!("collapsed x{} head={}", config.warm_resolves, last.owner),
            took_us: world.now().since(t0).as_us(),
        });
    }

    // Phase 4: staleness. Re-bind the first name, leave a seeded gap,
    // then propagate; a reader cut off from the primary probes the
    // replica inside the gap.
    rtb.cluster.propagate();
    let probe = rtb.reader(rtb.tb.hosts.client, owners);
    let name0 = &names[0];
    let owner0 = holder[0];
    let mut windows_ms: Vec<f64> = Vec::new();
    let mut stale_reads = 0u64;
    for round in 0..config.staleness_rounds {
        let new_service = if round % 2 == 0 { NS_CH } else { NS_BIND };
        let old_service = if round % 2 == 0 { NS_BIND } else { NS_CH };
        let t_write = world.now();
        reg.update(&owner_name(owner0), owner_key(owner0), name0, new_service)
            .expect("re-bind");
        world.charge_ms(500.0 + rng.next_below(2_000) as f64);

        // Cut the probe's host off from the primary: its read fails
        // over to the replica, which has not seen the re-bind yet.
        let mut plan = FaultPlan::new();
        plan.partition(rtb.tb.hosts.client, rtb.tb.hosts.ch, world.now(), None);
        world.set_faults(Some(plan));
        let seen = probe.resolve_naive(name0).expect("failed-over read");
        world.set_faults(None);
        let stale = seen.service == old_service;
        if stale {
            stale_reads += 1;
        }

        rtb.cluster.propagate();
        let window = world.now().since(t_write);
        windows_ms.push(window.as_ms_f64());
        events.push(RegisterEvent {
            phase: "staleness",
            label: format!("round {round}"),
            outcome: format!(
                "window {:.3}ms replica read: {}",
                window.as_ms_f64(),
                if stale { "stale" } else { "fresh" }
            ),
            took_us: window.as_us(),
        });
    }

    // Phase 5: partition. The primary becomes unreachable from the
    // write front; writes fail typed, failed-over reads keep working.
    let now = world.now();
    let mut plan = FaultPlan::new();
    plan.partition(rtb.tb.hosts.agent, rtb.tb.hosts.ch, now, None);
    plan.partition(rtb.tb.hosts.client, rtb.tb.hosts.ch, now, None);
    world.set_faults(Some(plan));
    {
        let t0 = world.now();
        let err = reg
            .update(&owner_name(owner0), owner_key(owner0), name0, NS_CH)
            .expect_err("write must not silently succeed");
        assert!(err.is_unreachable(), "typed fail-fast, got {err}");
        events.push(RegisterEvent {
            phase: "partition",
            label: "re-bind (write)".into(),
            outcome: match err {
                RegError::Rpc(e) => format!("{e}"),
                other => format!("error: {other}"),
            },
            took_us: world.now().since(t0).as_us(),
        });
        let t0 = world.now();
        let seen = probe.resolve_naive(name0).expect("failed-over resolve");
        events.push(RegisterEvent {
            phase: "partition",
            label: "resolve (read)".into(),
            outcome: format!("ok (failover) head={}", seen.owner),
            took_us: world.now().since(t0).as_us(),
        });
    }
    world.set_faults(None);
    let t0 = world.now();
    let recovered = reg
        .update(&owner_name(owner0), owner_key(owner0), name0, NS_BIND)
        .is_ok();
    events.push(RegisterEvent {
        phase: "partition",
        label: "re-bind (healed)".into(),
        outcome: if recovered {
            "ok".into()
        } else {
            "failed".into()
        },
        took_us: world.now().since(t0).as_us(),
    });

    let snapshot = world.metrics().snapshot();
    let registers = reg_counter(&snapshot, "registers");
    let transfers = reg_counter(&snapshot, "transfers");
    let updates = reg_counter(&snapshot, "updates");
    let write_ops = registers + transfers + updates;
    let resolves = reg_counter(&snapshot, "resolves");
    let collapse_hits = reg_counter(&snapshot, "collapse_hits");
    let write_secs = write_elapsed.as_ms_f64() / 1000.0;
    let chain_depth = snapshot
        .histogram("regd", "chain_depth")
        .cloned()
        .unwrap_or(HistogramStats {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p95: 0,
            p99: 0,
        });
    let outcomes = RegisterOutcomes {
        write_ops,
        write_qps: if write_secs > 0.0 {
            (registers + transfers) as f64 / write_secs
        } else {
            0.0
        },
        chain_walks: reg_counter(&snapshot, "chain_walks"),
        collapse_hits,
        resolves,
        hit_ratio: if resolves > 0 {
            collapse_hits as f64 / resolves as f64
        } else {
            0.0
        },
        chain_depth,
        staleness_mean_ms: if windows_ms.is_empty() {
            0.0
        } else {
            windows_ms.iter().sum::<f64>() / windows_ms.len() as f64
        },
        staleness_max_ms: windows_ms.iter().copied().fold(0.0, f64::max),
        stale_reads,
        write_unreachable: reg_counter(&snapshot, "write_unreachable"),
        recovered,
    };
    RegisterRun {
        config: *config,
        events,
        outcomes,
        snapshot,
    }
}

impl RegisterRun {
    /// Human-readable report: the event table, the outcome summary,
    /// and the metrics snapshot.
    pub fn render(&self) -> String {
        let mut table = PlainTable::new(
            format!(
                "E-R — register: names={} max-depth={} warm-resolves={} \
                 staleness-rounds={} seed={}",
                self.config.names,
                self.config.max_depth,
                self.config.warm_resolves,
                self.config.staleness_rounds,
                self.config.seed
            ),
            vec!["phase", "operation", "outcome", "took (ms)"],
        );
        for e in &self.events {
            table.push_row(vec![
                e.phase.to_string(),
                e.label.clone(),
                e.outcome.clone(),
                format!("{:.3}", e.took_us as f64 / 1000.0),
            ]);
        }
        let o = &self.outcomes;
        let mut out = table.render();
        out.push_str(&format!(
            "\nwrite ops: {} ({:.3}/s)  chain walks: {}  collapse hits: {}/{} ({:.3})\n\
             chain depth: p50={} p95={} max={}  staleness: mean {:.3}ms max {:.3}ms \
             stale reads: {}\nwrite unreachable: {}  recovered: {}\n\n",
            o.write_ops,
            o.write_qps,
            o.chain_walks,
            o.collapse_hits,
            o.resolves,
            o.hit_ratio,
            o.chain_depth.p50,
            o.chain_depth.p95,
            o.chain_depth.max,
            o.staleness_mean_ms,
            o.staleness_max_ms,
            o.stale_reads,
            o.write_unreachable,
            o.recovered
        ));
        out.push_str(&self.snapshot.render());
        out
    }

    /// The `hns-reg-v1` JSON document for this run.
    pub fn to_json(&self) -> String {
        use hns_core::obs::json::{number, string};
        let c = &self.config;
        let mut out = format!(
            "{{\"schema\": \"hns-reg-v1\", \"config\": {{\"names\": {}, \
             \"max_depth\": {}, \"warm_resolves\": {}, \"staleness_rounds\": {}, \
             \"seed\": {}}}, \"events\": [",
            c.names, c.max_depth, c.warm_resolves, c.staleness_rounds, c.seed
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"phase\": {}, \"label\": {}, \"outcome\": {}, \"took_us\": {}}}",
                string(e.phase),
                string(&e.label),
                string(&e.outcome),
                e.took_us
            ));
        }
        let o = &self.outcomes;
        let d = &o.chain_depth;
        out.push_str(&format!(
            "], \"outcomes\": {{\"write_ops\": {}, \"write_qps\": {}, \
             \"chain_walks\": {}, \"collapse_hits\": {}, \"resolves\": {}, \
             \"hit_ratio\": {}, \"chain_depth\": {{\"count\": {}, \"min\": {}, \
             \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}, \
             \"staleness\": {{\"rounds\": {}, \"mean_ms\": {}, \"max_ms\": {}, \
             \"stale_reads\": {}}}, \"write_unreachable\": {}, \"recovered\": {}}}, \
             \"metrics\": ",
            o.write_ops,
            number(o.write_qps),
            o.chain_walks,
            o.collapse_hits,
            o.resolves,
            number(o.hit_ratio),
            d.count,
            d.min,
            d.max,
            d.p50,
            d.p95,
            d.p99,
            c.staleness_rounds,
            number(o.staleness_mean_ms),
            number(o.staleness_max_ms),
            o.stale_reads,
            o.write_unreachable,
            o.recovered
        ));
        out.push_str(&self.snapshot.to_json());
        out.push('}');
        out
    }
}

/// Validates an `hns-reg-v1` document: schema tag, the five phases'
/// events, and the outcome fields the acceptance assertions read.
pub fn validate(text: &str) -> Result<(), String> {
    let v = hns_core::obs::json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("hns-reg-v1") {
        return Err("missing or unexpected `schema`".into());
    }
    let events = v
        .get("events")
        .and_then(|e| e.as_array())
        .ok_or("missing `events` array")?;
    if events.is_empty() {
        return Err("no events in export".into());
    }
    for phase in ["register", "transfer", "resolve", "staleness", "partition"] {
        if !events
            .iter()
            .any(|e| e.get("phase").and_then(|p| p.as_str()) == Some(phase))
        {
            return Err(format!("no `{phase}` events in export"));
        }
    }
    let outcomes = v.get("outcomes").ok_or("missing `outcomes`")?;
    for field in [
        "write_ops",
        "write_qps",
        "chain_walks",
        "collapse_hits",
        "resolves",
        "hit_ratio",
        "write_unreachable",
        "recovered",
    ] {
        if outcomes.get(field).is_none() {
            return Err(format!("outcomes missing `{field}`"));
        }
    }
    let depth = outcomes.get("chain_depth").ok_or("missing `chain_depth`")?;
    for field in ["count", "min", "max", "p50", "p95", "p99"] {
        if depth.get(field).is_none() {
            return Err(format!("chain_depth missing `{field}`"));
        }
    }
    let staleness = outcomes.get("staleness").ok_or("missing `staleness`")?;
    for field in ["rounds", "mean_ms", "max_ms", "stale_reads"] {
        if staleness.get(field).is_none() {
            return Err(format!("staleness missing `{field}`"));
        }
    }
    if v.get("metrics").is_none() {
        return Err("missing `metrics` snapshot".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_exercises_the_whole_write_path() {
        let run = run(&RegisterConfig::default());
        let o = &run.outcomes;
        assert_eq!(
            o.write_ops,
            o.chain_depth.count + run.config.names as u64 + run.config.staleness_rounds as u64 + 1, // the healed re-bind; the partitioned one never lands
            "registers + transfers + updates"
        );
        assert!(o.write_qps > 0.0);
        // Each name walked once by the cold reader, then only
        // single-hop collapse hits.
        assert_eq!(o.chain_walks, run.config.names as u64);
        assert!(o.hit_ratio > 0.5, "hit ratio {}", o.hit_ratio);
        assert!(o.chain_depth.max <= u64::from(run.config.max_depth));
        assert!(o.staleness_mean_ms >= 500.0, "{}", o.staleness_mean_ms);
        assert!(o.stale_reads > 0, "the gap must be observable");
        assert!(o.write_unreachable >= 1, "{}", o.write_unreachable);
        assert!(o.recovered);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let config = RegisterConfig::default();
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&RegisterConfig::default());
        let b = run(&RegisterConfig {
            seed: 7,
            ..RegisterConfig::default()
        });
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_export_parses_and_validates() {
        let run = run(&RegisterConfig::default());
        let json = run.to_json();
        validate(&json).expect("register JSON validates");
        let v = hns_core::obs::json::parse(&json).expect("parses");
        assert_eq!(
            v.get("outcomes")
                .and_then(|o| o.get("recovered"))
                .and_then(|r| r.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{\"schema\": \"other\"}").is_err());
        assert!(validate("{\"schema\": \"hns-reg-v1\", \"events\": []}").is_err());
    }
}

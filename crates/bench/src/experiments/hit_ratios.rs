//! E9 — the paper's stated future work: dynamic cache hit ratios.
//!
//! "Neither of these increments leads to a clear cut decision about the
//! most efficient location for the HNS or the NSMs. Further work on the
//! dynamic cache hit ratios achieved in practice will be required to make
//! this decision for any particular workload."
//!
//! This experiment does that work: it drives a Zipf-skewed `FindNSM`
//! workload from several short-lived client processes, measures the hit
//! fraction achieved by per-process *linked* HNS copies against one
//! long-lived shared *remote* HNS server, and feeds the measured `q` (the
//! remote server's additional hit fraction) back into equation (1) to make
//! the placement decision the paper left open.

use std::sync::Arc;

use hns_core::analysis::Eq1Inputs;
use hns_core::cache::CacheMode;
use hns_core::colocation::{HnsClient, HnsHandle, HnsService, HNS_PROGRAM};
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::query::QueryClass;
use hrpc::{ComponentSet, HrpcBinding};
use nsms::harness::{Testbed, NS_BIND, NS_CH};
use nsms::nsm_cache::NsmCacheForm;
use simnet::rng::DetRng;
use simnet::topology::NetAddr;

use crate::cells::PlainTable;

/// Number of distinct (context, query class) pairs in the universe.
const CONTEXTS: usize = 12;
/// Query classes exercised per context's name service.
const CLASSES: usize = 3;
/// Short-lived client processes per generation.
const CLIENTS: usize = 6;
/// FindNSM calls per client process lifetime.
const CALLS_PER_CLIENT: usize = 25;

/// Outcome of one placement run.
#[derive(Debug, Clone, Copy)]
pub struct PlacementRun {
    /// Mean FindNSM time per call, virtual ms.
    pub mean_ms: f64,
    /// Cache hit fraction achieved.
    pub hit_fraction: f64,
    /// Probes that found an entry whose TTL had lapsed (counted apart
    /// from plain misses).
    pub expired: u64,
}

/// The experiment's full result.
#[derive(Debug)]
pub struct HitRatioResults {
    /// Linked (per-process) placement.
    pub linked: PlacementRun,
    /// Remote (shared server) placement.
    pub remote: PlacementRun,
    /// The measured additional hit fraction of the remote server.
    pub q_measured: f64,
    /// Equation (1)'s threshold for this workload.
    pub q_threshold: f64,
    /// The rendered table.
    pub table: PlainTable,
}

fn setup() -> (Testbed, Vec<(QueryClass, HnsName)>) {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);
    // Additional contexts over the same two name services (departmental
    // subdivisions of the same universe).
    let registrar = tb.make_hns(tb.hosts.meta, CacheMode::Disabled);
    let mut pairs = Vec::new();
    let classes = [
        QueryClass::hrpc_binding(),
        QueryClass::mailbox_location(),
        QueryClass::file_location(),
    ];
    for i in 0..CONTEXTS {
        let (ns, individual) = if i % 2 == 0 {
            (NS_BIND, "fiji.cs.washington.edu")
        } else {
            (NS_CH, "printserver:cs:uw")
        };
        let ctx = Context::new(format!(
            "dept{i}-{}",
            if i % 2 == 0 { "bind" } else { "ch" }
        ))
        .expect("ctx");
        registrar
            .register_context(&ctx, ns, &NameMapping::Identity)
            .expect("register");
        for qc in classes.iter().take(CLASSES) {
            pairs.push((
                qc.clone(),
                HnsName::new(ctx.clone(), individual).expect("name"),
            ));
        }
    }
    (tb, pairs)
}

/// Zipf-ish rank weights over the pair universe.
fn pick_pair(rng: &mut DetRng, n: usize) -> usize {
    // Weight 1/(rank+1); sample by inverse CDF over precomputed sums.
    let total: f64 = (0..n).map(|r| 1.0 / (r + 1) as f64).sum();
    let mut x = rng.next_f64() * total;
    for r in 0..n {
        x -= 1.0 / (r + 1) as f64;
        if x <= 0.0 {
            return r;
        }
    }
    n - 1
}

fn run_linked(tb: &Testbed, pairs: &[(QueryClass, HnsName)]) -> PlacementRun {
    let mut rng = DetRng::new(1987);
    let mut total_ms = 0.0;
    let mut hits = 0u64;
    let mut lookups = 0u64;
    let mut expired = 0u64;
    for client_idx in 0..CLIENTS {
        // A fresh process: its linked HNS starts cold.
        let _ = client_idx;
        let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
        let client = HnsClient::new(
            Arc::clone(&tb.net),
            tb.hosts.client,
            HnsHandle::Linked(Arc::clone(&hns)),
        );
        for _ in 0..CALLS_PER_CLIENT {
            let (qc, name) = &pairs[pick_pair(&mut rng, pairs.len())];
            let (r, took, _) = tb.world.measure(|| client.find_nsm(qc, name));
            r.expect("linked find");
            total_ms += took.as_ms_f64();
        }
        let stats = hns.cache_stats();
        hits += stats.hits;
        lookups += stats.hits + stats.misses + stats.expired;
        expired += stats.expired;
    }
    PlacementRun {
        mean_ms: total_ms / (CLIENTS * CALLS_PER_CLIENT) as f64,
        hit_fraction: hits as f64 / lookups.max(1) as f64,
        expired,
    }
}

fn run_remote(tb: &Testbed, pairs: &[(QueryClass, HnsName)]) -> PlacementRun {
    // One long-lived server shared by every client generation.
    let hns = tb.make_hns(tb.hosts.hns, CacheMode::Marshalled);
    let port = tb
        .net
        .export(tb.hosts.hns, HNS_PROGRAM, HnsService::new(Arc::clone(&hns)));
    let binding = HrpcBinding {
        host: tb.hosts.hns,
        addr: NetAddr::of(tb.hosts.hns),
        program: HNS_PROGRAM,
        port,
        components: ComponentSet::raw_tcp(port),
    };
    let mut rng = DetRng::new(1987); // Same arrival sequence as linked.
    let mut total_ms = 0.0;
    for _ in 0..CLIENTS {
        let client = HnsClient::new(
            Arc::clone(&tb.net),
            tb.hosts.client,
            HnsHandle::Remote(binding),
        );
        for _ in 0..CALLS_PER_CLIENT {
            let (qc, name) = &pairs[pick_pair(&mut rng, pairs.len())];
            let (r, took, _) = tb.world.measure(|| client.find_nsm(qc, name));
            r.expect("remote find");
            total_ms += took.as_ms_f64();
        }
    }
    let stats = hns.cache_stats();
    PlacementRun {
        mean_ms: total_ms / (CLIENTS * CALLS_PER_CLIENT) as f64,
        hit_fraction: stats.hits as f64 / (stats.hits + stats.misses + stats.expired).max(1) as f64,
        expired: stats.expired,
    }
}

/// Runs the experiment.
pub fn run() -> HitRatioResults {
    let (tb, pairs) = setup();
    let linked = run_linked(&tb, &pairs);
    let remote = run_remote(&tb, &pairs);
    let q_measured = (remote.hit_fraction - linked.hit_fraction).max(0.0);

    // Equation (1) with this workload's own hit/miss costs: approximate
    // C(hit)/C(miss) from the linked run's extremes — a warm FindNSM and a
    // cold one measured on the same testbed.
    let probe = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let (qc, name) = &pairs[0];
    let (r, cold, _) = tb.world.measure(|| probe.find_nsm(qc, name));
    r.expect("cold");
    let (r, warm, _) = tb.world.measure(|| probe.find_nsm(qc, name));
    r.expect("warm");
    let inputs = Eq1Inputs {
        remote_call_ms: 33.0,
        hit_ms: warm.as_ms_f64(),
        miss_ms: cold.as_ms_f64(),
    };
    let q_threshold = inputs.remote_threshold().unwrap_or(f64::INFINITY);

    let mut table = PlainTable::new(
        format!(
            "E9 — dynamic cache hit ratios (the paper's open question): \
             {CLIENTS} process lifetimes x {CALLS_PER_CLIENT} calls, Zipf over \
             {} context/query-class pairs",
            pairs.len()
        ),
        vec!["placement", "hit fraction", "expired", "mean FindNSM (ms)"],
    );
    table.push_row(vec![
        "linked per process (cold each lifetime)".into(),
        format!("{:.1}%", linked.hit_fraction * 100.0),
        linked.expired.to_string(),
        format!("{:.1}", linked.mean_ms),
    ]);
    table.push_row(vec![
        "remote shared server (long-lived)".into(),
        format!("{:.1}%", remote.hit_fraction * 100.0),
        remote.expired.to_string(),
        format!("{:.1}", remote.mean_ms),
    ]);
    table.push_row(vec![
        format!("measured q = {:.1}%", q_measured * 100.0),
        format!("eq(1) threshold = {:.1}%", q_threshold * 100.0),
        String::new(),
        if q_measured > q_threshold {
            "=> place HNS REMOTE"
        } else {
            "=> place HNS LOCAL"
        }
        .to_string(),
    ]);
    HitRatioResults {
        linked,
        remote,
        q_measured,
        q_threshold,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_server_achieves_higher_hit_fraction() {
        let results = run();
        assert!(
            results.remote.hit_fraction > results.linked.hit_fraction + 0.1,
            "remote {:.2} vs linked {:.2}",
            results.remote.hit_fraction,
            results.linked.hit_fraction
        );
    }

    #[test]
    fn measured_q_exceeds_the_threshold_for_this_workload() {
        // Short-lived processes over a shared universe: exactly the regime
        // where the remote HNS pays off — the decision the paper could not
        // make without these measurements.
        let results = run();
        assert!(
            results.q_measured > results.q_threshold,
            "q {:.3} <= threshold {:.3}\n{}",
            results.q_measured,
            results.q_threshold,
            results.table.render()
        );
        // And the end-to-end means agree with the equation's verdict.
        assert!(
            results.remote.mean_ms < results.linked.mean_ms,
            "remote {} vs linked {}",
            results.remote.mean_ms,
            results.linked.mean_ms
        );
    }

    #[test]
    fn deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a.linked.mean_ms.to_bits(), b.linked.mean_ms.to_bits());
        assert_eq!(
            a.remote.hit_fraction.to_bits(),
            b.remote.hit_fraction.to_bits()
        );
    }
}

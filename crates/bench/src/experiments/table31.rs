//! E1 — Table 3.1: performance of HRPC binding for various colocation
//! arrangements (msec), three cache states each.

use hns_core::cache::CacheMode;
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::{Cell, PaperTable};
use crate::scenario::{deploy, Arrangement, CacheState};

/// The paper's cells, row-major: miss / HNS hit / both hit.
pub const PAPER: [[f64; 3]; 5] = [
    [460.0, 180.0, 104.0],
    [517.0, 235.0, 137.0],
    [515.0, 232.0, 140.0],
    [509.0, 225.0, 147.0],
    [547.0, 261.0, 181.0],
];

/// Runs the experiment and returns the comparison table.
pub fn run() -> PaperTable {
    let mut table = PaperTable::new(
        "Table 3.1 — HRPC binding by colocation arrangement (ms)",
        vec![
            "A. Cache Miss",
            "B. HNS Cache Hit",
            "C. HNS and NSM Cache Hit",
        ],
    );
    for (row, arrangement) in Arrangement::all().into_iter().enumerate() {
        let deployed = deploy(arrangement, NsmCacheForm::Marshalled, CacheMode::Marshalled);
        let a = deployed.measure(CacheState::Miss);
        let b = deployed.measure(CacheState::HnsHit);
        let c = deployed.measure(CacheState::BothHit);
        table.push_row(
            arrangement.label(),
            vec![
                Cell::new(PAPER[row][0], a),
                Cell::new(PAPER[row][1], b),
                Cell::new(PAPER[row][2], c),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_1_reproduces_within_tolerance() {
        let table = run();
        // Every cell within 20% of the paper; the table as a whole much
        // closer (see EXPERIMENTS.md for the per-cell discussion).
        assert!(
            table.worst_error_pct() < 20.0,
            "worst cell error {:.1}%\n{}",
            table.worst_error_pct(),
            table.render()
        );
    }

    #[test]
    fn caching_dominates_colocation() {
        // "the potential benefit of caching far exceeds that obtainable
        // solely by colocation": the best no-cache cell (column A) is far
        // worse than the worst all-cached cell (column C).
        let table = run();
        let best_a = table
            .rows
            .iter()
            .map(|(_, cells)| cells[0].measured)
            .fold(f64::INFINITY, f64::min);
        let worst_c = table
            .rows
            .iter()
            .map(|(_, cells)| cells[2].measured)
            .fold(0.0, f64::max);
        assert!(
            worst_c * 2.0 < best_a,
            "caching should dominate: best A {best_a}, worst C {worst_c}"
        );
    }
}

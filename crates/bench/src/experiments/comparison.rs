//! E4 — binding-mechanism comparison: HNS (104–547 ms depending on
//! colocation and caching) vs the interim replicated-file scheme (200 ms)
//! vs reregistered Clearinghouse (166 ms).

use std::sync::Arc;

use baselines::{InterimBinder, ReregisteredChBinder};
use hns_core::cache::CacheMode;
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::{Cell, PaperTable};
use crate::scenario::{deploy, Arrangement, CacheState};

/// Runs the comparison and returns the table.
pub fn run() -> PaperTable {
    // HNS extremes from the colocation table.
    let best = deploy(
        Arrangement::AllLinked,
        NsmCacheForm::Marshalled,
        CacheMode::Marshalled,
    );
    let hns_min = best.measure(CacheState::BothHit);
    let worst = deploy(
        Arrangement::AllRemote,
        NsmCacheForm::Marshalled,
        CacheMode::Marshalled,
    );
    let hns_max = worst.measure(CacheState::Miss);

    // Interim replicated local files.
    let tb = Testbed::build();
    let interim = InterimBinder::new(Arc::clone(&tb.net));
    interim.register(DESIRED_SERVICE, tb.hosts.fiji, DESIRED_SERVICE_PROGRAM);
    interim.push_replica(tb.hosts.client);
    let (r, interim_ms, _) = tb
        .world
        .measure(|| interim.bind(tb.hosts.client, DESIRED_SERVICE));
    r.expect("interim bind");

    // Reregistered Clearinghouse.
    let rereg = ReregisteredChBinder::new(
        Arc::clone(&tb.net),
        tb.ch_client(tb.hosts.client),
        "cs",
        "uw",
    );
    let port = tb
        .net
        .portmap_getport(tb.hosts.fiji, DESIRED_SERVICE_PROGRAM)
        .expect("target exported");
    rereg
        .reregister(
            DESIRED_SERVICE,
            tb.hosts.fiji,
            DESIRED_SERVICE_PROGRAM,
            port,
        )
        .expect("reregister");
    let (r, rereg_ms, _) = tb.world.measure(|| rereg.bind(DESIRED_SERVICE));
    r.expect("rereg bind");

    let mut table = PaperTable::new("Binding mechanism comparison (ms)", vec!["one bind"]);
    table.push_row("HNS, best case (104)", vec![Cell::new(104.0, hns_min)]);
    table.push_row("HNS, worst case (547)", vec![Cell::new(547.0, hns_max)]);
    table.push_row(
        "interim replicated files (200)",
        vec![Cell::new(200.0, interim_ms.as_ms_f64())],
    );
    table.push_row(
        "reregistered Clearinghouse (166)",
        vec![Cell::new(166.0, rereg_ms.as_ms_f64())],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_reproduces() {
        let table = run();
        assert!(
            table.worst_error_pct() < 10.0,
            "worst error {:.1}%\n{}",
            table.worst_error_pct(),
            table.render()
        );
    }

    #[test]
    fn tuned_hns_is_competitive_with_homogeneous_schemes() {
        // "the tuned HNS performance is reasonably close to that of
        // homogeneous name services": best-case HNS beats both baselines.
        let table = run();
        let hns_best = table.rows[0].1[0].measured;
        let interim = table.rows[2].1[0].measured;
        let rereg = table.rows[3].1[0].measured;
        assert!(hns_best < interim);
        assert!(hns_best < rereg);
    }
}

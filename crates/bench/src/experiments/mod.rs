//! One module per reproduced table, figure, inline claim, or ablation.
//! DESIGN.md's experiment index maps each to the paper.

pub mod ablate_batching;
pub mod ablate_mappings;
pub mod ablate_rereg;
pub mod ablate_ttl;
pub mod chaos;
pub mod comparison;
pub mod eq1;
pub mod figure21;
pub mod hit_ratios;
pub mod mappings;
pub mod overhead;
pub mod preload;
pub mod register;
pub mod scalability;
pub mod scale;
pub mod table31;
pub mod table32;
pub mod timeline;
pub mod traced;

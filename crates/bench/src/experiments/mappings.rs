//! E8 — the structure of `FindNSM`: three separate mappings, six remote
//! data mappings cold, recursion broken by linked host-address NSMs.

use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::query::QueryClass;
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;

use crate::cells::PlainTable;

/// Structural counters for one FindNSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingCounts {
    /// Remote calls made.
    pub remote_calls: u64,
    /// Underlying name-service lookups served.
    pub ns_lookups: u64,
}

/// Measures cold and warm FindNSM structure.
pub fn counts() -> (MappingCounts, MappingCounts) {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Marshalled);
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = QueryClass::hrpc_binding();
    let (r, _, cold) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    r.expect("cold");
    let (r, _, warm) = tb.world.measure(|| hns.find_nsm(&qc, &name));
    r.expect("warm");
    (
        MappingCounts {
            remote_calls: cold.remote_calls,
            ns_lookups: cold.ns_lookups,
        },
        MappingCounts {
            remote_calls: warm.remote_calls,
            ns_lookups: warm.ns_lookups,
        },
    )
}

/// Runs the experiment and renders the structural evidence.
pub fn run() -> PlainTable {
    let (cold, warm) = counts();
    let mut table = PlainTable::new(
        "FindNSM structure (paper: six remote data mappings cold, all cached warm)",
        vec!["state", "remote calls", "name-service lookups"],
    );
    table.push_row(vec![
        "cold".into(),
        cold.remote_calls.to_string(),
        cold.ns_lookups.to_string(),
    ]);
    table.push_row(vec![
        "warm".into(),
        warm.remote_calls.to_string(),
        warm.ns_lookups.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_cold_zero_warm() {
        let (cold, warm) = counts();
        assert_eq!(cold.remote_calls, 6);
        assert_eq!(warm.remote_calls, 0);
        assert_eq!(warm.ns_lookups, 0);
        // Five of the six cold mappings hit the meta BIND; the sixth is
        // the public BIND lookup by the linked host-address NSM.
        assert_eq!(cold.ns_lookups, 6);
    }
}

//! A2 — ablation: sensitivity of the "simplistic" TTL invalidation.
//!
//! "Cached data is tagged with a time-to-live field for cache invalidation.
//! While this simplistic mechanism can cause cache consistency problems ...
//! Given our assumption that data changes slowly over time, we feel that
//! this mechanism will suffice." This ablation quantifies the tradeoff: a
//! longer TTL buys a higher hit rate and cheaper queries, at the price of a
//! wider staleness window after a registration changes.

use hns_core::cache::CacheMode;
use hns_core::name::HnsName;
use hns_core::nsm::{NsmInfo, SuiteTag};
use hns_core::query::QueryClass;
use nsms::harness::Testbed;
use nsms::nsm_cache::NsmCacheForm;
use nsms::BindingBindNsm;

use crate::cells::PlainTable;

/// Result of one TTL setting.
#[derive(Debug, Clone, Copy)]
pub struct TtlPoint {
    /// Meta record TTL, seconds.
    pub ttl_secs: u32,
    /// Mean FindNSM time over the run, ms.
    pub mean_ms: f64,
    /// Fraction of queries that returned a stale NSM location.
    pub stale_fraction: f64,
}

/// Runs one TTL setting: the NSM's registration moves host every
/// `move_period_s`, clients query every `query_period_s` for `total_s`.
pub fn run_point(ttl_secs: u32, move_period_s: u64, query_period_s: u64, total_s: u64) -> TtlPoint {
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Marshalled);
    // Registrar rewrites the NSM's location between two hosts.
    let registrar = tb.make_hns(tb.hosts.meta, CacheMode::Disabled);
    registrar.meta().set_record_ttl(ttl_secs);
    let hosts = [tb.hosts.nsm, tb.hosts.agent];
    let host_names: Vec<String> = hosts
        .iter()
        .map(|h| tb.world.topology.host_name(*h).expect("host"))
        .collect();
    let register_at = |idx: usize| {
        registrar
            .register_nsm_info(&NsmInfo {
                nsm_name: BindingBindNsm::NAME.into(),
                host_name: host_names[idx].clone(),
                host_context: tb.ctx_nsm_hosts(),
                program: nsms::harness::NSM_EXPORT_PROGRAM,
                port: 1024,
                suite: SuiteTag::Sun,
                version: 1,
                owner: "hcs".into(),
            })
            .expect("re-register");
    };
    register_at(0);

    let hns = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let qc = QueryClass::hrpc_binding();

    let mut current = 0usize;
    let mut next_move_ms = move_period_s as f64 * 1000.0;
    let mut queries = 0u64;
    let mut stale = 0u64;
    let mut total_ms = 0.0;
    let end_ms = total_s as f64 * 1000.0;
    loop {
        let now_ms = tb.world.now().as_ms_f64();
        if now_ms >= end_ms {
            break;
        }
        if now_ms >= next_move_ms {
            current = 1 - current;
            register_at(current);
            next_move_ms += move_period_s as f64 * 1000.0;
        }
        let (binding, took, _) = tb.world.measure(|| hns.find_nsm(&qc, &name));
        let binding = binding.expect("find");
        queries += 1;
        total_ms += took.as_ms_f64();
        if binding.host != hosts[current] {
            stale += 1;
        }
        // Idle until the next query.
        let spent = took.as_ms_f64();
        let idle = (query_period_s as f64 * 1000.0 - spent).max(0.0);
        tb.world.charge_ms(idle);
    }
    TtlPoint {
        ttl_secs,
        mean_ms: total_ms / queries.max(1) as f64,
        stale_fraction: stale as f64 / queries.max(1) as f64,
    }
}

/// Runs the sweep.
pub fn run() -> PlainTable {
    let mut table = PlainTable::new(
        "Ablation A2 — TTL invalidation: hit economy vs staleness \
         (NSM moves every 30 min, one query per minute, 4 h)",
        vec!["ttl (s)", "mean FindNSM (ms)", "stale results"],
    );
    for ttl in [10u32, 60, 600, 3600] {
        let point = run_point(ttl, 1800, 60, 4 * 3600);
        table.push_row(vec![
            point.ttl_secs.to_string(),
            format!("{:.1}", point.mean_ms),
            format!("{:.1}%", point.stale_fraction * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_ttl_is_faster_but_staler() {
        let short = run_point(10, 1800, 60, 2 * 3600);
        let long = run_point(3600, 1800, 60, 2 * 3600);
        assert!(
            long.mean_ms < short.mean_ms,
            "long TTL should amortize: {} vs {}",
            long.mean_ms,
            short.mean_ms
        );
        assert!(
            long.stale_fraction > short.stale_fraction,
            "long TTL should be staler: {} vs {}",
            long.stale_fraction,
            short.stale_fraction
        );
    }

    #[test]
    fn short_ttl_bounds_staleness() {
        let point = run_point(10, 1800, 60, 2 * 3600);
        // With a 10 s TTL and 60 s query period, every query refetches:
        // at most the query immediately straddling a move can be stale.
        assert!(
            point.stale_fraction < 0.03,
            "stale {}",
            point.stale_fraction
        );
    }
}

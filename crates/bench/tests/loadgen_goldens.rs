//! The load engine must not perturb the virtual-time goldens.
//!
//! The sharded dispatch work (composed binding cache, batched
//! virtual-time charging, per-worker worlds) is pure throughput
//! machinery: it must never change what the simulation *computes*. This
//! test drives an 8-thread closed-loop run — binding cache on, batched
//! charging on, worker-striped clocks hot — and then re-renders the
//! flagship deterministic experiments in the same process, asserting
//! they are byte-identical to the committed golden and to a fresh
//! render. Any leakage from the load path into simulation semantics
//! (a stray charge, a perturbed instant, thread-dependent metric
//! registration) fails here.

use hns_bench::experiments as exp;
use hns_bench::loadgen;

#[test]
fn eight_thread_load_run_leaves_goldens_byte_identical() {
    let config = loadgen::LoadConfig {
        threads: vec![8],
        ops_per_thread: 100,
        offered_qps: vec![2_000.0],
        open_threads: 2,
        open_duration_ms: 100,
        ..loadgen::LoadConfig::default()
    };
    let rep = loadgen::run(&config);
    assert_eq!(rep.runs[0].ops, 800, "8 workers completed every op");
    assert!(!rep.open_runs.is_empty());

    // table31, after the load run, on the load run's threads' process:
    // byte-identical to the committed golden.
    let rendered = format!(
        "=== experiment: table31 ===\n{}\n",
        exp::table31::run().render()
    );
    let golden = include_str!("../golden/table31.txt");
    assert!(
        rendered == golden,
        "table31 diverged after an 8-thread load run\n--- golden ---\n{golden}\n--- got ---\n{rendered}"
    );

    // The traced scenario (spans + metrics snapshot) is equally a pure
    // function of the cost model; two renders must agree byte-for-byte.
    let a = exp::traced::run().render();
    let b = exp::traced::run().render();
    assert_eq!(a, b, "traced render must stay deterministic");
}

//! Byte-exact determinism of the flagship virtual-time experiment.
//!
//! The golden file is the committed stdout of `experiments table31`.
//! Every run — regardless of thread count, machine, or the real-time
//! load engine's concurrency work — must reproduce it exactly: the
//! virtual-time results are a function of the cost model and the seed,
//! nothing else. If a hot-path change (cache sharding, clock striping,
//! snapshot reads) perturbs this output by even one byte, it changed
//! simulation semantics, not just performance, and this test fails.

use hns_bench::experiments as exp;

#[test]
fn table31_matches_committed_golden_output() {
    let rendered = format!(
        "=== experiment: table31 ===\n{}\n",
        exp::table31::run().render()
    );
    let golden = include_str!("../golden/table31.txt");
    assert!(
        rendered == golden,
        "table31 output diverged from golden/table31.txt\n--- golden ---\n{golden}\n--- got ---\n{rendered}"
    );
}

#[test]
fn table31_is_stable_across_repeated_runs_in_process() {
    let a = exp::table31::run().render();
    let b = exp::table31::run().render();
    assert_eq!(a, b);
}

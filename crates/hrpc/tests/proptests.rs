//! Property-based tests for the RPC fabric.

use std::sync::Arc;

use proptest::prelude::*;

use hrpc::net::{LossPlan, RpcNet};
use hrpc::server::ProcServer;
use hrpc::{ComponentSet, HrpcBinding, ProgramId, RpcError};
use simnet::topology::NetAddr;
use simnet::world::World;
use wire::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Void),
        any::<bool>().prop_map(Value::Bool),
        any::<u32>().prop_map(Value::U32),
        "[a-zA-Z0-9 .:_-]{0,32}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..3).prop_map(|fields| {
                let mut seen = std::collections::HashSet::new();
                Value::Struct(
                    fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

fn suites() -> [ComponentSet; 4] {
    [
        ComponentSet::sun(),
        ComponentSet::courier(),
        ComponentSet::raw_tcp(0),
        ComponentSet::raw_udp(0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_payload_survives_any_suite(payload in arb_value()) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        let svc = Arc::new(ProcServer::new("echo").with_proc(1, |_c, a| Ok(a.clone())));
        let port = net.export(server, ProgramId(7), svc);
        for components in suites() {
            let binding = HrpcBinding {
                host: server,
                addr: NetAddr::of(server),
                program: ProgramId(7),
                port,
                components,
            };
            let reply = net.call(client, &binding, 1, &payload).expect("call");
            prop_assert_eq!(reply, payload.clone());
        }
    }

    #[test]
    fn loss_outcomes_are_deterministic_per_seed(seed in any::<u64>(), prob in 0.0f64..1.0) {
        let run = |seed: u64| {
            let world = World::paper();
            let client = world.add_host("client");
            let server = world.add_host("server");
            let net = RpcNet::new(Arc::clone(&world));
            let svc = Arc::new(ProcServer::new("echo").with_proc(1, |_c, a| Ok(a.clone())));
            let port = net.export(server, ProgramId(7), svc);
            net.set_loss(Some(LossPlan::new(prob, seed)));
            let binding = HrpcBinding {
                host: server,
                addr: NetAddr::of(server),
                program: ProgramId(7),
                port,
                components: ComponentSet::raw_udp(port),
            };
            (0..16)
                .map(|_| net.call(client, &binding, 1, &Value::U32(1)).is_ok())
                .collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn stream_suites_never_time_out(prob in 0.0f64..1.0, seed in any::<u64>()) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        let svc = Arc::new(ProcServer::new("echo").with_proc(1, |_c, a| Ok(a.clone())));
        let port = net.export(server, ProgramId(7), svc);
        net.set_loss(Some(LossPlan::new(prob, seed)));
        for components in [ComponentSet::sun(), ComponentSet::courier(), ComponentSet::raw_tcp(port)] {
            let binding = HrpcBinding {
                host: server,
                addr: NetAddr::of(server),
                program: ProgramId(7),
                port,
                components,
            };
            prop_assert!(net.call(client, &binding, 1, &Value::Void).is_ok());
        }
    }

    #[test]
    fn remote_calls_always_cost_more_than_local(payload in arb_value()) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        let svc = Arc::new(ProcServer::new("echo").with_proc(1, |_c, a| Ok(a.clone())));
        let port = net.export(server, ProgramId(7), svc);
        let binding = HrpcBinding {
            host: server,
            addr: NetAddr::of(server),
            program: ProgramId(7),
            port,
            components: ComponentSet::sun(),
        };
        let (_, remote, _) = world.measure(|| net.call(client, &binding, 1, &payload));
        let (_, local, _) = world.measure(|| net.call(server, &binding, 1, &payload));
        prop_assert!(remote > local, "remote {} <= local {}", remote, local);
        prop_assert!(remote.as_ms_f64() >= 33.0);
        prop_assert!(local.as_ms_f64() < 1.0);
    }

    #[test]
    fn unknown_targets_error_not_panic(port in 1u16..u16::MAX, proc_id in 0u32..64) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        let binding = HrpcBinding {
            host: server,
            addr: NetAddr::of(server),
            program: ProgramId(1),
            port,
            components: ComponentSet::raw_tcp(port),
        };
        let result = net.call(client, &binding, proc_id, &Value::Void);
        // Built-in ports answer their own protocols; everything else must
        // be a clean error.
        if port != hrpc::net::PORTMAP_PORT && port != hrpc::net::EXCHANGE_PORT {
            let is_no_service = matches!(result, Err(RpcError::NoSuchService { .. }));
            prop_assert!(is_no_service);
        } else {
            prop_assert!(result.is_err());
        }
    }
}

//! Control-protocol semantics under message loss: retransmission,
//! duplicate execution, and at-most-once suppression.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use hrpc::net::{
    retry_backoff_ms, LossPlan, RpcNet, LEG_REPLY, LEG_REQUEST, RETRY_BACKOFF_BASE_MS,
    RETRY_BACKOFF_CAP_MS,
};
use hrpc::server::{CallCtx, RpcService};
use hrpc::{ComponentSet, HrpcBinding, ProgramId, RpcError, RpcResult};
use simnet::faults::FaultPlan;
use simnet::topology::{HostId, NetAddr};
use simnet::world::World;
use wire::Value;

/// A service with an observable side effect per execution.
struct Counter {
    executions: AtomicU32,
}

impl RpcService for Counter {
    fn service_name(&self) -> &str {
        "counter"
    }
    fn dispatch(&self, _ctx: &CallCtx<'_>, _proc: u32, _args: &Value) -> RpcResult<Value> {
        let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(Value::U32(n))
    }
}

struct Env {
    world: Arc<World>,
    net: Arc<RpcNet>,
    client: HostId,
    server: HostId,
    counter: Arc<Counter>,
    port: u16,
}

fn env() -> Env {
    let world = World::paper();
    let client = world.add_host("client");
    let server = world.add_host("server");
    let net = RpcNet::new(Arc::clone(&world));
    let counter = Arc::new(Counter {
        executions: AtomicU32::new(0),
    });
    let port = net.export(
        server,
        ProgramId(5),
        Arc::clone(&counter) as Arc<dyn RpcService>,
    );
    Env {
        world,
        net,
        client,
        server,
        counter,
        port,
    }
}

fn binding(env: &Env, components: ComponentSet) -> HrpcBinding {
    HrpcBinding {
        host: env.server,
        addr: NetAddr::of(env.server),
        program: ProgramId(5),
        port: env.port,
        components,
    }
}

/// Runs calls under loss and returns (successful calls, executions).
fn run_lossy(env: &Env, components: ComponentSet, calls: u32, seed: u64) -> (u32, u32) {
    env.net.set_loss(Some(LossPlan::new(0.35, seed)));
    env.counter.executions.store(0, Ordering::SeqCst);
    let b = binding(env, components);
    let mut ok = 0;
    for _ in 0..calls {
        if env.net.call(env.client, &b, 1, &Value::Void).is_ok() {
            ok += 1;
        }
    }
    env.net.set_loss(None);
    (ok, env.counter.executions.load(Ordering::SeqCst))
}

#[test]
fn raw_udp_without_call_state_executes_duplicates() {
    let env = env();
    let (ok, executions) = run_lossy(&env, ComponentSet::raw_udp(env.port), 60, 7);
    assert!(ok >= 50, "too few successes: {ok}");
    // Lost replies force retransmissions that re-execute the call.
    assert!(
        executions > ok,
        "expected duplicate executions: ok {ok}, executions {executions}"
    );
}

#[test]
fn at_most_once_suppresses_duplicate_executions() {
    let env = env();
    let (ok, executions) = run_lossy(&env, ComponentSet::raw_udp_at_most_once(env.port), 60, 7);
    assert!(ok >= 50, "too few successes: {ok}");
    // Every successful call executed exactly once; failed calls executed
    // at most once.
    assert!(
        executions <= 60,
        "at-most-once violated: ok {ok}, executions {executions}"
    );
    assert!(executions >= ok, "every success implies one execution");
}

#[test]
fn lossless_calls_execute_exactly_once_under_any_control() {
    let env = env();
    for components in [
        ComponentSet::sun(),
        ComponentSet::courier(),
        ComponentSet::raw_tcp(env.port),
        ComponentSet::raw_udp(env.port),
        ComponentSet::raw_udp_at_most_once(env.port),
    ] {
        env.counter.executions.store(0, Ordering::SeqCst);
        let b = binding(&env, components);
        for _ in 0..10 {
            env.net.call(env.client, &b, 1, &Value::Void).expect("call");
        }
        assert_eq!(env.counter.executions.load(Ordering::SeqCst), 10);
    }
}

#[test]
fn retransmissions_cost_virtual_time() {
    let env = env();
    // No loss: baseline.
    let b = binding(&env, ComponentSet::raw_udp(env.port));
    let (_, clean, _) = env
        .world
        .measure(|| env.net.call(env.client, &b, 1, &Value::Void));

    // Certain request loss on the first three attempts is impossible to
    // arrange exactly with a probabilistic plan, so compare aggregates:
    env.net.set_loss(Some(LossPlan::new(0.5, 11)));
    let mut total = 0.0;
    let calls = 40;
    for _ in 0..calls {
        let (_, took, _) = env
            .world
            .measure(|| env.net.call(env.client, &b, 1, &Value::Void));
        total += took.as_ms_f64();
    }
    env.net.set_loss(None);
    let mean = total / f64::from(calls);
    assert!(
        mean > clean.as_ms_f64() * 1.4,
        "loss must cost time: clean {} vs lossy mean {mean}",
        clean.as_ms_f64()
    );
}

#[test]
fn total_loss_times_out_with_attempt_budget() {
    let env = env();
    env.net.set_loss(Some(LossPlan::new(1.0, 3)));
    let b = binding(&env, ComponentSet::raw_udp_at_most_once(env.port));
    let err = env.net.call(env.client, &b, 1, &Value::Void).unwrap_err();
    assert!(matches!(err, RpcError::Timeout { attempts: 4 }), "{err}");
    assert_eq!(env.counter.executions.load(Ordering::SeqCst), 0);
}

#[test]
fn backoff_is_capped_exponential() {
    // 50 · 2^(attempt−1), capped at 800 ms, for any attempt number.
    assert_eq!(retry_backoff_ms(1), RETRY_BACKOFF_BASE_MS);
    assert_eq!(retry_backoff_ms(2), 100.0);
    assert_eq!(retry_backoff_ms(3), 200.0);
    assert_eq!(retry_backoff_ms(4), 400.0);
    assert_eq!(retry_backoff_ms(5), 800.0);
    assert_eq!(retry_backoff_ms(6), RETRY_BACKOFF_CAP_MS, "capped");
    assert_eq!(retry_backoff_ms(100), RETRY_BACKOFF_CAP_MS, "no overflow");
    assert_eq!(retry_backoff_ms(0), RETRY_BACKOFF_BASE_MS, "degenerate");
}

#[test]
fn crashed_host_honors_attempt_budget_and_charges_virtual_backoff() {
    let env = env();
    let mut plan = FaultPlan::new();
    plan.crash(env.server, env.world.now(), None);
    env.world.set_faults(Some(plan));

    let b = binding(&env, ComponentSet::raw_udp(env.port));
    let budget = b.components.control.max_attempts();
    let wall = std::time::Instant::now();
    let (result, took, _) = env
        .world
        .measure(|| env.net.call(env.client, &b, 1, &Value::Void));
    let wall = wall.elapsed();

    match result.unwrap_err() {
        RpcError::HostUnreachable { host, attempts } => {
            assert_eq!(host, env.server);
            assert_eq!(attempts, budget, "gave up exactly at the budget");
        }
        other => panic!("expected HostUnreachable, got {other}"),
    }
    assert_eq!(env.counter.executions.load(Ordering::SeqCst), 0);
    // The backoff between the budget's attempts is charged to *virtual*
    // time (50 + 100 + 200 ms for a budget of 4)…
    let backoff_ms: f64 = (1..budget).map(retry_backoff_ms).sum();
    assert!(
        took.as_ms_f64() >= backoff_ms,
        "virtual time must include the backoff: {} < {backoff_ms}",
        took.as_ms_f64()
    );
    // …while wall-clock time stays at simulation speed: nothing sleeps.
    assert!(
        wall < std::time::Duration::from_secs(2),
        "backoff must not sleep on the wall clock: {wall:?}"
    );

    env.world.set_faults(None);
    env.net
        .call(env.client, &b, 1, &Value::Void)
        .expect("heals");
}

/// Regression for the loss-determinism bug: the old implementation drew
/// from a shared RNG under the loss mutex on every datagram attempt, so
/// the *order* of concurrent loadgen threads changed which calls lost
/// their datagrams. Hash-derived draws depend only on (xid, attempt,
/// leg), so an 8-thread run must match a sequential replay exactly.
#[test]
fn concurrent_loss_draws_are_order_independent() {
    const THREADS: u64 = 8;
    const CALLS_PER_THREAD: u64 = 50;
    let plan = LossPlan::new(0.5, 1987);

    let env = env();
    env.net.set_loss(Some(plan));
    let b = binding(&env, ComponentSet::raw_udp(env.port));
    let budget = b.components.control.max_attempts();
    let ok = Arc::new(AtomicU32::new(0));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let env = &env;
            let b = &b;
            let ok = Arc::clone(&ok);
            scope.spawn(move || {
                for _ in 0..CALLS_PER_THREAD {
                    if env.net.call(env.client, b, 1, &Value::Void).is_ok() {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    env.net.set_loss(None);

    // Sequential replay over the same xid range (fresh nets assign xids
    // from 1): per xid, walk the attempts the control protocol makes and
    // classify from the pure per-(xid, attempt, leg) draws alone.
    let mut expect_ok = 0u32;
    let mut expect_lost = 0u64;
    for xid in 1..=(THREADS * CALLS_PER_THREAD) {
        let mut succeeded = false;
        for attempt in 1..=budget {
            if plan.would_drop(xid, attempt, LEG_REQUEST) {
                expect_lost += 1;
                continue;
            }
            if plan.would_drop(xid, attempt, LEG_REPLY) {
                expect_lost += 1;
                continue;
            }
            succeeded = true;
            break;
        }
        if succeeded {
            expect_ok += 1;
        }
    }
    assert_eq!(
        ok.load(Ordering::SeqCst),
        expect_ok,
        "thread interleaving must not change which calls fail"
    );
    let snap = env.world.metrics().snapshot();
    assert_eq!(
        snap.counter("hrpc_net", "datagrams_lost"),
        Some(expect_lost),
        "…nor how many datagrams were lost"
    );
}

#[test]
fn distinct_calls_never_share_reply_cache_entries() {
    let env = env();
    // At-most-once must not confuse *different* calls: each fresh call
    // gets a fresh xid and a fresh execution.
    let b = binding(&env, ComponentSet::raw_udp_at_most_once(env.port));
    let first = env.net.call(env.client, &b, 1, &Value::Void).expect("call");
    let second = env.net.call(env.client, &b, 1, &Value::Void).expect("call");
    assert_eq!(first, Value::U32(1));
    assert_eq!(second, Value::U32(2));
}

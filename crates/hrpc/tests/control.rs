//! Control-protocol semantics under message loss: retransmission,
//! duplicate execution, and at-most-once suppression.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use hrpc::net::{LossPlan, RpcNet};
use hrpc::server::{CallCtx, RpcService};
use hrpc::{ComponentSet, HrpcBinding, ProgramId, RpcError, RpcResult};
use simnet::topology::{HostId, NetAddr};
use simnet::world::World;
use wire::Value;

/// A service with an observable side effect per execution.
struct Counter {
    executions: AtomicU32,
}

impl RpcService for Counter {
    fn service_name(&self) -> &str {
        "counter"
    }
    fn dispatch(&self, _ctx: &CallCtx<'_>, _proc: u32, _args: &Value) -> RpcResult<Value> {
        let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(Value::U32(n))
    }
}

struct Env {
    world: Arc<World>,
    net: Arc<RpcNet>,
    client: HostId,
    server: HostId,
    counter: Arc<Counter>,
    port: u16,
}

fn env() -> Env {
    let world = World::paper();
    let client = world.add_host("client");
    let server = world.add_host("server");
    let net = RpcNet::new(Arc::clone(&world));
    let counter = Arc::new(Counter {
        executions: AtomicU32::new(0),
    });
    let port = net.export(
        server,
        ProgramId(5),
        Arc::clone(&counter) as Arc<dyn RpcService>,
    );
    Env {
        world,
        net,
        client,
        server,
        counter,
        port,
    }
}

fn binding(env: &Env, components: ComponentSet) -> HrpcBinding {
    HrpcBinding {
        host: env.server,
        addr: NetAddr::of(env.server),
        program: ProgramId(5),
        port: env.port,
        components,
    }
}

/// Runs calls under loss and returns (successful calls, executions).
fn run_lossy(env: &Env, components: ComponentSet, calls: u32, seed: u64) -> (u32, u32) {
    env.net.set_loss(Some(LossPlan::new(0.35, seed)));
    env.counter.executions.store(0, Ordering::SeqCst);
    let b = binding(env, components);
    let mut ok = 0;
    for _ in 0..calls {
        if env.net.call(env.client, &b, 1, &Value::Void).is_ok() {
            ok += 1;
        }
    }
    env.net.set_loss(None);
    (ok, env.counter.executions.load(Ordering::SeqCst))
}

#[test]
fn raw_udp_without_call_state_executes_duplicates() {
    let env = env();
    let (ok, executions) = run_lossy(&env, ComponentSet::raw_udp(env.port), 60, 7);
    assert!(ok >= 50, "too few successes: {ok}");
    // Lost replies force retransmissions that re-execute the call.
    assert!(
        executions > ok,
        "expected duplicate executions: ok {ok}, executions {executions}"
    );
}

#[test]
fn at_most_once_suppresses_duplicate_executions() {
    let env = env();
    let (ok, executions) = run_lossy(&env, ComponentSet::raw_udp_at_most_once(env.port), 60, 7);
    assert!(ok >= 50, "too few successes: {ok}");
    // Every successful call executed exactly once; failed calls executed
    // at most once.
    assert!(
        executions <= 60,
        "at-most-once violated: ok {ok}, executions {executions}"
    );
    assert!(executions >= ok, "every success implies one execution");
}

#[test]
fn lossless_calls_execute_exactly_once_under_any_control() {
    let env = env();
    for components in [
        ComponentSet::sun(),
        ComponentSet::courier(),
        ComponentSet::raw_tcp(env.port),
        ComponentSet::raw_udp(env.port),
        ComponentSet::raw_udp_at_most_once(env.port),
    ] {
        env.counter.executions.store(0, Ordering::SeqCst);
        let b = binding(&env, components);
        for _ in 0..10 {
            env.net.call(env.client, &b, 1, &Value::Void).expect("call");
        }
        assert_eq!(env.counter.executions.load(Ordering::SeqCst), 10);
    }
}

#[test]
fn retransmissions_cost_virtual_time() {
    let env = env();
    // No loss: baseline.
    let b = binding(&env, ComponentSet::raw_udp(env.port));
    let (_, clean, _) = env
        .world
        .measure(|| env.net.call(env.client, &b, 1, &Value::Void));

    // Certain request loss on the first three attempts is impossible to
    // arrange exactly with a probabilistic plan, so compare aggregates:
    env.net.set_loss(Some(LossPlan::new(0.5, 11)));
    let mut total = 0.0;
    let calls = 40;
    for _ in 0..calls {
        let (_, took, _) = env
            .world
            .measure(|| env.net.call(env.client, &b, 1, &Value::Void));
        total += took.as_ms_f64();
    }
    env.net.set_loss(None);
    let mean = total / f64::from(calls);
    assert!(
        mean > clean.as_ms_f64() * 1.4,
        "loss must cost time: clean {} vs lossy mean {mean}",
        clean.as_ms_f64()
    );
}

#[test]
fn total_loss_times_out_with_attempt_budget() {
    let env = env();
    env.net.set_loss(Some(LossPlan::new(1.0, 3)));
    let b = binding(&env, ComponentSet::raw_udp_at_most_once(env.port));
    let err = env.net.call(env.client, &b, 1, &Value::Void).unwrap_err();
    assert!(matches!(err, RpcError::Timeout { attempts: 4 }), "{err}");
    assert_eq!(env.counter.executions.load(Ordering::SeqCst), 0);
}

#[test]
fn distinct_calls_never_share_reply_cache_entries() {
    let env = env();
    // At-most-once must not confuse *different* calls: each fresh call
    // gets a fresh xid and a fresh execution.
    let b = binding(&env, ComponentSet::raw_udp_at_most_once(env.port));
    let first = env.net.call(env.client, &b, 1, &Value::Void).expect("call");
    let second = env.net.call(env.client, &b, 1, &Value::Void).expect("call");
    assert_eq!(first, Value::U32(1));
    assert_eq!(second, Value::U32(2));
}

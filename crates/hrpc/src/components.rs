//! The five HRPC components and their mix-and-match suites.
//!
//! "The HRPC design involves the careful specification of clean interfaces
//! between the five principal components of an RPC facility: the stubs ...
//! the binding protocol ... the data representation ... the transport
//! protocol ... and the control protocol. ... These black boxes can be
//! 'mixed and matched' to emulate different communication protocols at
//! call-time. The set of protocols to be used is determined dynamically at
//! bind-time."
//!
//! Stubs live in [`crate::stub`]; the other four are value types here, so a
//! [`ComponentSet`] can be carried inside a binding, cached, and sent over
//! the wire.

use simnet::costs::RpcSuiteKind;
use wire::WireFormat;

/// The transport protocol component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// TCP as used under Sun RPC.
    SunTcp,
    /// Xerox SPP (sequenced packet protocol), under Courier.
    CourierSpp,
    /// A raw TCP byte-stream connection.
    RawTcp,
    /// A raw UDP datagram exchange.
    RawUdp,
    /// A native DNS UDP exchange. Not one of the HRPC emulation suites:
    /// this is what the *standard* BIND resolver speaks, bypassing the
    /// HRPC control layer (and therefore cheaper per call).
    DnsUdp,
}

impl Transport {
    /// True for datagram transports that may drop messages.
    pub fn is_datagram(self) -> bool {
        matches!(self, Transport::RawUdp | Transport::DnsUdp)
    }
}

/// The control protocol component (call identification, retransmission,
/// at-most-once bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlProtocol {
    /// Sun RPC's XID-based control.
    Sun,
    /// Courier's call/return control.
    Courier,
    /// The minimal "make a request and wait for a response" control used by
    /// the Raw HRPC suite.
    Raw {
        /// Maximum send attempts before reporting a timeout (datagram
        /// transports only; stream transports never retransmit).
        max_attempts: u32,
        /// Whether the server suppresses duplicate executions of a
        /// retransmitted call (at-most-once bookkeeping).
        at_most_once: bool,
    },
}

impl ControlProtocol {
    /// Maximum attempts this control protocol will make on a lossy
    /// datagram transport.
    pub fn max_attempts(self) -> u32 {
        match self {
            ControlProtocol::Sun => 3,
            ControlProtocol::Courier => 3,
            ControlProtocol::Raw { max_attempts, .. } => max_attempts.max(1),
        }
    }

    /// Whether the protocol keeps at-most-once call state: a retransmitted
    /// request is answered from the reply cache instead of re-executing.
    /// Sun and Courier track call state; the Raw suite is configurable.
    pub fn at_most_once(self) -> bool {
        match self {
            ControlProtocol::Sun | ControlProtocol::Courier => true,
            ControlProtocol::Raw { at_most_once, .. } => at_most_once,
        }
    }
}

/// The binding protocol component: how a client finds the port of a named
/// program on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingProtocol {
    /// Query the Sun portmapper on the target host.
    SunPortmapper,
    /// Query the Courier exchange listener on the target host.
    CourierExchange,
    /// The port is fixed and known in advance.
    StaticPort(u16),
}

/// A complete, bind-time-selected set of components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentSet {
    /// Data representation.
    pub data_rep: WireFormat,
    /// Transport protocol.
    pub transport: Transport,
    /// Control protocol.
    pub control: ControlProtocol,
    /// Binding protocol.
    pub binding: BindingProtocol,
}

impl ComponentSet {
    /// The Sun RPC emulation suite: XDR over TCP with portmapper binding.
    pub fn sun() -> ComponentSet {
        ComponentSet {
            data_rep: WireFormat::Xdr,
            transport: Transport::SunTcp,
            control: ControlProtocol::Sun,
            binding: BindingProtocol::SunPortmapper,
        }
    }

    /// The Courier emulation suite: Courier encoding over SPP.
    pub fn courier() -> ComponentSet {
        ComponentSet {
            data_rep: WireFormat::Courier,
            transport: Transport::CourierSpp,
            control: ControlProtocol::Courier,
            binding: BindingProtocol::CourierExchange,
        }
    }

    /// The Raw HRPC suite over TCP: "allows HRPC clients to make calls to
    /// any message passing program that conforms with the basic RPC
    /// paradigm of 'make a request and wait for a response'".
    pub fn raw_tcp(port: u16) -> ComponentSet {
        ComponentSet {
            data_rep: WireFormat::Xdr,
            transport: Transport::RawTcp,
            control: ControlProtocol::Raw {
                max_attempts: 1,
                at_most_once: false,
            },
            binding: BindingProtocol::StaticPort(port),
        }
    }

    /// The Raw HRPC suite over UDP datagrams (no duplicate suppression —
    /// callers must be idempotent, the classic raw-datagram caveat).
    pub fn raw_udp(port: u16) -> ComponentSet {
        ComponentSet {
            data_rep: WireFormat::Xdr,
            transport: Transport::RawUdp,
            control: ControlProtocol::Raw {
                max_attempts: 4,
                at_most_once: false,
            },
            binding: BindingProtocol::StaticPort(port),
        }
    }

    /// The Raw HRPC suite over UDP with at-most-once call state.
    pub fn raw_udp_at_most_once(port: u16) -> ComponentSet {
        ComponentSet {
            control: ControlProtocol::Raw {
                max_attempts: 4,
                at_most_once: true,
            },
            ..ComponentSet::raw_udp(port)
        }
    }

    /// The native DNS datagram exchange used by standard resolvers.
    pub fn native_dns(port: u16) -> ComponentSet {
        ComponentSet {
            data_rep: WireFormat::Xdr,
            transport: Transport::DnsUdp,
            control: ControlProtocol::Raw {
                max_attempts: 3,
                at_most_once: false,
            },
            binding: BindingProtocol::StaticPort(port),
        }
    }

    /// The cost-model class of this suite (drives per-call overhead).
    pub fn suite_kind(&self) -> RpcSuiteKind {
        match self.transport {
            Transport::SunTcp => RpcSuiteKind::Sun,
            Transport::CourierSpp => RpcSuiteKind::Courier,
            Transport::RawTcp => RpcSuiteKind::RawTcp,
            Transport::RawUdp => RpcSuiteKind::RawUdp,
            Transport::DnsUdp => RpcSuiteKind::DnsUdp,
        }
    }
}

/// The native system types HRPC can emulate peers of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeSystem {
    /// UNIX machines speaking Sun RPC (Suns, VAXen).
    SunUnix,
    /// Xerox D-machines under XDE, speaking Courier.
    XeroxXde,
    /// Systems reachable only via TCP message passing (e.g. Uniflex).
    TcpMessage,
    /// Systems reachable only via UDP message passing.
    UdpMessage,
}

impl NativeSystem {
    /// Assembles the component set that makes HRPC "look to each existing
    /// RPC mechanism exactly the same as a homogeneous peer".
    pub fn emulation_suite(self, static_port: Option<u16>) -> ComponentSet {
        match self {
            NativeSystem::SunUnix => ComponentSet::sun(),
            NativeSystem::XeroxXde => ComponentSet::courier(),
            NativeSystem::TcpMessage => ComponentSet::raw_tcp(static_port.unwrap_or(0)),
            NativeSystem::UdpMessage => ComponentSet::raw_udp(static_port.unwrap_or(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_constructors_pick_consistent_components() {
        let sun = ComponentSet::sun();
        assert_eq!(sun.data_rep, WireFormat::Xdr);
        assert_eq!(sun.binding, BindingProtocol::SunPortmapper);
        assert_eq!(sun.suite_kind(), RpcSuiteKind::Sun);

        let courier = ComponentSet::courier();
        assert_eq!(courier.data_rep, WireFormat::Courier);
        assert_eq!(courier.suite_kind(), RpcSuiteKind::Courier);

        assert_eq!(ComponentSet::raw_tcp(9).suite_kind(), RpcSuiteKind::RawTcp);
        assert_eq!(ComponentSet::raw_udp(9).suite_kind(), RpcSuiteKind::RawUdp);
    }

    #[test]
    fn only_udp_is_datagram() {
        assert!(Transport::RawUdp.is_datagram());
        assert!(!Transport::SunTcp.is_datagram());
        assert!(!Transport::CourierSpp.is_datagram());
        assert!(!Transport::RawTcp.is_datagram());
    }

    #[test]
    fn raw_control_clamps_attempts_to_one() {
        let raw = |n| ControlProtocol::Raw {
            max_attempts: n,
            at_most_once: false,
        };
        assert_eq!(raw(0).max_attempts(), 1);
        assert_eq!(raw(5).max_attempts(), 5);
        assert_eq!(ControlProtocol::Sun.max_attempts(), 3);
    }

    #[test]
    fn at_most_once_by_protocol() {
        assert!(ControlProtocol::Sun.at_most_once());
        assert!(ControlProtocol::Courier.at_most_once());
        assert!(!ComponentSet::raw_udp(1).control.at_most_once());
        assert!(ComponentSet::raw_udp_at_most_once(1).control.at_most_once());
    }

    #[test]
    fn emulation_suites_match_native_systems() {
        assert_eq!(
            NativeSystem::SunUnix.emulation_suite(None),
            ComponentSet::sun()
        );
        assert_eq!(
            NativeSystem::XeroxXde.emulation_suite(None),
            ComponentSet::courier()
        );
        assert_eq!(
            NativeSystem::TcpMessage.emulation_suite(Some(53)),
            ComponentSet::raw_tcp(53)
        );
        assert_eq!(
            NativeSystem::UdpMessage.emulation_suite(Some(53)),
            ComponentSet::raw_udp(53)
        );
    }

    #[test]
    fn components_mix_and_match() {
        // The whole point: a nonstandard combination is representable.
        let odd = ComponentSet {
            data_rep: WireFormat::Courier,
            transport: Transport::RawTcp,
            control: ControlProtocol::Sun,
            binding: BindingProtocol::StaticPort(7),
        };
        assert_eq!(odd.suite_kind(), RpcSuiteKind::RawTcp);
        assert_eq!(odd.data_rep, WireFormat::Courier);
    }
}

//! Client stubs.
//!
//! A stub pairs a caller host with the fabric, so application code reads
//! like a procedure call: `stub.call(&binding, PROC, &args)`.

use std::sync::Arc;

use simnet::topology::HostId;
use wire::{TypeDesc, Value};

use crate::binding::HrpcBinding;
use crate::error::{RpcError, RpcResult};
use crate::net::RpcNet;

/// A client-side stub bound to one caller host.
#[derive(Clone)]
pub struct ClientStub {
    net: Arc<RpcNet>,
    host: HostId,
}

impl ClientStub {
    /// Creates a stub for code running on `host`.
    pub fn new(net: Arc<RpcNet>, host: HostId) -> Self {
        ClientStub { net, host }
    }

    /// The host this stub originates calls from.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The underlying fabric.
    pub fn net(&self) -> &Arc<RpcNet> {
        &self.net
    }

    /// Makes a call through `binding`.
    pub fn call(&self, binding: &HrpcBinding, proc_id: u32, args: &Value) -> RpcResult<Value> {
        self.net.call(self.host, binding, proc_id, args)
    }

    /// Makes a call and validates the reply against an interface
    /// description, reproducing the stub's type discipline.
    pub fn call_typed(
        &self,
        binding: &HrpcBinding,
        proc_id: u32,
        args: &Value,
        reply_desc: &TypeDesc,
    ) -> RpcResult<Value> {
        let reply = self.call(binding, proc_id, args)?;
        reply_desc.check(&reply).map_err(RpcError::Wire)?;
        Ok(reply)
    }
}

impl std::fmt::Debug for ClientStub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientStub")
            .field("host", &self.host)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::ProgramId;
    use crate::components::ComponentSet;
    use crate::server::ProcServer;
    use simnet::topology::NetAddr;
    use simnet::world::World;

    fn setup() -> (ClientStub, HrpcBinding) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(world);
        let svc = Arc::new(
            ProcServer::new("svc")
                .with_proc(2, |_c, a| Ok(Value::record(vec![("echo", a.clone())]))),
        );
        let port = net.export(server, ProgramId(1), svc);
        let binding = HrpcBinding {
            host: server,
            addr: NetAddr::of(server),
            program: ProgramId(1),
            port,
            components: ComponentSet::sun(),
        };
        (ClientStub::new(net, client), binding)
    }

    #[test]
    fn stub_calls_through_binding() {
        let (stub, binding) = setup();
        let reply = stub.call(&binding, 2, &Value::U32(7)).expect("call");
        assert_eq!(reply, Value::record(vec![("echo", Value::U32(7))]));
        assert_eq!(stub.host(), stub.host());
    }

    #[test]
    fn typed_call_accepts_conforming_reply() {
        let (stub, binding) = setup();
        let desc = TypeDesc::record(vec![("echo", TypeDesc::U32)]);
        assert!(stub.call_typed(&binding, 2, &Value::U32(7), &desc).is_ok());
    }

    #[test]
    fn typed_call_rejects_nonconforming_reply() {
        let (stub, binding) = setup();
        let desc = TypeDesc::record(vec![("echo", TypeDesc::Str)]);
        let err = stub
            .call_typed(&binding, 2, &Value::U32(7), &desc)
            .unwrap_err();
        assert!(matches!(err, RpcError::Wire(_)));
    }
}

//! The RPC fabric: service export, port assignment, and synchronous calls
//! with virtual-time charging.
//!
//! Cost accounting rules (kept strict so nothing is double-charged):
//!
//! * `RpcNet::call` charges only *network* costs: the suite's round-trip
//!   overhead plus a per-kilobyte component, or the (effectively zero)
//!   local-call cost when caller and server are colocated.
//! * Interface-specific marshalling costs (Table 3.2's generated vs fast
//!   paths, `FindNSM` argument marshalling on remote hops, …) are charged
//!   by the *caller* that owns that interface.
//! * Server-side service time (BIND lookup, Clearinghouse auth + disk) is
//!   charged inside the service's `dispatch`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simnet::rng::DetRng;
use simnet::topology::{HostId, NetAddr};
use simnet::trace::TraceKind;
use simnet::world::World;
use wire::Value;

use crate::binding::{HrpcBinding, ProgramId};
use crate::components::ComponentSet;
use crate::error::{RpcError, RpcResult};
use crate::server::{CallCtx, RpcService};

/// Well-known port of the per-host Sun portmapper.
pub const PORTMAP_PORT: u16 = 111;
/// Well-known port of the per-host Courier exchange listener.
pub const EXCHANGE_PORT: u16 = 5;
/// Portmapper procedure: map a program number to its port.
pub const PMAP_GETPORT: u32 = 3;
/// Courier exchange procedure: map a service name to its port.
pub const EXCHANGE_RESOLVE: u32 = 1;

/// First dynamically assigned port.
const FIRST_DYNAMIC_PORT: u16 = 1024;

#[derive(Default)]
struct NetTables {
    services: HashMap<(HostId, u16), Arc<dyn RpcService>>,
    /// Per-host portmapper table: program number → (port, service name).
    programs: HashMap<(HostId, u32), (u16, String)>,
    /// Per-host Courier exchange table: service name → port.
    by_name: HashMap<(HostId, String), u16>,
    next_port: HashMap<HostId, u16>,
}

/// Deterministic datagram-loss injection.
#[derive(Debug)]
pub struct LossPlan {
    /// Probability that any single datagram attempt is lost.
    pub drop_prob: f64,
    rng: DetRng,
}

impl LossPlan {
    /// Creates a loss plan with the given drop probability and seed.
    pub fn new(drop_prob: f64, seed: u64) -> Self {
        LossPlan {
            drop_prob,
            rng: DetRng::new(seed),
        }
    }

    fn drops(&mut self) -> bool {
        self.rng.chance(self.drop_prob)
    }
}

/// Reply-cache entries kept before the at-most-once table is flushed.
const REPLY_CACHE_LIMIT: usize = 65_536;

/// The RPC fabric shared by all simulated components.
pub struct RpcNet {
    world: Arc<World>,
    tables: RwLock<NetTables>,
    loss: Mutex<Option<LossPlan>>,
    next_xid: std::sync::atomic::AtomicU64,
    /// At-most-once reply cache, keyed by (caller, call id).
    replies: Mutex<HashMap<(HostId, u64), Value>>,
}

impl RpcNet {
    /// Creates a fabric over `world`.
    pub fn new(world: Arc<World>) -> Arc<Self> {
        Arc::new(RpcNet {
            world,
            tables: RwLock::new(NetTables::default()),
            loss: Mutex::new(None),
            next_xid: std::sync::atomic::AtomicU64::new(1),
            replies: Mutex::new(HashMap::new()),
        })
    }

    /// The underlying simulation environment.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Installs (or clears) datagram loss injection.
    pub fn set_loss(&self, plan: Option<LossPlan>) {
        *self.loss.lock() = plan;
    }

    /// Exports `service` on `host` under `program`, assigning a fresh port.
    ///
    /// The program is registered with the host's portmapper and the service
    /// name with its Courier exchange listener, so both binding protocols
    /// can find it.
    pub fn export(&self, host: HostId, program: ProgramId, service: Arc<dyn RpcService>) -> u16 {
        let mut t = self.tables.write();
        let port_ref = t.next_port.entry(host).or_insert(FIRST_DYNAMIC_PORT);
        let port = *port_ref;
        *port_ref += 1;
        let name = service.service_name().to_string();
        t.services.insert((host, port), service);
        t.programs.insert((host, program.0), (port, name.clone()));
        t.by_name.insert((host, name), port);
        port
    }

    /// Exports `service` at a fixed well-known port (e.g. a DNS server at
    /// port 53). Also registers program and name mappings.
    ///
    /// # Panics
    ///
    /// Panics if the port is already taken on that host or collides with a
    /// built-in service port.
    pub fn export_at(
        &self,
        host: HostId,
        port: u16,
        program: ProgramId,
        service: Arc<dyn RpcService>,
    ) {
        assert!(
            port != PORTMAP_PORT && port != EXCHANGE_PORT,
            "port {port} is reserved for a built-in service"
        );
        let mut t = self.tables.write();
        assert!(
            !t.services.contains_key(&(host, port)),
            "port {port} already exported on {host}"
        );
        let name = service.service_name().to_string();
        t.services.insert((host, port), service);
        t.programs.insert((host, program.0), (port, name.clone()));
        t.by_name.insert((host, name), port);
    }

    /// Removes an exported service (used by failure-injection tests).
    pub fn unexport(&self, host: HostId, port: u16) {
        let mut t = self.tables.write();
        if let Some(service) = t.services.remove(&(host, port)) {
            let name = service.service_name().to_string();
            t.by_name.remove(&(host, name));
            t.programs.retain(|_, (p, _)| *p != port);
        }
    }

    fn lookup_service(&self, host: HostId, port: u16) -> RpcResult<Arc<dyn RpcService>> {
        self.tables
            .read()
            .services
            .get(&(host, port))
            .cloned()
            .ok_or(RpcError::NoSuchService { host, port })
    }

    /// Looks up a program's port via the host's portmapper table (the
    /// server side of [`PMAP_GETPORT`]).
    pub fn portmap_getport(&self, host: HostId, program: ProgramId) -> RpcResult<u16> {
        self.tables
            .read()
            .programs
            .get(&(host, program.0))
            .map(|(p, _)| *p)
            .ok_or(RpcError::NoSuchProgram {
                host,
                program: program.0,
            })
    }

    /// Looks up a service's port by name via the host's Courier exchange
    /// table (the server side of [`EXCHANGE_RESOLVE`]).
    pub fn exchange_resolve(&self, host: HostId, name: &str) -> RpcResult<u16> {
        self.tables
            .read()
            .by_name
            .get(&(host, name.to_string()))
            .copied()
            .ok_or_else(|| RpcError::NotFound(format!("service `{name}` on {host}")))
    }

    fn datagram_dropped(&self) -> bool {
        self.loss
            .lock()
            .as_mut()
            .map(LossPlan::drops)
            .unwrap_or(false)
    }

    /// Makes a synchronous call through `binding`, charging network costs.
    ///
    /// Datagram transports may lose the request or the reply; the control
    /// protocol retransmits up to its attempt budget. When a reply is lost
    /// the server has already executed the call — a control protocol with
    /// at-most-once bookkeeping answers the retransmission from its reply
    /// cache, while the plain Raw suite re-executes (observable duplicate
    /// effects, the classic datagram caveat).
    pub fn call(
        &self,
        caller: HostId,
        binding: &HrpcBinding,
        proc_id: u32,
        args: &Value,
    ) -> RpcResult<Value> {
        let components = binding.components;
        // Data flows through the real wire representation: encode at the
        // caller, decode at the server, and the same for the reply.
        let req_bytes = components.data_rep.encode(args)?;
        let decoded_args = components.data_rep.decode(&req_bytes)?;

        if self.world.topology.colocated(caller, binding.host) {
            self.world.charge_ms(self.world.costs.local_call);
            self.world.count_local_call();
            let reply = self.serve(caller, binding, proc_id, &decoded_args)?;
            let reply_bytes = components.data_rep.encode(&reply)?;
            return Ok(components.data_rep.decode(&reply_bytes)?);
        }

        let rtt = self.world.costs.rpc_rtt(components.suite_kind());
        let per_req = rtt + self.world.costs.per_kb * req_bytes.len() as f64 / 1024.0;
        let datagram = components.transport.is_datagram();
        let max_attempts = if datagram {
            components.control.max_attempts()
        } else {
            1
        };
        let xid = self
            .next_xid
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        let span = self.world.span_lazy(Some(caller), TraceKind::Rpc, || {
            format!(
                "rpc {} -> {}:{} prog {} ({:?})",
                caller,
                binding.host,
                binding.port,
                binding.program.0,
                components.suite_kind()
            )
        });
        let t0 = self.world.now();
        let mut attempts = 0;
        let result = loop {
            attempts += 1;
            self.world.charge_ms(per_req);
            self.world.count_remote_call(req_bytes.len() as u64);

            // Request leg.
            if datagram && self.datagram_dropped() {
                self.world.metrics().inc("hrpc_net", "datagrams_lost");
                self.world.trace(
                    Some(caller),
                    TraceKind::Rpc,
                    format!("request to {} lost (attempt {attempts})", binding.host),
                );
                if attempts >= max_attempts {
                    break Err(RpcError::Timeout { attempts });
                }
                continue;
            }

            // Execution, with at-most-once duplicate suppression where the
            // control protocol keeps call state.
            let served = if datagram && components.control.at_most_once() {
                let key = (caller, xid);
                // NB: take the cached value out before branching so the
                // lock guard is released (the else branch locks again).
                let cached = self.replies.lock().get(&key).cloned();
                if let Some(cached) = cached {
                    self.world.metrics().inc("hrpc_net", "reply_cache_hits");
                    self.world.trace(
                        Some(binding.host),
                        TraceKind::Rpc,
                        format!("duplicate xid {xid} answered from reply cache"),
                    );
                    Ok(cached)
                } else {
                    self.serve(caller, binding, proc_id, &decoded_args)
                        .inspect(|reply| {
                            let mut replies = self.replies.lock();
                            if replies.len() > REPLY_CACHE_LIMIT {
                                replies.clear();
                            }
                            replies.insert(key, reply.clone());
                        })
                }
            } else {
                self.serve(caller, binding, proc_id, &decoded_args)
            };
            let reply = match served {
                Ok(reply) => reply,
                Err(err) => break Err(err),
            };

            // Response leg.
            if datagram && self.datagram_dropped() {
                self.world.metrics().inc("hrpc_net", "datagrams_lost");
                self.world.trace(
                    Some(caller),
                    TraceKind::Rpc,
                    format!("reply from {} lost (attempt {attempts})", binding.host),
                );
                if attempts >= max_attempts {
                    break Err(RpcError::Timeout { attempts });
                }
                continue;
            }

            self.world.trace(
                Some(caller),
                TraceKind::Rpc,
                format!(
                    "call {} -> {}:{} prog {} ({:?})",
                    caller,
                    binding.host,
                    binding.port,
                    binding.program.0,
                    components.suite_kind()
                ),
            );
            break components.data_rep.encode(&reply).map_err(RpcError::from);
        };
        let result = result.and_then(|reply_bytes| {
            self.world
                .charge_ms(self.world.costs.per_kb * reply_bytes.len() as f64 / 1024.0);
            Ok(components.data_rep.decode(&reply_bytes)?)
        });

        span.add_round_trips(u64::from(attempts));
        drop(span);
        let took = self.world.now().since(t0);
        self.world
            .metrics()
            .record("hrpc_net", "remote_call_us", took.as_us());
        if result.is_err() {
            self.world.metrics().inc("hrpc_net", "call_errors");
        }
        result
    }

    fn serve(
        &self,
        caller: HostId,
        binding: &HrpcBinding,
        proc_id: u32,
        args: &Value,
    ) -> RpcResult<Value> {
        // Built-in per-host services.
        match binding.port {
            PORTMAP_PORT => return self.serve_portmap(binding.host, proc_id, args),
            EXCHANGE_PORT => return self.serve_exchange(binding.host, proc_id, args),
            _ => {}
        }
        let service = self.lookup_service(binding.host, binding.port)?;
        let ctx = CallCtx {
            net: self,
            world: &self.world,
            host: binding.host,
            caller,
        };
        service.dispatch(&ctx, proc_id, args)
    }

    fn serve_portmap(&self, host: HostId, proc_id: u32, args: &Value) -> RpcResult<Value> {
        self.world.charge_ms(self.world.costs.portmap_service);
        match proc_id {
            PMAP_GETPORT => {
                let program = ProgramId(args.u32_field("program")?);
                let port = self.portmap_getport(host, program)?;
                Ok(Value::U32(port as u32))
            }
            other => Err(RpcError::BadProcedure(other)),
        }
    }

    fn serve_exchange(&self, host: HostId, proc_id: u32, args: &Value) -> RpcResult<Value> {
        self.world.charge_ms(self.world.costs.portmap_service);
        match proc_id {
            EXCHANGE_RESOLVE => {
                let name = args.str_field("service")?;
                let port = self.exchange_resolve(host, name)?;
                Ok(Value::U32(port as u32))
            }
            other => Err(RpcError::BadProcedure(other)),
        }
    }

    /// Builds the binding for a built-in per-host service (portmapper or
    /// exchange listener) reachable over the given suite.
    pub fn builtin_binding(host: HostId, port: u16, components: ComponentSet) -> HrpcBinding {
        HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program: ProgramId(0),
            port,
            components,
        }
    }
}

impl std::fmt::Debug for RpcNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tables.read();
        f.debug_struct("RpcNet")
            .field("services", &t.services.len())
            .field("programs", &t.programs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentSet;
    use crate::server::ProcServer;

    fn setup() -> (Arc<World>, Arc<RpcNet>, HostId, HostId) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        (world, net, client, server)
    }

    fn echo_service() -> Arc<dyn RpcService> {
        Arc::new(ProcServer::new("echo").with_proc(1, |_ctx, args| Ok(args.clone())))
    }

    fn binding_for(net: &RpcNet, host: HostId, components: ComponentSet) -> HrpcBinding {
        let port = net
            .portmap_getport(host, ProgramId(77))
            .expect("registered");
        HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program: ProgramId(77),
            port,
            components,
        }
    }

    #[test]
    fn remote_call_roundtrips_and_charges_rtt() {
        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        let args = Value::record(vec![("msg", Value::str("hello"))]);
        let (reply, took, delta) = world.measure(|| net.call(client, &b, 1, &args));
        assert_eq!(reply.expect("call ok"), args);
        assert!(took.as_ms_f64() >= 33.0, "took {took}");
        assert!(took.as_ms_f64() < 36.0, "took {took}");
        assert_eq!(delta.remote_calls, 1);
    }

    #[test]
    fn local_call_is_effectively_free() {
        let (world, net, _client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        let (reply, took, delta) = world.measure(|| net.call(server, &b, 1, &Value::U32(5)));
        assert!(reply.is_ok());
        assert!(took.as_ms_f64() < 1.0, "took {took}");
        assert_eq!(delta.remote_calls, 0);
        assert_eq!(delta.local_calls, 1);
    }

    #[test]
    fn suites_have_distinct_costs() {
        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let mut times = Vec::new();
        for components in [
            ComponentSet::raw_tcp(0),
            ComponentSet::raw_udp(0),
            ComponentSet::sun(),
            ComponentSet::courier(),
        ] {
            let mut b = binding_for(&net, server, components);
            b.components = components;
            let (_r, took, _d) = world.measure(|| net.call(client, &b, 1, &Value::Void));
            times.push(took.as_ms_f64());
        }
        // raw_tcp < raw_udp < sun < courier per the calibrated model.
        assert!(
            times[0] < times[1] && times[1] < times[2] && times[2] < times[3],
            "{times:?}"
        );
    }

    #[test]
    fn unknown_service_and_procedure_fail() {
        let (_world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        assert!(matches!(
            net.call(client, &b, 99, &Value::Void),
            Err(RpcError::BadProcedure(99))
        ));
        let mut bad = b;
        bad.port = 9999;
        assert!(matches!(
            net.call(client, &bad, 1, &Value::Void),
            Err(RpcError::NoSuchService { .. })
        ));
    }

    #[test]
    fn portmapper_builtin_resolves_programs() {
        let (_world, net, client, server) = setup();
        let port = net.export(server, ProgramId(100_005), echo_service());
        let pm = RpcNet::builtin_binding(server, PORTMAP_PORT, ComponentSet::raw_udp(PORTMAP_PORT));
        let reply = net
            .call(
                client,
                &pm,
                PMAP_GETPORT,
                &Value::record(vec![("program", Value::U32(100_005))]),
            )
            .expect("getport");
        assert_eq!(reply, Value::U32(port as u32));
    }

    #[test]
    fn exchange_builtin_resolves_names() {
        let (_world, net, client, server) = setup();
        let port = net.export(server, ProgramId(5), echo_service());
        let ex = RpcNet::builtin_binding(server, EXCHANGE_PORT, ComponentSet::courier());
        let reply = net
            .call(
                client,
                &ex,
                EXCHANGE_RESOLVE,
                &Value::record(vec![("service", Value::str("echo"))]),
            )
            .expect("resolve");
        assert_eq!(reply, Value::U32(port as u32));
    }

    #[test]
    fn datagram_loss_retries_then_times_out() {
        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::raw_udp(0));

        // Total loss: every attempt drops, so the call times out after the
        // control protocol's maximum attempts, charging each attempt.
        net.set_loss(Some(LossPlan::new(1.0, 42)));
        let (result, took, delta) = world.measure(|| net.call(client, &b, 1, &Value::Void));
        assert!(matches!(result, Err(RpcError::Timeout { attempts: 4 })));
        assert!(took.as_ms_f64() >= 4.0 * 25.0, "took {took}");
        assert_eq!(delta.remote_calls, 4);

        // No loss: immediate success.
        net.set_loss(None);
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }

    #[test]
    fn stream_transports_ignore_loss_plan() {
        let (_world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        net.set_loss(Some(LossPlan::new(1.0, 42)));
        let b = binding_for(&net, server, ComponentSet::sun());
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }

    #[test]
    fn unexport_removes_service() {
        let (_world, net, client, server) = setup();
        let port = net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        net.unexport(server, port);
        assert!(matches!(
            net.call(client, &b, 1, &Value::Void),
            Err(RpcError::NoSuchService { .. })
        ));
        assert!(net.portmap_getport(server, ProgramId(77)).is_err());
    }

    #[test]
    fn nested_calls_originate_from_service_host() {
        let (world, net, client, server) = setup();
        let backend_host = world.add_host("backend");
        net.export(backend_host, ProgramId(88), echo_service());
        let backend_port = net
            .portmap_getport(backend_host, ProgramId(88))
            .expect("port");
        let backend = HrpcBinding {
            host: backend_host,
            addr: NetAddr::of(backend_host),
            program: ProgramId(88),
            port: backend_port,
            components: ComponentSet::raw_tcp(backend_port),
        };
        let frontend = Arc::new(ProcServer::new("frontend").with_proc(1, move |ctx, args| {
            ctx.net.call(ctx.host, &backend, 1, args)
        }));
        net.export(server, ProgramId(77), frontend);
        let b = binding_for(&net, server, ComponentSet::sun());
        let (reply, took, delta) = world.measure(|| net.call(client, &b, 1, &Value::U32(9)));
        assert_eq!(reply.expect("ok"), Value::U32(9));
        // Two remote hops: client->frontend (33) + frontend->backend (22).
        assert!(took.as_ms_f64() >= 55.0, "took {took}");
        assert_eq!(delta.remote_calls, 2);
    }

    #[test]
    #[should_panic(expected = "reserved for a built-in service")]
    fn export_at_reserved_port_panics() {
        let (_world, net, _client, server) = setup();
        net.export_at(server, PORTMAP_PORT, ProgramId(1), echo_service());
    }

    #[test]
    fn export_at_fixed_port() {
        let (_world, net, client, server) = setup();
        net.export_at(server, 53, ProgramId(99), echo_service());
        let b = HrpcBinding {
            host: server,
            addr: NetAddr::of(server),
            program: ProgramId(99),
            port: 53,
            components: ComponentSet::raw_tcp(53),
        };
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }
}

//! The RPC fabric: service export, port assignment, and synchronous calls
//! with virtual-time charging.
//!
//! Cost accounting rules (kept strict so nothing is double-charged):
//!
//! * `RpcNet::call` charges only *network* costs: the suite's round-trip
//!   overhead plus a per-kilobyte component, or the (effectively zero)
//!   local-call cost when caller and server are colocated.
//! * Interface-specific marshalling costs (Table 3.2's generated vs fast
//!   paths, `FindNSM` argument marshalling on remote hops, …) are charged
//!   by the *caller* that owns that interface.
//! * Server-side service time (BIND lookup, Clearinghouse auth + disk) is
//!   charged inside the service's `dispatch`.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simnet::faults::FaultKind;
use simnet::obs::{LazyCounter, LazyHistogram};
use simnet::topology::{HostId, NetAddr};
use simnet::trace::TraceKind;
use simnet::world::World;
use wire::Value;

use crate::binding::{HrpcBinding, ProgramId};
use crate::components::ComponentSet;
use crate::error::{RpcError, RpcResult};
use crate::server::{CallCtx, RpcService};

/// Well-known port of the per-host Sun portmapper.
pub const PORTMAP_PORT: u16 = 111;
/// Well-known port of the per-host Courier exchange listener.
pub const EXCHANGE_PORT: u16 = 5;
/// Portmapper procedure: map a program number to its port.
pub const PMAP_GETPORT: u32 = 3;
/// Courier exchange procedure: map a service name to its port.
pub const EXCHANGE_RESOLVE: u32 = 1;

/// First dynamically assigned port.
const FIRST_DYNAMIC_PORT: u16 = 1024;

/// Service/port/name registries. Read-mostly: exports happen during
/// setup, lookups on every remote call. Readers take an `Arc` snapshot
/// and resolve lock-free; writers rebuild and swap, so the call path
/// never serializes on the registry lock.
#[derive(Default, Clone)]
struct NetTables {
    services: HashMap<(HostId, u16), Arc<dyn RpcService>>,
    /// Per-host portmapper table: program number → (port, service name).
    programs: HashMap<(HostId, u32), (u16, String)>,
    /// Per-host Courier exchange table: service name → port.
    by_name: HashMap<(HostId, String), u16>,
    next_port: HashMap<HostId, u16>,
}

/// The request leg of a datagram exchange, for [`LossPlan::would_drop`].
pub const LEG_REQUEST: u8 = 0;
/// The reply leg of a datagram exchange, for [`LossPlan::would_drop`].
pub const LEG_REPLY: u8 = 1;

/// Deterministic datagram-loss injection.
///
/// Each draw is *hash-derived* from `(seed, xid, attempt, leg)` rather
/// than consumed from a shared sequential RNG stream. The seed design
/// advanced one `DetRng` under the `loss` mutex on every datagram
/// attempt, so the thread interleaving of a concurrent load generator
/// changed which call observed which draw — same seed, different loss
/// pattern. A hash-derived draw is a pure function of the call it
/// belongs to: concurrency cannot reorder it.
#[derive(Debug, Clone, Copy)]
pub struct LossPlan {
    /// Probability that any single datagram attempt is lost.
    pub drop_prob: f64,
    seed: u64,
}

impl LossPlan {
    /// Creates a loss plan with the given drop probability and seed.
    pub fn new(drop_prob: f64, seed: u64) -> Self {
        LossPlan { drop_prob, seed }
    }

    /// Whether the datagram for (`xid`, `attempt`, `leg`) is lost.
    ///
    /// Pure: equal inputs always agree, regardless of how calls from
    /// different threads interleave. Uses the same splitmix64 finalizer
    /// as [`simnet::rng::DetRng`] over the mixed key.
    pub fn would_drop(&self, xid: u64, attempt: u32, leg: u8) -> bool {
        let mut z = self
            .seed
            .wrapping_add(xid.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(
                ((u64::from(attempt) << 8) | u64::from(leg)).wrapping_mul(0x94D0_49BB_1331_11EB),
            );
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < self.drop_prob
    }
}

/// Base of the capped exponential backoff charged between attempts to
/// an unreachable (crashed or partitioned) host, in virtual ms.
pub const RETRY_BACKOFF_BASE_MS: f64 = 50.0;
/// Cap of the exponential backoff, in virtual ms.
pub const RETRY_BACKOFF_CAP_MS: f64 = 800.0;

/// Backoff charged after failed `attempt` (1-based) to an unreachable
/// host: 50, 100, 200, 400, 800, 800, … virtual milliseconds. Charged
/// against the virtual clock only — never wall-clock.
pub fn retry_backoff_ms(attempt: u32) -> f64 {
    let exp = attempt.saturating_sub(1).min(10);
    (RETRY_BACKOFF_BASE_MS * f64::from(1u32 << exp)).min(RETRY_BACKOFF_CAP_MS)
}

/// Total reply-cache entries kept for at-most-once bookkeeping.
const REPLY_CACHE_LIMIT: usize = 65_536;

/// Shard count for [`ReplyCache`]; power of two.
const REPLY_CACHE_SHARDS: usize = 16;

#[derive(Default)]
struct ReplyShard {
    map: HashMap<(HostId, u64), Value>,
    /// Insertion order, for FIFO eviction within the shard.
    order: VecDeque<(HostId, u64)>,
}

/// The at-most-once reply cache, keyed by (caller, call id).
///
/// Lock-striped by call id (xids are sequential, so striping on the low
/// bits spreads concurrent callers evenly), and each shard evicts its
/// own oldest entries when it exceeds its share of the capacity. The
/// seed design kept one global map and *cleared the whole table* at the
/// limit — a burst of fresh calls could wipe the cached reply an
/// in-flight retransmission still needed, silently re-executing a call
/// the protocol promised to execute at most once.
struct ReplyCache {
    shards: Vec<Mutex<ReplyShard>>,
    per_shard_cap: usize,
}

impl ReplyCache {
    fn new(capacity: usize) -> Self {
        ReplyCache {
            shards: (0..REPLY_CACHE_SHARDS)
                .map(|_| Mutex::new(ReplyShard::default()))
                .collect(),
            per_shard_cap: (capacity / REPLY_CACHE_SHARDS).max(1),
        }
    }

    fn shard_index(key: &(HostId, u64)) -> usize {
        key.1 as usize & (REPLY_CACHE_SHARDS - 1)
    }

    fn get(&self, key: &(HostId, u64)) -> Option<Value> {
        self.shards[Self::shard_index(key)]
            .lock()
            .map
            .get(key)
            .cloned()
    }

    fn insert(&self, key: (HostId, u64), value: Value) {
        let mut shard = self.shards[Self::shard_index(&key)].lock();
        if shard.map.insert(key, value).is_none() {
            shard.order.push_back(key);
        }
        while shard.map.len() > self.per_shard_cap {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            shard.map.remove(&oldest);
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }
}

/// Cached registry handles for the fabric's hot-path metrics, resolved
/// on first use so unexercised metrics never register (keeps snapshots
/// identical to the seed's lazy registration).
#[derive(Default)]
struct CallMetricHandles {
    remote_call_us: LazyHistogram,
    datagrams_lost: LazyCounter,
    reply_cache_hits: LazyCounter,
    call_errors: LazyCounter,
    fault_crashed: LazyCounter,
    fault_partitioned: LazyCounter,
    fault_spiked: LazyCounter,
    fault_unreachable: LazyCounter,
}

/// The RPC fabric shared by all simulated components.
pub struct RpcNet {
    world: Arc<World>,
    tables: RwLock<Arc<NetTables>>,
    loss: RwLock<Option<LossPlan>>,
    next_xid: std::sync::atomic::AtomicU64,
    replies: ReplyCache,
    call_metrics: CallMetricHandles,
}

impl RpcNet {
    /// Creates a fabric over `world`.
    pub fn new(world: Arc<World>) -> Arc<Self> {
        Arc::new(RpcNet {
            world,
            tables: RwLock::new(Arc::new(NetTables::default())),
            loss: RwLock::new(None),
            next_xid: std::sync::atomic::AtomicU64::new(1),
            replies: ReplyCache::new(REPLY_CACHE_LIMIT),
            call_metrics: CallMetricHandles::default(),
        })
    }

    /// The underlying simulation environment.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Installs (or clears) datagram loss injection.
    pub fn set_loss(&self, plan: Option<LossPlan>) {
        *self.loss.write() = plan;
    }

    /// Exports `service` on `host` under `program`, assigning a fresh port.
    ///
    /// The program is registered with the host's portmapper and the service
    /// name with its Courier exchange listener, so both binding protocols
    /// can find it.
    pub fn export(&self, host: HostId, program: ProgramId, service: Arc<dyn RpcService>) -> u16 {
        let mut tables = self.tables.write();
        let mut t = NetTables::clone(&tables);
        let port_ref = t.next_port.entry(host).or_insert(FIRST_DYNAMIC_PORT);
        let port = *port_ref;
        *port_ref += 1;
        let name = service.service_name().to_string();
        t.services.insert((host, port), service);
        t.programs.insert((host, program.0), (port, name.clone()));
        t.by_name.insert((host, name), port);
        *tables = Arc::new(t);
        port
    }

    /// Exports `service` at a fixed well-known port (e.g. a DNS server at
    /// port 53). Also registers program and name mappings.
    ///
    /// # Panics
    ///
    /// Panics if the port is already taken on that host or collides with a
    /// built-in service port.
    pub fn export_at(
        &self,
        host: HostId,
        port: u16,
        program: ProgramId,
        service: Arc<dyn RpcService>,
    ) {
        assert!(
            port != PORTMAP_PORT && port != EXCHANGE_PORT,
            "port {port} is reserved for a built-in service"
        );
        let mut tables = self.tables.write();
        let mut t = NetTables::clone(&tables);
        assert!(
            !t.services.contains_key(&(host, port)),
            "port {port} already exported on {host}"
        );
        let name = service.service_name().to_string();
        t.services.insert((host, port), service);
        t.programs.insert((host, program.0), (port, name.clone()));
        t.by_name.insert((host, name), port);
        *tables = Arc::new(t);
    }

    /// Removes an exported service (used by failure-injection tests).
    pub fn unexport(&self, host: HostId, port: u16) {
        let mut tables = self.tables.write();
        let mut t = NetTables::clone(&tables);
        if let Some(service) = t.services.remove(&(host, port)) {
            let name = service.service_name().to_string();
            t.by_name.remove(&(host, name));
            t.programs.retain(|_, (p, _)| *p != port);
            *tables = Arc::new(t);
        }
    }

    fn tables_snapshot(&self) -> Arc<NetTables> {
        Arc::clone(&self.tables.read())
    }

    fn lookup_service(&self, host: HostId, port: u16) -> RpcResult<Arc<dyn RpcService>> {
        self.tables_snapshot()
            .services
            .get(&(host, port))
            .cloned()
            .ok_or(RpcError::NoSuchService { host, port })
    }

    /// Looks up a program's port via the host's portmapper table (the
    /// server side of [`PMAP_GETPORT`]).
    pub fn portmap_getport(&self, host: HostId, program: ProgramId) -> RpcResult<u16> {
        self.tables_snapshot()
            .programs
            .get(&(host, program.0))
            .map(|(p, _)| *p)
            .ok_or(RpcError::NoSuchProgram {
                host,
                program: program.0,
            })
    }

    /// Looks up a service's port by name via the host's Courier exchange
    /// table (the server side of [`EXCHANGE_RESOLVE`]).
    pub fn exchange_resolve(&self, host: HostId, name: &str) -> RpcResult<u16> {
        self.tables_snapshot()
            .by_name
            .get(&(host, name.to_string()))
            .copied()
            .ok_or_else(|| RpcError::NotFound(format!("service `{name}` on {host}")))
    }

    fn datagram_dropped(&self, xid: u64, attempt: u32, leg: u8) -> bool {
        self.loss
            .read()
            .as_ref()
            .is_some_and(|plan| plan.would_drop(xid, attempt, leg))
    }

    /// Makes a synchronous call through `binding`, charging network costs.
    ///
    /// Datagram transports may lose the request or the reply; the control
    /// protocol retransmits up to its attempt budget. When a reply is lost
    /// the server has already executed the call — a control protocol with
    /// at-most-once bookkeeping answers the retransmission from its reply
    /// cache, while the plain Raw suite re-executes (observable duplicate
    /// effects, the classic datagram caveat).
    pub fn call(
        &self,
        caller: HostId,
        binding: &HrpcBinding,
        proc_id: u32,
        args: &Value,
    ) -> RpcResult<Value> {
        let components = binding.components;
        // Cost accounting follows the real wire representation without
        // materializing it: the self-describing encodings round-trip
        // losslessly (the wire crate's proptests pin this), so the
        // simulated delivery path computes the exact datagram length for
        // charging and hands the caller's value straight to the server
        // instead of allocating an encode/decode copy per datagram.
        let req_len = components.data_rep.encoded_len(args)?;

        let faults = self.world.faults();

        if self.world.topology.colocated(caller, binding.host) {
            // Even a colocated call observes a crash window: the caller
            // and the target died together, and there is no network to
            // retry over, so the failure is immediate.
            if let Some(plan) = &faults {
                if plan.host_down(binding.host, self.world.now()) {
                    self.call_metrics
                        .fault_crashed
                        .get(self.world.metrics(), "faults", "crashed_attempts")
                        .inc();
                    self.call_metrics
                        .fault_unreachable
                        .get(self.world.metrics(), "faults", "unreachable_calls")
                        .inc();
                    return Err(RpcError::HostUnreachable {
                        host: binding.host,
                        attempts: 1,
                    });
                }
            }
            self.world.charge_ms(self.world.costs.local_call);
            self.world.count_local_call();
            let reply = self.serve(caller, binding, proc_id, args)?;
            components.data_rep.encoded_len(&reply)?;
            return Ok(reply);
        }

        let rtt = self.world.costs.rpc_rtt(components.suite_kind());
        let per_req = rtt + self.world.costs.per_kb * req_len as f64 / 1024.0;
        let datagram = components.transport.is_datagram();
        let max_attempts = if datagram {
            components.control.max_attempts()
        } else {
            1
        };
        let xid = self
            .next_xid
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        let span = self.world.span_lazy(Some(caller), TraceKind::Rpc, || {
            format!(
                "rpc {} -> {}:{} prog {} ({:?})",
                caller,
                binding.host,
                binding.port,
                binding.program.0,
                components.suite_kind()
            )
        });
        let t0 = self.world.now();
        // Crash/partition outages are retried up to the control
        // protocol's attempt budget even on stream transports: the
        // connection attempt itself times out and is retried.
        let fault_budget = components.control.max_attempts();
        let mut attempts = 0;
        let result = loop {
            attempts += 1;
            self.world.charge_ms(per_req);
            self.world.count_remote_call(req_len as u64);

            // Fault legs: a crashed or partitioned target answers
            // nothing, so the attempt is spent and the caller backs off
            // exponentially before retrying, up to the budget.
            if let Some(kind) = faults
                .as_ref()
                .and_then(|plan| plan.blocks(caller, binding.host, self.world.now()))
            {
                match kind {
                    FaultKind::Crashed => self
                        .call_metrics
                        .fault_crashed
                        .get(self.world.metrics(), "faults", "crashed_attempts")
                        .inc(),
                    FaultKind::Partitioned => self
                        .call_metrics
                        .fault_partitioned
                        .get(self.world.metrics(), "faults", "partitioned_attempts")
                        .inc(),
                }
                self.world.trace(
                    Some(caller),
                    TraceKind::Rpc,
                    format!("{} unreachable: {kind} (attempt {attempts})", binding.host),
                );
                if attempts >= fault_budget {
                    self.call_metrics
                        .fault_unreachable
                        .get(self.world.metrics(), "faults", "unreachable_calls")
                        .inc();
                    break Err(RpcError::HostUnreachable {
                        host: binding.host,
                        attempts,
                    });
                }
                self.world.charge_ms(retry_backoff_ms(attempts));
                continue;
            }

            // An active latency spike slows the attempt without
            // blocking it.
            if let Some(extra) = faults
                .as_ref()
                .map(|plan| plan.extra_latency_ms(caller, binding.host, self.world.now()))
            {
                if extra > 0.0 {
                    self.call_metrics
                        .fault_spiked
                        .get(self.world.metrics(), "faults", "spiked_attempts")
                        .inc();
                    self.world.charge_ms(extra);
                }
            }

            // Request leg.
            if datagram && self.datagram_dropped(xid, attempts, LEG_REQUEST) {
                self.call_metrics
                    .datagrams_lost
                    .get(self.world.metrics(), "hrpc_net", "datagrams_lost")
                    .inc();
                self.world.trace(
                    Some(caller),
                    TraceKind::Rpc,
                    format!("request to {} lost (attempt {attempts})", binding.host),
                );
                if attempts >= max_attempts {
                    break Err(RpcError::Timeout { attempts });
                }
                continue;
            }

            // Execution, with at-most-once duplicate suppression where the
            // control protocol keeps call state.
            let served = if datagram && components.control.at_most_once() {
                let key = (caller, xid);
                if let Some(cached) = self.replies.get(&key) {
                    self.call_metrics
                        .reply_cache_hits
                        .get(self.world.metrics(), "hrpc_net", "reply_cache_hits")
                        .inc();
                    self.world.trace(
                        Some(binding.host),
                        TraceKind::Rpc,
                        format!("duplicate xid {xid} answered from reply cache"),
                    );
                    Ok(cached)
                } else {
                    self.serve(caller, binding, proc_id, args)
                        .inspect(|reply| self.replies.insert(key, reply.clone()))
                }
            } else {
                self.serve(caller, binding, proc_id, args)
            };
            let reply = match served {
                Ok(reply) => reply,
                Err(err) => break Err(err),
            };

            // Response leg.
            if datagram && self.datagram_dropped(xid, attempts, LEG_REPLY) {
                self.call_metrics
                    .datagrams_lost
                    .get(self.world.metrics(), "hrpc_net", "datagrams_lost")
                    .inc();
                self.world.trace(
                    Some(caller),
                    TraceKind::Rpc,
                    format!("reply from {} lost (attempt {attempts})", binding.host),
                );
                if attempts >= max_attempts {
                    break Err(RpcError::Timeout { attempts });
                }
                continue;
            }

            self.world.trace(
                Some(caller),
                TraceKind::Rpc,
                format!(
                    "call {} -> {}:{} prog {} ({:?})",
                    caller,
                    binding.host,
                    binding.port,
                    binding.program.0,
                    components.suite_kind()
                ),
            );
            break components
                .data_rep
                .encoded_len(&reply)
                .map(|len| (reply, len))
                .map_err(RpcError::from);
        };
        let result = result.map(|(reply, reply_len)| {
            self.world
                .charge_ms(self.world.costs.per_kb * reply_len as f64 / 1024.0);
            reply
        });

        span.add_round_trips(u64::from(attempts));
        drop(span);
        let took = self.world.now().since(t0);
        self.call_metrics
            .remote_call_us
            .get(self.world.metrics(), "hrpc_net", "remote_call_us")
            .record(took.as_us());
        if result.is_err() {
            self.call_metrics
                .call_errors
                .get(self.world.metrics(), "hrpc_net", "call_errors")
                .inc();
        }
        result
    }

    fn serve(
        &self,
        caller: HostId,
        binding: &HrpcBinding,
        proc_id: u32,
        args: &Value,
    ) -> RpcResult<Value> {
        // Built-in per-host services.
        match binding.port {
            PORTMAP_PORT => return self.serve_portmap(binding.host, proc_id, args),
            EXCHANGE_PORT => return self.serve_exchange(binding.host, proc_id, args),
            _ => {}
        }
        let service = self.lookup_service(binding.host, binding.port)?;
        let ctx = CallCtx {
            net: self,
            world: &self.world,
            host: binding.host,
            caller,
        };
        service.dispatch(&ctx, proc_id, args)
    }

    fn serve_portmap(&self, host: HostId, proc_id: u32, args: &Value) -> RpcResult<Value> {
        self.world.charge_ms(self.world.costs.portmap_service);
        match proc_id {
            PMAP_GETPORT => {
                let program = ProgramId(args.u32_field("program")?);
                let port = self.portmap_getport(host, program)?;
                Ok(Value::U32(port as u32))
            }
            other => Err(RpcError::BadProcedure(other)),
        }
    }

    fn serve_exchange(&self, host: HostId, proc_id: u32, args: &Value) -> RpcResult<Value> {
        self.world.charge_ms(self.world.costs.portmap_service);
        match proc_id {
            EXCHANGE_RESOLVE => {
                let name = args.str_field("service")?;
                let port = self.exchange_resolve(host, name)?;
                Ok(Value::U32(port as u32))
            }
            other => Err(RpcError::BadProcedure(other)),
        }
    }

    /// Builds the binding for a built-in per-host service (portmapper or
    /// exchange listener) reachable over the given suite.
    pub fn builtin_binding(host: HostId, port: u16, components: ComponentSet) -> HrpcBinding {
        HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program: ProgramId(0),
            port,
            components,
        }
    }
}

impl std::fmt::Debug for RpcNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tables.read();
        f.debug_struct("RpcNet")
            .field("services", &t.services.len())
            .field("programs", &t.programs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentSet;
    use crate::server::ProcServer;

    fn setup() -> (Arc<World>, Arc<RpcNet>, HostId, HostId) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        (world, net, client, server)
    }

    fn echo_service() -> Arc<dyn RpcService> {
        Arc::new(ProcServer::new("echo").with_proc(1, |_ctx, args| Ok(args.clone())))
    }

    fn binding_for(net: &RpcNet, host: HostId, components: ComponentSet) -> HrpcBinding {
        let port = net
            .portmap_getport(host, ProgramId(77))
            .expect("registered");
        HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program: ProgramId(77),
            port,
            components,
        }
    }

    #[test]
    fn remote_call_roundtrips_and_charges_rtt() {
        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        let args = Value::record(vec![("msg", Value::str("hello"))]);
        let (reply, took, delta) = world.measure(|| net.call(client, &b, 1, &args));
        assert_eq!(reply.expect("call ok"), args);
        assert!(took.as_ms_f64() >= 33.0, "took {took}");
        assert!(took.as_ms_f64() < 36.0, "took {took}");
        assert_eq!(delta.remote_calls, 1);
    }

    #[test]
    fn local_call_is_effectively_free() {
        let (world, net, _client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        let (reply, took, delta) = world.measure(|| net.call(server, &b, 1, &Value::U32(5)));
        assert!(reply.is_ok());
        assert!(took.as_ms_f64() < 1.0, "took {took}");
        assert_eq!(delta.remote_calls, 0);
        assert_eq!(delta.local_calls, 1);
    }

    #[test]
    fn suites_have_distinct_costs() {
        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let mut times = Vec::new();
        for components in [
            ComponentSet::raw_tcp(0),
            ComponentSet::raw_udp(0),
            ComponentSet::sun(),
            ComponentSet::courier(),
        ] {
            let mut b = binding_for(&net, server, components);
            b.components = components;
            let (_r, took, _d) = world.measure(|| net.call(client, &b, 1, &Value::Void));
            times.push(took.as_ms_f64());
        }
        // raw_tcp < raw_udp < sun < courier per the calibrated model.
        assert!(
            times[0] < times[1] && times[1] < times[2] && times[2] < times[3],
            "{times:?}"
        );
    }

    #[test]
    fn unknown_service_and_procedure_fail() {
        let (_world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        assert!(matches!(
            net.call(client, &b, 99, &Value::Void),
            Err(RpcError::BadProcedure(99))
        ));
        let mut bad = b;
        bad.port = 9999;
        assert!(matches!(
            net.call(client, &bad, 1, &Value::Void),
            Err(RpcError::NoSuchService { .. })
        ));
    }

    #[test]
    fn portmapper_builtin_resolves_programs() {
        let (_world, net, client, server) = setup();
        let port = net.export(server, ProgramId(100_005), echo_service());
        let pm = RpcNet::builtin_binding(server, PORTMAP_PORT, ComponentSet::raw_udp(PORTMAP_PORT));
        let reply = net
            .call(
                client,
                &pm,
                PMAP_GETPORT,
                &Value::record(vec![("program", Value::U32(100_005))]),
            )
            .expect("getport");
        assert_eq!(reply, Value::U32(port as u32));
    }

    #[test]
    fn exchange_builtin_resolves_names() {
        let (_world, net, client, server) = setup();
        let port = net.export(server, ProgramId(5), echo_service());
        let ex = RpcNet::builtin_binding(server, EXCHANGE_PORT, ComponentSet::courier());
        let reply = net
            .call(
                client,
                &ex,
                EXCHANGE_RESOLVE,
                &Value::record(vec![("service", Value::str("echo"))]),
            )
            .expect("resolve");
        assert_eq!(reply, Value::U32(port as u32));
    }

    #[test]
    fn datagram_loss_retries_then_times_out() {
        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::raw_udp(0));

        // Total loss: every attempt drops, so the call times out after the
        // control protocol's maximum attempts, charging each attempt.
        net.set_loss(Some(LossPlan::new(1.0, 42)));
        let (result, took, delta) = world.measure(|| net.call(client, &b, 1, &Value::Void));
        assert!(matches!(result, Err(RpcError::Timeout { attempts: 4 })));
        assert!(took.as_ms_f64() >= 4.0 * 25.0, "took {took}");
        assert_eq!(delta.remote_calls, 4);

        // No loss: immediate success.
        net.set_loss(None);
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }

    #[test]
    fn stream_transports_ignore_loss_plan() {
        let (_world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        net.set_loss(Some(LossPlan::new(1.0, 42)));
        let b = binding_for(&net, server, ComponentSet::sun());
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }

    #[test]
    fn unexport_removes_service() {
        let (_world, net, client, server) = setup();
        let port = net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());
        net.unexport(server, port);
        assert!(matches!(
            net.call(client, &b, 1, &Value::Void),
            Err(RpcError::NoSuchService { .. })
        ));
        assert!(net.portmap_getport(server, ProgramId(77)).is_err());
    }

    #[test]
    fn nested_calls_originate_from_service_host() {
        let (world, net, client, server) = setup();
        let backend_host = world.add_host("backend");
        net.export(backend_host, ProgramId(88), echo_service());
        let backend_port = net
            .portmap_getport(backend_host, ProgramId(88))
            .expect("port");
        let backend = HrpcBinding {
            host: backend_host,
            addr: NetAddr::of(backend_host),
            program: ProgramId(88),
            port: backend_port,
            components: ComponentSet::raw_tcp(backend_port),
        };
        let frontend = Arc::new(ProcServer::new("frontend").with_proc(1, move |ctx, args| {
            ctx.net.call(ctx.host, &backend, 1, args)
        }));
        net.export(server, ProgramId(77), frontend);
        let b = binding_for(&net, server, ComponentSet::sun());
        let (reply, took, delta) = world.measure(|| net.call(client, &b, 1, &Value::U32(9)));
        assert_eq!(reply.expect("ok"), Value::U32(9));
        // Two remote hops: client->frontend (33) + frontend->backend (22).
        assert!(took.as_ms_f64() >= 55.0, "took {took}");
        assert_eq!(delta.remote_calls, 2);
    }

    /// Satellite regression: under eviction pressure, an entry whose
    /// shard is not over capacity must survive — the seed design cleared
    /// the *entire* table at the limit, so unrelated traffic could wipe
    /// the reply a retransmission still needed.
    #[test]
    fn reply_cache_entry_survives_pressure_on_other_shards() {
        let cache = ReplyCache::new(64); // 4 entries per shard
        let victim = (HostId(1), 0u64);
        let victim_shard = ReplyCache::shard_index(&victim);
        cache.insert(victim, Value::U32(42));
        // Flood every *other* shard far past its per-shard cap.
        let mut flooded = 0;
        let mut xid = 1u64;
        while flooded < 1_000 {
            let key = (HostId(2), xid);
            xid += 1;
            if ReplyCache::shard_index(&key) == victim_shard {
                continue;
            }
            cache.insert(key, Value::Void);
            flooded += 1;
        }
        assert_eq!(
            cache.get(&victim),
            Some(Value::U32(42)),
            "pressure on other shards must not evict a live entry"
        );
    }

    #[test]
    fn reply_cache_evicts_oldest_within_a_full_shard() {
        let cache = ReplyCache::new(64); // 4 entries per shard
        let shard = REPLY_CACHE_SHARDS as u64; // stride keeps keys in shard 0
        let keys: Vec<_> = (0..6).map(|i| (HostId(1), i * shard)).collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(*key, Value::U32(i as u32));
        }
        // 6 inserts into a 4-entry shard: the two oldest are gone, the
        // rest (and nothing else) remain.
        assert_eq!(cache.get(&keys[0]), None);
        assert_eq!(cache.get(&keys[1]), None);
        for (i, key) in keys.iter().enumerate().skip(2) {
            assert_eq!(cache.get(key), Some(Value::U32(i as u32)));
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn reply_cache_reinsert_does_not_duplicate_order_entries() {
        let cache = ReplyCache::new(64);
        let key = (HostId(1), 0u64);
        for i in 0..10 {
            cache.insert(key, Value::U32(i));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key), Some(Value::U32(9)));
    }

    #[test]
    fn duplicate_after_lost_reply_is_answered_from_reply_cache() {
        // An at-most-once datagram suite whose first reply is lost: the
        // retransmission must be answered from the reply cache, not by
        // re-executing the procedure.
        let (world, net, client, server) = setup();
        let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let counted = {
            let calls = Arc::clone(&calls);
            Arc::new(ProcServer::new("counted").with_proc(1, move |_ctx, _args| {
                calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(Value::U32(7))
            }))
        };
        net.export(server, ProgramId(77), counted);
        let b = binding_for(&net, server, ComponentSet::raw_udp_at_most_once(0));
        // The first call on a fresh net has xid 1 and each attempt has a
        // request and a reply leg. Pick a seed where attempt 1 delivers
        // the request but loses the reply, and attempt 2 delivers both:
        // the retransmission must be answered from the reply cache.
        let seed = (0..100_000u64)
            .find(|&s| {
                let plan = LossPlan::new(0.5, s);
                !plan.would_drop(1, 1, LEG_REQUEST)
                    && plan.would_drop(1, 1, LEG_REPLY)
                    && !plan.would_drop(1, 2, LEG_REQUEST)
                    && !plan.would_drop(1, 2, LEG_REPLY)
            })
            .expect("a drop-reply-only seed exists");
        net.set_loss(Some(LossPlan::new(0.5, seed)));
        let ok = net.call(client, &b, 1, &Value::Void).expect("retried call");
        assert_eq!(ok, Value::U32(7));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "the duplicate must come from the reply cache, not re-execution"
        );
        let snap = world.metrics().snapshot();
        assert_eq!(snap.counter("hrpc_net", "reply_cache_hits"), Some(1));
        assert_eq!(snap.counter("hrpc_net", "datagrams_lost"), Some(1));
    }

    #[test]
    fn crashed_host_fails_fast_with_typed_error_and_backoff() {
        use simnet::faults::FaultPlan;

        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());

        let mut plan = FaultPlan::new();
        plan.crash(server, world.now(), None);
        world.set_faults(Some(plan));

        let (result, took, delta) = world.measure(|| net.call(client, &b, 1, &Value::Void));
        assert!(
            matches!(result, Err(RpcError::HostUnreachable { host, attempts: 3 }) if host == server),
            "{result:?}"
        );
        // Three charged attempts (~33 ms each) plus backoffs 50 + 100.
        assert!(took.as_ms_f64() >= 3.0 * 33.0 + 150.0, "took {took}");
        assert_eq!(delta.remote_calls, 3);

        let snap = world.metrics().snapshot();
        assert_eq!(snap.counter("faults", "crashed_attempts"), Some(3));
        assert_eq!(snap.counter("faults", "unreachable_calls"), Some(1));

        // Clearing the plan heals the host.
        world.set_faults(None);
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }

    #[test]
    fn partition_blocks_link_until_window_closes() {
        use simnet::faults::FaultPlan;
        use simnet::time::SimDuration;

        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::raw_tcp(0));

        let heal = world.now() + SimDuration::from_ms(10_000);
        let mut plan = FaultPlan::new();
        plan.partition(client, server, world.now(), Some(heal));
        world.set_faults(Some(plan));

        // raw_tcp's control protocol budgets a single attempt.
        let result = net.call(client, &b, 1, &Value::Void);
        assert!(
            matches!(result, Err(RpcError::HostUnreachable { attempts: 1, .. })),
            "{result:?}"
        );
        assert_eq!(
            world
                .metrics()
                .snapshot()
                .counter("faults", "partitioned_attempts"),
            Some(1)
        );

        // The same plan heals once virtual time passes the window.
        let now = world.now();
        world.charge(heal.since(now) + SimDuration::from_ms(1));
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }

    #[test]
    fn latency_spike_slows_but_does_not_block() {
        use simnet::faults::FaultPlan;

        let (world, net, client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());

        let (_r, clean, _d) = world.measure(|| net.call(client, &b, 1, &Value::Void));

        let mut plan = FaultPlan::new();
        plan.latency_spike(client, server, world.now(), None, 250.0);
        world.set_faults(Some(plan));
        let (result, spiked, _d) = world.measure(|| net.call(client, &b, 1, &Value::Void));
        assert!(result.is_ok(), "a spike must not fail the call");
        assert!(
            (spiked.as_ms_f64() - clean.as_ms_f64() - 250.0).abs() < 1.0,
            "clean {clean}, spiked {spiked}"
        );
        assert_eq!(
            world
                .metrics()
                .snapshot()
                .counter("faults", "spiked_attempts"),
            Some(1)
        );
    }

    #[test]
    fn colocated_call_to_crashed_host_fails_immediately() {
        use simnet::faults::FaultPlan;

        let (world, net, _client, server) = setup();
        net.export(server, ProgramId(77), echo_service());
        let b = binding_for(&net, server, ComponentSet::sun());

        let mut plan = FaultPlan::new();
        plan.crash(server, world.now(), None);
        world.set_faults(Some(plan));
        let (result, took, delta) = world.measure(|| net.call(server, &b, 1, &Value::U32(5)));
        assert!(
            matches!(result, Err(RpcError::HostUnreachable { attempts: 1, .. })),
            "{result:?}"
        );
        assert_eq!(took.as_us(), 0, "no retries, no backoff: the host is dead");
        assert_eq!(delta.local_calls, 0);
    }

    #[test]
    #[should_panic(expected = "reserved for a built-in service")]
    fn export_at_reserved_port_panics() {
        let (_world, net, _client, server) = setup();
        net.export_at(server, PORTMAP_PORT, ProgramId(1), echo_service());
    }

    #[test]
    fn export_at_fixed_port() {
        let (_world, net, client, server) = setup();
        net.export_at(server, 53, ProgramId(99), echo_service());
        let b = HrpcBinding {
            host: server,
            addr: NetAddr::of(server),
            program: ProgramId(99),
            port: 53,
            components: ComponentSet::raw_tcp(53),
        };
        assert!(net.call(client, &b, 1, &Value::Void).is_ok());
    }
}

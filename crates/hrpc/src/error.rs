//! RPC errors.

use std::fmt;

use simnet::topology::HostId;
use wire::WireError;

/// Failures while making or serving a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No service is exported at the target host/port.
    NoSuchService {
        /// Target host.
        host: HostId,
        /// Target port.
        port: u16,
    },
    /// The binding protocol found no port for the program.
    NoSuchProgram {
        /// Target host.
        host: HostId,
        /// Requested program number.
        program: u32,
    },
    /// The service does not implement the procedure.
    BadProcedure(u32),
    /// Marshalling failed.
    Wire(WireError),
    /// The service reported an application-level failure.
    Service(String),
    /// A datagram suite exhausted its retransmissions.
    Timeout {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The named entity was not found by a name service.
    NotFound(String),
    /// Authentication was rejected (Clearinghouse-style services).
    AuthFailed(String),
    /// The target host is crashed or partitioned away; the control
    /// protocol gave up after its attempt budget with backoff.
    HostUnreachable {
        /// The unreachable host.
        host: HostId,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl RpcError {
    /// True for availability failures — the target never answered
    /// (unreachable host or exhausted retransmissions) — as opposed to
    /// definitive answers like [`RpcError::NotFound`]. Serve-stale and
    /// NSM failover trigger only on these.
    pub fn is_unreachable(&self) -> bool {
        matches!(
            self,
            RpcError::HostUnreachable { .. } | RpcError::Timeout { .. }
        )
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::NoSuchService { host, port } => {
                write!(f, "no service at {host}:{port}")
            }
            RpcError::NoSuchProgram { host, program } => {
                write!(f, "no program {program} registered on {host}")
            }
            RpcError::BadProcedure(p) => write!(f, "unknown procedure {p}"),
            RpcError::Wire(e) => write!(f, "marshalling error: {e}"),
            RpcError::Service(msg) => write!(f, "service error: {msg}"),
            RpcError::Timeout { attempts } => {
                write!(f, "timed out after {attempts} attempts")
            }
            RpcError::NotFound(name) => write!(f, "not found: {name}"),
            RpcError::AuthFailed(who) => write!(f, "authentication failed for {who}"),
            RpcError::HostUnreachable { host, attempts } => {
                write!(f, "host {host} unreachable after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

/// Result alias for RPC operations.
pub type RpcResult<T> = Result<T, RpcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(RpcError, &str)> = vec![
            (
                RpcError::NoSuchService {
                    host: HostId(1),
                    port: 80,
                },
                "host1:80",
            ),
            (
                RpcError::NoSuchProgram {
                    host: HostId(2),
                    program: 9,
                },
                "program 9",
            ),
            (RpcError::BadProcedure(3), "procedure 3"),
            (RpcError::Wire(WireError::Truncated), "truncated"),
            (RpcError::Service("boom".into()), "boom"),
            (RpcError::Timeout { attempts: 4 }, "4 attempts"),
            (RpcError::NotFound("fiji".into()), "fiji"),
            (RpcError::AuthFailed("guest".into()), "guest"),
            (
                RpcError::HostUnreachable {
                    host: HostId(5),
                    attempts: 3,
                },
                "unreachable after 3 attempts",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn unreachable_classification() {
        assert!(RpcError::HostUnreachable {
            host: HostId(1),
            attempts: 3
        }
        .is_unreachable());
        assert!(RpcError::Timeout { attempts: 4 }.is_unreachable());
        assert!(!RpcError::NotFound("x".into()).is_unreachable());
        assert!(!RpcError::Service("x".into()).is_unreachable());
    }

    #[test]
    fn wire_error_converts_and_sources() {
        let err: RpcError = WireError::BadUtf8.into();
        assert_eq!(err, RpcError::Wire(WireError::BadUtf8));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&RpcError::BadProcedure(1)).is_none());
    }
}

//! `hrpc` — the heterogeneous RPC facility (Bershad et al. 1987).
//!
//! HRPC decomposes an RPC system into five independently selectable
//! components — stubs, binding protocol, data representation, transport
//! protocol, and control protocol — "mixed and matched" at bind time so a
//! single client can call Sun RPC, Courier, or raw message-passing peers by
//! emulating a homogeneous peer of each.
//!
//! * [`components`] — the component model and the Sun / Courier / Raw
//!   suites.
//! * [`binding`] — the system-independent [`binding::HrpcBinding`] handle.
//! * [`net`] — the fabric: service export, synchronous calls with
//!   virtual-time charging, built-in portmapper and Courier exchange,
//!   datagram loss injection.
//! * [`bindproto`] — port determination per native binding protocol.
//! * [`stub`] — client stubs with optional interface-typed replies.
//! * [`server`] — the service trait and a closure-based service builder.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use hrpc::binding::ProgramId;
//! use hrpc::components::ComponentSet;
//! use hrpc::net::RpcNet;
//! use hrpc::server::ProcServer;
//! use hrpc::stub::ClientStub;
//! use simnet::world::World;
//! use wire::Value;
//!
//! let world = World::paper();
//! let client = world.add_host("client");
//! let server = world.add_host("fiji.cs.washington.edu");
//! let net = RpcNet::new(Arc::clone(&world));
//!
//! // Export a Sun RPC style service.
//! let svc = Arc::new(ProcServer::new("DesiredService").with_proc(1, |_ctx, args| Ok(args.clone())));
//! net.export(server, ProgramId(100_005), svc);
//!
//! // Bind (runs the Sun portmapper protocol) and call.
//! let binding = hrpc::bindproto::bind(
//!     &net, client, server, ProgramId(100_005), "DesiredService", ComponentSet::sun(),
//! ).expect("bind");
//! let stub = ClientStub::new(Arc::clone(&net), client);
//! let reply = stub.call(&binding, 1, &Value::str("ping")).expect("call");
//! assert_eq!(reply, Value::str("ping"));
//! ```
#![warn(missing_docs)]

pub mod binding;
pub mod bindproto;
pub mod components;
pub mod error;
pub mod net;
pub mod server;
pub mod stub;

pub use binding::{HrpcBinding, ProgramId};
pub use components::{BindingProtocol, ComponentSet, ControlProtocol, NativeSystem, Transport};
pub use error::{RpcError, RpcResult};
pub use net::{LossPlan, RpcNet};
pub use server::{CallCtx, ProcServer, RpcService};
pub use stub::ClientStub;

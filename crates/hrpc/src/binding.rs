//! HRPC bindings: the system-independent handle a client calls through.
//!
//! "The client presents a name and is returned a Binding ... This Binding
//! is system-independent from the point of view of the client, even though
//! the means by which this information is gathered by the NSM varies widely
//! from system to system."

use simnet::topology::{HostId, NetAddr};
use wire::{Value, WireResult};

use crate::components::{BindingProtocol, ComponentSet, ControlProtocol, Transport};
use wire::WireFormat;

/// A program (service) number, as in Sun RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u32);

/// A complete handle for calling a remote procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HrpcBinding {
    /// Host the service runs on.
    pub host: HostId,
    /// Network address of that host.
    pub addr: NetAddr,
    /// The exported program.
    pub program: ProgramId,
    /// Resolved port on the host.
    pub port: u16,
    /// The component set selected at bind time.
    pub components: ComponentSet,
}

impl HrpcBinding {
    /// Serializes the binding into a wire value (for caching and for
    /// returning from `FindNSM` and binding NSMs).
    pub fn to_value(&self) -> Value {
        Value::record(vec![
            ("host", Value::U32(self.host.0)),
            ("program", Value::U32(self.program.0)),
            ("port", Value::U32(self.port as u32)),
            (
                "data_rep",
                Value::U32(encode_format(self.components.data_rep)),
            ),
            (
                "transport",
                Value::U32(encode_transport(self.components.transport)),
            ),
            (
                "control",
                Value::U32(encode_control(self.components.control)),
            ),
            (
                "ctl_attempts",
                Value::U32(self.components.control.max_attempts()),
            ),
            (
                "ctl_amo",
                Value::Bool(self.components.control.at_most_once()),
            ),
            (
                "bindproto",
                Value::U32(encode_bindproto(self.components.binding)),
            ),
            (
                "static_port",
                Value::U32(static_port(self.components.binding) as u32),
            ),
        ])
    }

    /// Reconstructs a binding from its wire value.
    pub fn from_value(v: &Value) -> WireResult<HrpcBinding> {
        let host = HostId(v.u32_field("host")?);
        let program = ProgramId(v.u32_field("program")?);
        let port = v.u32_field("port")? as u16;
        let data_rep = decode_format(v.u32_field("data_rep")?)?;
        let transport = decode_transport(v.u32_field("transport")?)?;
        let attempts = v.u32_field("ctl_attempts")?;
        let at_most_once = v.field("ctl_amo")?.as_bool()?;
        let control = decode_control(v.u32_field("control")?, attempts, at_most_once)?;
        let binding = decode_bindproto(
            v.u32_field("bindproto")?,
            v.u32_field("static_port")? as u16,
        )?;
        Ok(HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program,
            port,
            components: ComponentSet {
                data_rep,
                transport,
                control,
                binding,
            },
        })
    }
}

fn encode_format(f: WireFormat) -> u32 {
    match f {
        WireFormat::Xdr => 0,
        WireFormat::Courier => 1,
    }
}

fn decode_format(v: u32) -> WireResult<WireFormat> {
    match v {
        0 => Ok(WireFormat::Xdr),
        1 => Ok(WireFormat::Courier),
        other => Err(wire::WireError::BadTag(other as u8)),
    }
}

fn encode_transport(t: Transport) -> u32 {
    match t {
        Transport::SunTcp => 0,
        Transport::CourierSpp => 1,
        Transport::RawTcp => 2,
        Transport::RawUdp => 3,
        Transport::DnsUdp => 4,
    }
}

fn decode_transport(v: u32) -> WireResult<Transport> {
    match v {
        0 => Ok(Transport::SunTcp),
        1 => Ok(Transport::CourierSpp),
        2 => Ok(Transport::RawTcp),
        3 => Ok(Transport::RawUdp),
        4 => Ok(Transport::DnsUdp),
        other => Err(wire::WireError::BadTag(other as u8)),
    }
}

fn encode_control(c: ControlProtocol) -> u32 {
    match c {
        ControlProtocol::Sun => 0,
        ControlProtocol::Courier => 1,
        ControlProtocol::Raw { .. } => 2,
    }
}

fn decode_control(v: u32, attempts: u32, at_most_once: bool) -> WireResult<ControlProtocol> {
    match v {
        0 => Ok(ControlProtocol::Sun),
        1 => Ok(ControlProtocol::Courier),
        2 => Ok(ControlProtocol::Raw {
            max_attempts: attempts,
            at_most_once,
        }),
        other => Err(wire::WireError::BadTag(other as u8)),
    }
}

fn encode_bindproto(b: BindingProtocol) -> u32 {
    match b {
        BindingProtocol::SunPortmapper => 0,
        BindingProtocol::CourierExchange => 1,
        BindingProtocol::StaticPort(_) => 2,
    }
}

fn static_port(b: BindingProtocol) -> u16 {
    match b {
        BindingProtocol::StaticPort(p) => p,
        _ => 0,
    }
}

fn decode_bindproto(v: u32, port: u16) -> WireResult<BindingProtocol> {
    match v {
        0 => Ok(BindingProtocol::SunPortmapper),
        1 => Ok(BindingProtocol::CourierExchange),
        2 => Ok(BindingProtocol::StaticPort(port)),
        other => Err(wire::WireError::BadTag(other as u8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(components: ComponentSet) -> HrpcBinding {
        HrpcBinding {
            host: HostId(4),
            addr: NetAddr::of(HostId(4)),
            program: ProgramId(100_005),
            port: 2049,
            components,
        }
    }

    #[test]
    fn value_roundtrip_for_every_suite() {
        for components in [
            ComponentSet::sun(),
            ComponentSet::courier(),
            ComponentSet::raw_tcp(7),
            ComponentSet::raw_udp(9),
        ] {
            let b = sample(components);
            let back = HrpcBinding::from_value(&b.to_value()).expect("roundtrip");
            assert_eq!(back, b);
        }
    }

    #[test]
    fn value_roundtrip_survives_wire_encoding() {
        let b = sample(ComponentSet::courier());
        let bytes = wire::WireFormat::Courier
            .encode(&b.to_value())
            .expect("encode");
        let v = wire::WireFormat::Courier.decode(&bytes).expect("decode");
        assert_eq!(HrpcBinding::from_value(&v).expect("from value"), b);
    }

    #[test]
    fn malformed_value_rejected() {
        let v = Value::record(vec![("host", Value::U32(1))]);
        assert!(HrpcBinding::from_value(&v).is_err());
        let v = Value::str("not a binding");
        assert!(HrpcBinding::from_value(&v).is_err());
    }

    #[test]
    fn bad_enum_codes_rejected() {
        let b = sample(ComponentSet::sun());
        let mut v = b.to_value();
        if let Value::Struct(fields) = &mut v {
            for (k, fv) in fields.iter_mut() {
                if k == "transport" {
                    *fv = Value::U32(99);
                }
            }
        }
        assert!(HrpcBinding::from_value(&v).is_err());
    }
}

//! Server-side service abstraction.

use std::collections::HashMap;
use std::sync::Arc;

use simnet::topology::HostId;
use simnet::world::World;
use wire::Value;

use crate::error::{RpcError, RpcResult};
use crate::net::RpcNet;

/// Context passed to a service for one call.
///
/// Services that need to make nested calls (an NSM querying its underlying
/// name service, the HNS querying its meta store) do so through `net`,
/// originating from their own `host`.
pub struct CallCtx<'a> {
    /// The RPC fabric, for nested calls.
    pub net: &'a RpcNet,
    /// The shared simulation environment.
    pub world: &'a Arc<World>,
    /// Host the service is running on.
    pub host: HostId,
    /// Host the call originated from.
    pub caller: HostId,
}

/// A dispatchable service.
pub trait RpcService: Send + Sync {
    /// Human-readable service name (for traces and errors).
    fn service_name(&self) -> &str;

    /// Handles one procedure call.
    fn dispatch(&self, ctx: &CallCtx<'_>, proc_id: u32, args: &Value) -> RpcResult<Value>;
}

/// Procedure handler type used by [`ProcServer`].
pub type ProcHandler = Box<dyn Fn(&CallCtx<'_>, &Value) -> RpcResult<Value> + Send + Sync>;

/// A simple service built from per-procedure closures.
///
/// # Examples
///
/// ```
/// use hrpc::server::{ProcServer, RpcService};
/// use wire::Value;
///
/// let echo = ProcServer::new("echo").with_proc(1, |_ctx, args| Ok(args.clone()));
/// assert_eq!(echo.service_name(), "echo");
/// ```
pub struct ProcServer {
    name: String,
    procs: HashMap<u32, ProcHandler>,
}

impl ProcServer {
    /// Creates an empty service.
    pub fn new(name: impl Into<String>) -> Self {
        ProcServer {
            name: name.into(),
            procs: HashMap::new(),
        }
    }

    /// Registers a procedure handler (builder style).
    pub fn with_proc(
        mut self,
        proc_id: u32,
        handler: impl Fn(&CallCtx<'_>, &Value) -> RpcResult<Value> + Send + Sync + 'static,
    ) -> Self {
        self.procs.insert(proc_id, Box::new(handler));
        self
    }

    /// Number of registered procedures.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }
}

impl RpcService for ProcServer {
    fn service_name(&self) -> &str {
        &self.name
    }

    fn dispatch(&self, ctx: &CallCtx<'_>, proc_id: u32, args: &Value) -> RpcResult<Value> {
        match self.procs.get(&proc_id) {
            Some(handler) => handler(ctx, args),
            None => Err(RpcError::BadProcedure(proc_id)),
        }
    }
}

impl std::fmt::Debug for ProcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcServer")
            .field("name", &self.name)
            .field("procs", &self.procs.keys().collect::<Vec<_>>())
            .finish()
    }
}

//! Binding protocols: locating a program's port on a host.
//!
//! "While the binding process is similar for most RPC systems, the actual
//! mechanisms employed for naming, server activation, and port
//! determination vary considerably." Each [`BindingProtocol`] reproduces
//! one such mechanism; binding NSMs execute the protocol appropriate to the
//! system their name came from.

use simnet::topology::{HostId, NetAddr};
use wire::Value;

use crate::binding::{HrpcBinding, ProgramId};
use crate::components::{BindingProtocol, ComponentSet};
use crate::error::RpcResult;
use crate::net::{RpcNet, EXCHANGE_PORT, EXCHANGE_RESOLVE, PMAP_GETPORT, PORTMAP_PORT};

/// Resolves the port for (`server`, `program`, `service_name`) by running
/// the binding protocol of `components`, originating from `caller`.
///
/// Port-determination exchanges are real calls: a portmapper query pays a
/// UDP round trip to the server host, a Courier exchange query pays a
/// Courier round trip. A static port costs nothing.
pub fn resolve_port(
    net: &RpcNet,
    caller: HostId,
    server: HostId,
    program: ProgramId,
    service_name: &str,
    components: ComponentSet,
) -> RpcResult<u16> {
    match components.binding {
        BindingProtocol::StaticPort(port) => Ok(port),
        BindingProtocol::SunPortmapper => {
            let pm =
                RpcNet::builtin_binding(server, PORTMAP_PORT, ComponentSet::raw_udp(PORTMAP_PORT));
            let reply = net.call(
                caller,
                &pm,
                PMAP_GETPORT,
                &Value::record(vec![("program", Value::U32(program.0))]),
            )?;
            Ok(reply.as_u32()? as u16)
        }
        BindingProtocol::CourierExchange => {
            let ex = RpcNet::builtin_binding(server, EXCHANGE_PORT, ComponentSet::courier());
            let reply = net.call(
                caller,
                &ex,
                EXCHANGE_RESOLVE,
                &Value::record(vec![("service", Value::str(service_name))]),
            )?;
            Ok(reply.as_u32()? as u16)
        }
    }
}

/// Runs the full binding protocol and assembles a complete [`HrpcBinding`].
pub fn bind(
    net: &RpcNet,
    caller: HostId,
    server: HostId,
    program: ProgramId,
    service_name: &str,
    components: ComponentSet,
) -> RpcResult<HrpcBinding> {
    let port = resolve_port(net, caller, server, program, service_name, components)?;
    Ok(HrpcBinding {
        host: server,
        addr: NetAddr::of(server),
        program,
        port,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ProcServer;
    use simnet::world::World;
    use std::sync::Arc;

    fn setup() -> (Arc<World>, Arc<RpcNet>, HostId, HostId, u16) {
        let world = World::paper();
        let client = world.add_host("client");
        let server = world.add_host("server");
        let net = RpcNet::new(Arc::clone(&world));
        let svc = Arc::new(ProcServer::new("DesiredService").with_proc(1, |_c, a| Ok(a.clone())));
        let port = net.export(server, ProgramId(100_005), svc);
        (world, net, client, server, port)
    }

    #[test]
    fn portmapper_binding_resolves_and_charges() {
        let (world, net, client, server, port) = setup();
        let (binding, took, delta) = world.measure(|| {
            bind(
                &net,
                client,
                server,
                ProgramId(100_005),
                "DesiredService",
                ComponentSet::sun(),
            )
        });
        let binding = binding.expect("bind ok");
        assert_eq!(binding.port, port);
        assert_eq!(binding.host, server);
        // One UDP round trip (25) + portmap service (1).
        assert!((took.as_ms_f64() - 26.0).abs() < 1.0, "took {took}");
        assert_eq!(delta.remote_calls, 1);
    }

    #[test]
    fn courier_exchange_binding_resolves() {
        let (world, net, client, server, port) = setup();
        let (binding, took, _) = world.measure(|| {
            bind(
                &net,
                client,
                server,
                ProgramId(100_005),
                "DesiredService",
                ComponentSet::courier(),
            )
        });
        assert_eq!(binding.expect("bind ok").port, port);
        // One Courier round trip (38) + service (1).
        assert!((took.as_ms_f64() - 39.0).abs() < 1.0, "took {took}");
    }

    #[test]
    fn static_port_binding_is_free() {
        let (world, net, client, server, _port) = setup();
        let (binding, took, delta) = world.measure(|| {
            bind(
                &net,
                client,
                server,
                ProgramId(7),
                "x",
                ComponentSet::raw_tcp(53),
            )
        });
        assert_eq!(binding.expect("bind ok").port, 53);
        assert_eq!(took.as_ms_f64(), 0.0);
        assert_eq!(delta.remote_calls, 0);
    }

    #[test]
    fn unknown_program_reports_error() {
        let (_world, net, client, server, _port) = setup();
        let result = bind(
            &net,
            client,
            server,
            ProgramId(42),
            "nope",
            ComponentSet::sun(),
        );
        assert!(result.is_err());
    }

    #[test]
    fn bound_binding_actually_calls() {
        let (_world, net, client, server, _port) = setup();
        let binding = bind(
            &net,
            client,
            server,
            ProgramId(100_005),
            "DesiredService",
            ComponentSet::sun(),
        )
        .expect("bind");
        let reply = net
            .call(client, &binding, 1, &Value::str("ping"))
            .expect("call");
        assert_eq!(reply, Value::str("ping"));
    }

    #[test]
    fn colocated_portmapper_query_is_local() {
        let (world, net, _client, server, _port) = setup();
        let (result, took, delta) = world.measure(|| {
            resolve_port(
                &net,
                server,
                server,
                ProgramId(100_005),
                "DesiredService",
                ComponentSet::sun(),
            )
        });
        assert!(result.is_ok());
        assert!(took.as_ms_f64() < 2.0, "took {took}");
        assert_eq!(delta.remote_calls, 0);
    }
}

//! Reviewable hex dumps: the on-disk form of the golden corpus.
//!
//! Corpus files are classic sixteen-bytes-per-row dumps (offset, hex,
//! ASCII) rather than raw binary so an intentional encoder change shows
//! up in review as a readable diff. [`parse`] turns a dump back into
//! bytes, so the golden tests decode *from the committed file* — a
//! decoder regression is caught even if the matching encoder drifted in
//! lockstep.

/// Bytes per dump row.
const ROW: usize = 16;

/// Renders `bytes` as an offset + hex + ASCII dump.
pub fn render(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 4 + 64);
    for (row, chunk) in bytes.chunks(ROW).enumerate() {
        out.push_str(&format!("{:08x}  ", row * ROW));
        for i in 0..ROW {
            match chunk.get(i) {
                Some(b) => out.push_str(&format!("{b:02x} ")),
                None => out.push_str("   "),
            }
            if i == ROW / 2 - 1 {
                out.push(' ');
            }
        }
        out.push('|');
        for &b in chunk {
            out.push(if (0x20..0x7f).contains(&b) {
                b as char
            } else {
                '.'
            });
        }
        out.push_str("|\n");
    }
    if bytes.is_empty() {
        out.push_str("00000000  |");
        out.push_str("|\n");
    }
    out
}

/// Parses a dump produced by [`render`] back into bytes. Lines starting
/// with `#` are comments and ignored.
pub fn parse(text: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rest = line
            .split_once("  ")
            .ok_or_else(|| format!("line {}: no offset separator", lineno + 1))?
            .1;
        let hex_part = rest.split('|').next().unwrap_or("");
        for token in hex_part.split_whitespace() {
            if token.len() != 2 {
                return Err(format!("line {}: bad hex token `{token}`", lineno + 1));
            }
            let b = u8::from_str_radix(token, 16)
                .map_err(|_| format!("line {}: bad hex token `{token}`", lineno + 1))?;
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let dump = render(&bytes);
            assert_eq!(parse(&dump).expect("parse"), bytes, "len {len}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let bytes = vec![0xde, 0xad, 0xbe, 0xef];
        let dump = format!("# header comment\n\n{}", render(&bytes));
        assert_eq!(parse(&dump).expect("parse"), bytes);
    }

    #[test]
    fn ascii_column_is_printable() {
        let dump = render(b"hello\x00world");
        assert!(dump.contains("|hello.world|"));
    }

    #[test]
    fn malformed_dump_rejected() {
        assert!(parse("garbage").is_err());
        assert!(parse("00000000  zz |.|").is_err());
    }
}

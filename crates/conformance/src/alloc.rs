//! A counting global allocator for the fuzzer's allocation budget.
//!
//! The length-prefix bomb defence (reject a length claim the remaining
//! bytes cannot satisfy *before* allocating) is only testable if tests
//! can observe allocation. [`CountingAlloc`] wraps the system allocator
//! and charges every allocation to a thread-local counter, so parallel
//! test threads measure independently. Binaries that want measurement
//! declare it as their `#[global_allocator]`; when none is installed,
//! [`measure`] still runs the closure and reports `None` for the byte
//! count, so library consumers need no special setup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the first [`CountingAlloc`] call; lets [`measure`] distinguish
/// "zero bytes allocated" from "no counting allocator installed".
static INSTALLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

fn charge(bytes: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    // try_with: the allocator can be re-entered during thread teardown
    // after the TLS slot is destroyed; dropping the charge there is fine.
    let _ = ALLOCATED.try_with(|c| c.set(c.get() + bytes as u64));
}

/// A [`System`]-backed allocator that counts bytes requested per thread.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping does not touch
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        charge(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        charge(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        charge(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Runs `f` and reports the bytes allocated on this thread during the
/// call, or `None` when no [`CountingAlloc`] is installed as the global
/// allocator. The count is cumulative-requested (frees are not
/// subtracted): a decoder that allocates a huge buffer and drops it
/// still gets charged, which is exactly what the bomb defence bounds.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Option<u64>) {
    let before = ALLOCATED.with(Cell::get);
    let result = f();
    let after = ALLOCATED.with(Cell::get);
    if INSTALLED.load(Ordering::Relaxed) {
        (result, Some(after - before))
    } else {
        (result, None)
    }
}

//! `conformance` — the hermetic conformance and adversarial-input harness.
//!
//! The paper's federation argument rests on every participant
//! interpreting the same messages identically; this crate is the safety
//! net that keeps the reproduction honest while its marshalling and
//! dispatch layers keep being refactored for performance. Three pillars:
//!
//! * [`corpus`] — a committed golden wire corpus under `corpus/`:
//!   canonical byte encodings of every message kind in every wire
//!   format, pinned as reviewable hex dumps. Any encoder change that
//!   moves bytes fails the golden tests loudly; intentional changes are
//!   regenerated with `experiments fuzz --regen-corpus` and reviewed as
//!   an ordinary diff.
//! * [`fuzz`] — a deterministic seeded mutation fuzzer: corpus-valid
//!   messages are truncated, bit-flipped, length-inflated, and spliced
//!   under a [`simnet::rng::DetRng`] stream, asserting decoders never
//!   panic, never allocate more than a budget proportional to the input
//!   length (see [`alloc`]), and satisfy decode→encode→decode
//!   idempotence whenever decoding succeeds.
//! * [`differential`] — seeded whole-world runs pinning the sequential,
//!   MQUERY-batched, and composed-BindingCache `FindNSM` paths — and
//!   the serve-stale, NSM-failover, and ChClient-failover fault paths —
//!   to byte-identical bindings.
//!
//! `TESTING.md` at the repository root describes the harness design and
//! the regeneration workflow.

#![warn(missing_docs)]

pub mod alloc;
pub mod corpus;
pub mod differential;
pub mod fuzz;
pub mod hexdump;

//! Differential path pinning: every route to a binding must produce the
//! same bytes.
//!
//! The repository keeps growing faster `FindNSM` paths (MQUERY batching,
//! the composed `BindingCache`, serve-stale fallbacks, NSM and
//! Clearinghouse failover). The paper's correctness claim is that these
//! are *transparent* optimisations — a client cannot tell which path
//! answered. This module makes that claim executable: for a seeded
//! world, run the same query mix down every path and assert the
//! XDR-encoded results are byte-identical, per seed, across a seed
//! sweep. The seed perturbs query order and fault timing, so a path
//! that is only accidentally equivalent under one schedule gets caught.

use std::sync::Arc;

use clearinghouse::property::PROP_ADDRESS;
use clearinghouse::replication::ChCluster;
use clearinghouse::{deploy as deploy_ch, ChClient, ChDb, ChServer, ThreePartName};
use hns_core::cache::CacheMode;
use hns_core::colocation::HnsHandle;
use hns_core::name::HnsName;
use hns_core::query::QueryClass;
use hrpc::HrpcBinding;
use nsms::harness::{Testbed, DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM};
use nsms::nsm_cache::NsmCacheForm;
use nsms::Importer;
use simnet::faults::FaultPlan;
use simnet::rng::DetRng;
use simnet::time::SimDuration;

/// The canonical byte form of a binding for comparison: its XDR-encoded
/// wire value, the exact representation a remote client receives.
pub fn binding_bytes(binding: &HrpcBinding) -> Vec<u8> {
    wire::xdr::encode(&binding.to_value()).expect("binding encodes")
}

/// Summary of one seeded differential run (all assertions passed).
#[derive(Debug)]
pub struct SeedSummary {
    /// The seed.
    pub seed: u64,
    /// Targets compared across the three FindNSM paths.
    pub targets: usize,
    /// Fault scenarios pinned (serve-stale, NSM failover, ChClient
    /// failover).
    pub fault_scenarios: usize,
}

/// The query targets every path must agree on: the four remotely
/// deployed query classes, across both name services. (Host-address
/// NSMs are linked locally in the testbed and have no remote binding,
/// so `FindNSM` cannot designate them by design.)
fn targets(tb: &Testbed) -> Vec<(QueryClass, HnsName, &'static str)> {
    let n = |ctx: hns_core::name::Context, s: &str| HnsName::new(ctx, s).expect("target name");
    vec![
        (
            QueryClass::hrpc_binding(),
            n(tb.ctx_bind(), "fiji.cs.washington.edu"),
            "binding/bind",
        ),
        (
            QueryClass::hrpc_binding(),
            n(tb.ctx_ch(), "printserver:cs:uw"),
            "binding/ch",
        ),
        (
            QueryClass::mailbox_location(),
            n(tb.ctx_bind(), "alice.cs.washington.edu"),
            "mailbox/bind",
        ),
        (
            QueryClass::mailbox_location(),
            n(tb.ctx_ch(), "bob:cs:uw"),
            "mailbox/ch",
        ),
        (
            QueryClass::file_location(),
            n(tb.ctx_bind(), "sources.cs.washington.edu"),
            "file/bind",
        ),
        (
            QueryClass::file_location(),
            n(tb.ctx_ch(), "designs:cs:uw"),
            "file/ch",
        ),
        (
            QueryClass::user_info(),
            n(tb.ctx_bind(), "mfs.cs.washington.edu"),
            "user/bind",
        ),
        (
            QueryClass::user_info(),
            n(tb.ctx_ch(), "bob:cs:uw"),
            "user/ch",
        ),
    ]
}

fn shuffle<T>(rng: &mut DetRng, items: &mut [T]) {
    // Fisher–Yates; DetRng has no shuffle of its own.
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// Part A: sequential vs MQUERY-batched vs composed-BindingCache
/// `FindNSM`, compared target by target in seed-shuffled order.
fn pin_findnsm_paths(tb: &Testbed, rng: &mut DetRng, seed: u64) -> usize {
    let sequential = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    sequential.set_batching(false);
    sequential.set_binding_cache(false);
    let batched = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    batched.set_batching(true);
    batched.set_binding_cache(false);
    let composed = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    composed.set_batching(true);
    composed.set_binding_cache(true);

    let mut targets = targets(tb);
    shuffle(rng, &mut targets);
    for (qc, name, label) in &targets {
        let seq = binding_bytes(&sequential.find_nsm(qc, name).expect("sequential FindNSM"));
        let bat = binding_bytes(&batched.find_nsm(qc, name).expect("batched FindNSM"));
        assert_eq!(
            seq, bat,
            "seed {seed}: batched FindNSM diverged from sequential on {label}"
        );
        let com = binding_bytes(&composed.find_nsm(qc, name).expect("composed FindNSM"));
        assert_eq!(
            seq, com,
            "seed {seed}: composed FindNSM diverged from sequential on {label}"
        );
        // Second query hits the composed BindingCache; the hit must be
        // indistinguishable from the miss.
        let com_cached = binding_bytes(&composed.find_nsm(qc, name).expect("cached FindNSM"));
        assert_eq!(
            com, com_cached,
            "seed {seed}: BindingCache hit diverged from its own miss on {label}"
        );
    }
    targets.len()
}

/// Part B: serve-stale. A warm client during a meta-store crash must
/// return the same bytes it returned fresh, merely marked stale.
fn pin_serve_stale(tb: &Testbed, rng: &mut DetRng, seed: u64) {
    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let qc = QueryClass::hrpc_binding();
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let fresh = binding_bytes(&warm.find_nsm(&qc, &name).expect("fresh FindNSM"));

    // Expire the cache with seed-jittered slack, then crash the meta
    // host for a seed-jittered window.
    tb.world
        .charge_ms(f64::from(hns_core::META_TTL) * 1000.0 + 1_000.0 + rng.next_below(5_000) as f64);
    let crash_start = tb.world.now();
    let heal = crash_start + SimDuration::from_ms(60_000 + rng.next_below(240_000));
    let mut plan = FaultPlan::new();
    plan.crash(tb.hosts.meta, crash_start, Some(heal));
    tb.world.set_faults(Some(plan));

    let (binding, report) = warm
        .find_nsm_report(&qc, &name)
        .expect("stale FindNSM during crash");
    assert!(
        report.stale_served,
        "seed {seed}: crash-window FindNSM must be marked stale"
    );
    assert_eq!(
        fresh,
        binding_bytes(&binding),
        "seed {seed}: serve-stale path diverged from the fresh path"
    );

    // Heal before the next scenario reuses the world.
    tb.world.set_faults(None);
    tb.world
        .charge(heal.since(tb.world.now()) + SimDuration::from_ms(1_000));
}

/// Part C: NSM failover. An `Import` answered by the replica binding
/// NSM must hand back the same binding bytes as the primary did.
fn pin_nsm_failover(tb: &Testbed, rng: &mut DetRng, seed: u64) {
    let replica = tb.deploy_binding_bind_replica(tb.hosts.agent, NsmCacheForm::Demarshalled);
    let warm = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);
    let imp = Importer::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        HnsHandle::Linked(Arc::clone(&warm)),
    );
    imp.set_alternate_nsm(Some(replica));
    let name = HnsName::new(tb.ctx_bind(), "fiji.cs.washington.edu").expect("name");
    let primary = binding_bytes(
        &imp.import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &name)
            .expect("pre-crash Import"),
    );

    let crash_start = tb.world.now();
    let heal = crash_start + SimDuration::from_ms(30_000 + rng.next_below(60_000));
    let mut plan = FaultPlan::new();
    plan.crash(tb.hosts.nsm, crash_start, Some(heal));
    tb.world.set_faults(Some(plan));

    let failover = binding_bytes(
        &imp.import(DESIRED_SERVICE, DESIRED_SERVICE_PROGRAM, &name)
            .expect("failover Import"),
    );
    assert_eq!(
        primary, failover,
        "seed {seed}: replica-NSM failover diverged from the primary path"
    );

    tb.world.set_faults(None);
    tb.world
        .charge(heal.since(tb.world.now()) + SimDuration::from_ms(1_000));
}

/// Part D: Clearinghouse read failover. A lookup served by a propagated
/// replica during a primary crash must produce the same value bytes.
fn pin_ch_failover(tb: &Testbed, rng: &mut DetRng, seed: u64) {
    let replica_host = tb.world.add_host("backup-dlion.cs.washington.edu");
    let replica_server = ChServer::new(
        "clearinghouse-replica",
        ChDb::new(vec![("cs".into(), "uw".into())]),
    );
    replica_server.register_key(tb.creds.identity.clone(), tb.creds.key);
    let cluster = ChCluster::new(
        Arc::clone(&tb.world),
        Arc::clone(&tb.ch.server),
        tb.ch.host,
        vec![(Arc::clone(&replica_server), replica_host)],
    );
    cluster.propagate();
    let replica = deploy_ch(&tb.net, replica_host, replica_server);

    let mut client = ChClient::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        tb.ch.binding,
        tb.creds.clone(),
    );
    let name = ThreePartName::parse("printserver:cs:uw").expect("name");
    let primary = client
        .lookup_item(&name, PROP_ADDRESS)
        .expect("primary lookup");
    client.set_read_fallbacks(vec![replica.binding]);

    let crash_start = tb.world.now();
    let heal = crash_start + SimDuration::from_ms(30_000 + rng.next_below(60_000));
    let mut plan = FaultPlan::new();
    plan.crash(tb.hosts.ch, crash_start, Some(heal));
    tb.world.set_faults(Some(plan));

    let fallback = client
        .lookup_item(&name, PROP_ADDRESS)
        .expect("fallback lookup");
    assert_eq!(
        wire::xdr::encode(&primary).expect("value encodes"),
        wire::xdr::encode(&fallback).expect("value encodes"),
        "seed {seed}: ChClient read failover diverged from the primary"
    );

    tb.world.set_faults(None);
    tb.world
        .charge(heal.since(tb.world.now()) + SimDuration::from_ms(1_000));
}

/// Runs the full differential suite for one seed, panicking with the
/// seed and diverging path on any mismatch.
pub fn run_seed(seed: u64) -> SeedSummary {
    let mut rng = DetRng::new(seed ^ 0xD1FF_EE75);
    let tb = Testbed::build();
    tb.deploy_binding_nsms(tb.hosts.nsm, NsmCacheForm::Demarshalled);
    tb.deploy_extension_nsms(tb.hosts.nsm);
    tb.deploy_user_nsms(tb.hosts.nsm);

    let targets = pin_findnsm_paths(&tb, &mut rng, seed);
    pin_serve_stale(&tb, &mut rng, seed);
    pin_nsm_failover(&tb, &mut rng, seed);
    pin_ch_failover(&tb, &mut rng, seed);

    SeedSummary {
        seed,
        targets,
        fault_scenarios: 3,
    }
}

//! Deterministic seeded mutation fuzzing over the golden corpus.
//!
//! Rather than throwing random bytes at the decoders (which mostly
//! exercises the first tag check), the fuzzer starts from corpus-valid
//! messages and applies structured damage: truncation, bit flips,
//! length-field inflation, and cross-message splices. Each iteration
//! asserts three properties:
//!
//! 1. **No panics** — malformed input must produce a typed error, never
//!    an abort (checked via `catch_unwind`).
//! 2. **Bounded allocation** — decoding must never allocate more than a
//!    budget proportional to the input length. This is the regression
//!    guard for the length-prefix bomb defence.
//! 3. **Idempotence** — when a mutant *does* decode, the decoded message
//!    must survive encode→decode unchanged.
//!
//! Everything derives from one [`DetRng`] stream, so a failing seed
//! replays exactly: `experiments fuzz --seed N --iters M`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use simnet::rng::DetRng;

use crate::alloc;
use crate::corpus::{self, check_idempotence, decode_message, CorpusEntry};

/// Per-byte allocation budget multiplier. A self-describing decode can
/// legitimately expand input (tags, Vec growth doubling, String
/// overhead) but only by a constant factor.
pub const ALLOC_BYTES_PER_INPUT_BYTE: u64 = 256;

/// Fixed allocation allowance, covering decoder setup costs that do not
/// scale with input (error formatting, small fixed buffers).
pub const ALLOC_FIXED_BUDGET: u64 = 16 * 1024;

/// Allocation budget for decoding `len` input bytes.
pub fn alloc_budget(len: usize) -> u64 {
    ALLOC_BYTES_PER_INPUT_BYTE * len as u64 + ALLOC_FIXED_BUDGET
}

/// Fuzzer parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Iterations to run.
    pub iters: u64,
    /// Seed for the mutation stream.
    pub seed: u64,
}

/// Outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Mutants that decoded successfully (and passed idempotence).
    pub decode_ok: u64,
    /// Mutants rejected with a typed error.
    pub decode_rejected: u64,
    /// Property violations (panic, budget, idempotence). Empty on a
    /// clean run.
    pub violations: Vec<String>,
    /// Whether a counting allocator was installed (budget enforced).
    pub alloc_tracked: bool,
    /// Largest single-decode allocation observed, bytes.
    pub max_alloc: u64,
}

impl FuzzReport {
    /// True when no property was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary for the CLI.
    pub fn render(&self) -> String {
        let alloc_line = if self.alloc_tracked {
            format!("max single-decode allocation {} bytes", self.max_alloc)
        } else {
            "allocation tracking off (no counting allocator installed)".to_string()
        };
        let mut s = format!(
            "fuzz: {} iterations, {} decoded, {} rejected, {} violations; {}",
            self.iters,
            self.decode_ok,
            self.decode_rejected,
            self.violations.len(),
            alloc_line
        );
        for v in self.violations.iter().take(10) {
            s.push_str("\n  violation: ");
            s.push_str(v);
        }
        if self.violations.len() > 10 {
            s.push_str(&format!("\n  ... and {} more", self.violations.len() - 10));
        }
        s
    }
}

/// Applies one seed-chosen mutation to `base`, possibly splicing in a
/// tail from `other` (a second corpus entry in the same format family).
fn mutate(rng: &mut DetRng, base: &[u8], other: &[u8]) -> Vec<u8> {
    match rng.next_below(5) {
        // Passthrough: valid input must keep decoding (and exercises
        // the idempotence check on every entry).
        0 => base.to_vec(),
        // Truncate at a random point.
        1 => {
            let cut = rng.next_below(base.len() as u64 + 1) as usize;
            base[..cut].to_vec()
        }
        // Flip 1–4 bits.
        2 => {
            let mut m = base.to_vec();
            if !m.is_empty() {
                for _ in 0..=rng.next_below(4) {
                    let i = rng.next_below(m.len() as u64) as usize;
                    m[i] ^= 1 << rng.next_below(8);
                }
            }
            m
        }
        // Length-field inflation: overwrite 4 bytes at a random offset
        // with 0xFF-heavy values, the classic length-prefix bomb.
        3 => {
            let mut m = base.to_vec();
            if m.len() >= 4 {
                let i = rng.next_below(m.len() as u64 - 3) as usize;
                m[i] = 0xFF;
                m[i + 1] = if rng.chance(0.5) { 0xFF } else { 0x00 };
                m[i + 2] = 0xFF;
                m[i + 3] = 0xFF;
            }
            m
        }
        // Splice: head of one valid message, tail of another.
        _ => {
            let head = rng.next_below(base.len() as u64 + 1) as usize;
            let tail = rng.next_below(other.len() as u64 + 1) as usize;
            let mut m = base[..head].to_vec();
            m.extend_from_slice(&other[other.len() - tail..]);
            m
        }
    }
}

/// Runs the fuzzer. Never panics: decoder panics are caught and
/// reported as violations in the returned report.
pub fn run(config: FuzzConfig) -> FuzzReport {
    let entries = corpus::entries();
    let mut rng = DetRng::new(config.seed ^ 0xC0DE_F022_u64);
    let mut report = FuzzReport {
        iters: config.iters,
        decode_ok: 0,
        decode_rejected: 0,
        violations: Vec::new(),
        alloc_tracked: false,
        max_alloc: 0,
    };

    for iter in 0..config.iters {
        let entry: &CorpusEntry = &entries[rng.next_below(entries.len() as u64) as usize];
        // Splice partner from the same decoder family, so splices land
        // on inputs the decoder could plausibly be fed.
        let partners: Vec<&CorpusEntry> = entries
            .iter()
            .filter(|e| e.decoder == entry.decoder)
            .collect();
        let other = partners[rng.next_below(partners.len() as u64) as usize];
        let mutant = mutate(&mut rng, &entry.bytes, &other.bytes);

        let decoder = entry.decoder;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            alloc::measure(|| decode_message(decoder, &mutant))
        }));
        let (decoded, used) = match outcome {
            Ok(pair) => pair,
            Err(_) => {
                report.violations.push(format!(
                    "iter {iter}: PANIC decoding {decoder:?} mutant of `{}` ({} bytes, seed {})",
                    entry.name,
                    mutant.len(),
                    config.seed
                ));
                continue;
            }
        };

        if let Some(used) = used {
            report.alloc_tracked = true;
            report.max_alloc = report.max_alloc.max(used);
            let budget = alloc_budget(mutant.len());
            if used > budget {
                report.violations.push(format!(
                    "iter {iter}: allocation {used} bytes exceeds budget {budget} \
                     for a {}-byte mutant of `{}` (seed {})",
                    mutant.len(),
                    entry.name,
                    config.seed
                ));
            }
        }

        match decoded {
            Some(message) => {
                report.decode_ok += 1;
                // Idempotence runs outside the measured region: the
                // budget bounds *decoding*, not re-encoding.
                if let Err(e) = check_idempotence(decoder, &message) {
                    report.violations.push(format!(
                        "iter {iter}: idempotence failure on mutant of `{}`: {e} (seed {})",
                        entry.name, config.seed
                    ));
                }
            }
            None => report.decode_rejected += 1,
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // Library-level smoke: no allocator installed here, so this checks
    // the panic/idempotence properties and the None-tracking path. The
    // budget property is enforced in `tests/fuzz_seeded.rs` and the
    // experiments binary, which install `CountingAlloc`.
    #[test]
    fn short_run_is_clean_and_deterministic() {
        let a = run(FuzzConfig {
            iters: 400,
            seed: 7,
        });
        assert!(a.ok(), "{}", a.render());
        assert!(a.decode_ok > 0, "passthrough mutants must decode");
        assert!(a.decode_rejected > 0, "damage must produce rejections");
        let b = run(FuzzConfig {
            iters: 400,
            seed: 7,
        });
        assert_eq!(a.decode_ok, b.decode_ok);
        assert_eq!(a.decode_rejected, b.decode_rejected);
    }
}

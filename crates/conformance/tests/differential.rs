//! Differential path pinning across a seed sweep.
//!
//! Each seed builds a fresh seeded world and pins four path families to
//! byte-identical results: sequential vs batched vs composed-cache
//! `FindNSM`, serve-stale, NSM failover, and ChClient read failover.
//! The seed shuffles query order and jitters fault timing, so the
//! equivalence is checked across schedules, not just once.

use conformance::differential;

/// The required sweep: nine seeds (≥ 8 per the acceptance criteria),
/// including the repo's traditional 1987.
#[test]
fn all_paths_agree_across_the_seed_sweep() {
    for seed in [0u64, 1, 2, 3, 4, 5, 6, 7, 1987] {
        let summary = differential::run_seed(seed);
        assert_eq!(summary.targets, 8, "seed {seed}: full target mix ran");
        assert_eq!(summary.fault_scenarios, 3);
    }
}

//! Golden corpus tests: the committed hex dumps are the contract.
//!
//! These run under plain `cargo test` (tier 1): any encoder change that
//! moves bytes on the wire fails here and must be either fixed or
//! consciously regenerated (`experiments fuzz --regen-corpus`) and
//! reviewed as a corpus diff.

use std::collections::BTreeSet;

use conformance::corpus::{
    self, check_idempotence, decode_message, reencode, verify_entry, Decoder,
};
use conformance::hexdump;

/// Every committed file matches its constructor byte-for-byte, nothing
/// is missing, and nothing is stray.
#[test]
fn committed_corpus_matches_constructors() {
    if let Err(problems) = corpus::check() {
        panic!(
            "golden corpus drift ({} problems):\n  {}",
            problems.len(),
            problems.join("\n  ")
        );
    }
}

/// The corpus spans all three wire formats and the full message-kind
/// inventory the ISSUE requires.
#[test]
fn corpus_covers_formats_and_kinds() {
    let entries = corpus::entries();
    let formats: BTreeSet<&str> = entries.iter().map(|e| e.decoder.format()).collect();
    assert_eq!(
        formats.into_iter().collect::<Vec<_>>(),
        vec!["courier", "fast", "xdr"],
        "all three wire formats represented"
    );
    let kinds: BTreeSet<&str> = entries.iter().map(|e| e.kind).collect();
    assert!(
        kinds.len() >= 6,
        "at least six message kinds, got {kinds:?}"
    );
    for kind in [
        "question",
        "answer",
        "multi-question",
        "multi-answer",
        "update",
        "axfr",
        "ixfr",
        "chain-link",
        "binding",
        "rr-batch",
    ] {
        assert!(kinds.contains(kind), "kind `{kind}` missing from corpus");
    }
}

/// Decoding from the *committed file* (not the in-memory constructor)
/// succeeds, is idempotent, and re-encodes to the identical bytes.
/// Going through the file catches a decoder regression even if the
/// matching encoder drifted in lockstep.
#[test]
fn committed_bytes_decode_and_reencode_canonically() {
    for entry in corpus::entries() {
        let path = corpus::corpus_dir().join(format!("{}.hex", entry.name));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable ({e}); run --regen-corpus", entry.name));
        let bytes = hexdump::parse(&text).expect("committed dump parses");
        let decoded = decode_message(entry.decoder, &bytes)
            .unwrap_or_else(|| panic!("{}: committed bytes no longer decode", entry.name));
        check_idempotence(entry.decoder, &decoded)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let reencoded = reencode(entry.decoder, &decoded).expect("re-encode");
        assert_eq!(
            reencoded, bytes,
            "{}: corpus entries must be canonical (decode→encode is identity on them)",
            entry.name
        );
    }
}

/// Every strict prefix of every corpus entry is rejected with a typed
/// error — none of the formats are self-delimiting, so a prefix that
/// "succeeds" would mean a decoder under-consumed silently.
#[test]
fn every_prefix_of_every_entry_is_rejected() {
    for entry in corpus::entries() {
        for cut in 0..entry.bytes.len() {
            assert!(
                decode_message(entry.decoder, &entry.bytes[..cut]).is_none(),
                "{}: {cut}-byte prefix decoded",
                entry.name
            );
        }
        assert!(
            decode_message(entry.decoder, &entry.bytes).is_some(),
            "{}: full entry must decode",
            entry.name
        );
    }
}

/// Demonstrates the drift trip-wire end to end: flip one byte of what
/// an "encoder" produced and the verification against the committed
/// text fails with an actionable message.
#[test]
fn single_byte_encoder_change_fails_verification() {
    for entry in corpus::entries() {
        let committed = corpus::render_entry(&entry);
        let mut drifted = entry.clone();
        drifted.bytes[0] ^= 0x01;
        let err = verify_entry(&drifted, &committed)
            .expect_err("a one-byte encoder change must fail the golden check");
        assert!(err.contains(entry.name), "names the entry: {err}");
        assert!(err.contains("regen-corpus"), "points at the remedy: {err}");
    }
}

/// The committed files carry the kind/decoder header so review diffs
/// are self-describing.
#[test]
fn committed_files_are_self_describing() {
    for entry in corpus::entries() {
        let path = corpus::corpus_dir().join(format!("{}.hex", entry.name));
        let text = std::fs::read_to_string(&path).expect("committed file");
        let first = text.lines().next().unwrap_or("");
        assert!(
            first.starts_with('#') && first.contains(entry.kind),
            "{}: header comment should name the kind: {first:?}",
            entry.name
        );
    }
    // And the header survives a parse round-trip (comments ignored).
    let entry = &corpus::entries()[0];
    let text = corpus::render_entry(entry);
    assert_eq!(hexdump::parse(&text).expect("parse"), entry.bytes);
    assert_eq!(entry.decoder, Decoder::XdrValue);
}

//! Seeded mutation fuzzing under the counting allocator.
//!
//! This binary installs [`CountingAlloc`] as the global allocator, so
//! the fuzzer's allocation-budget property is actually enforced here
//! (the library's own smoke test runs without it and only checks the
//! panic and idempotence properties).

use conformance::alloc::{self, CountingAlloc};
use conformance::fuzz::{self, alloc_budget, FuzzConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The CI workhorse: 5000 iterations at seed 0, zero violations, with
/// allocation tracking live.
#[test]
fn five_thousand_iterations_seed_zero_are_clean() {
    let report = fuzz::run(FuzzConfig {
        iters: 5_000,
        seed: 0,
    });
    assert!(report.ok(), "{}", report.render());
    assert!(report.alloc_tracked, "budget must actually be enforced");
    assert_eq!(report.iters, 5_000);
    assert!(report.decode_ok > 0 && report.decode_rejected > 0);
}

/// A sweep of further seeds at lower iteration counts: mutation
/// coverage must not depend on one lucky stream.
#[test]
fn seed_sweep_is_clean() {
    for seed in [1u64, 2, 3, 7, 42, 1987] {
        let report = fuzz::run(FuzzConfig { iters: 800, seed });
        assert!(report.ok(), "seed {seed}: {}", report.render());
    }
}

/// Same seed, same counts: the fuzzer itself must be deterministic or
/// a violation report is unreproducible.
#[test]
fn fuzzer_is_deterministic_per_seed() {
    let a = fuzz::run(FuzzConfig {
        iters: 1_000,
        seed: 11,
    });
    let b = fuzz::run(FuzzConfig {
        iters: 1_000,
        seed: 11,
    });
    assert_eq!(a.decode_ok, b.decode_ok);
    assert_eq!(a.decode_rejected, b.decode_rejected);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.max_alloc, b.max_alloc);
}

/// Regression for the length-prefix bomb defence: a tiny input whose
/// list header claims 2^20 elements must be rejected within the
/// allocation budget for its actual length. Before the remaining-bytes
/// bound, `Vec::with_capacity(min(claim, 1024))` pre-allocated ~32 KB
/// for this 8-byte input — an order of magnitude over budget.
#[test]
fn list_count_bomb_stays_within_budget() {
    // XDR: tag LIST (7), count 0x00100000, no elements behind it.
    let bomb: Vec<u8> = vec![0, 0, 0, 7, 0, 0x10, 0, 0];
    let (result, used) = alloc::measure(|| wire::xdr::decode(&bomb));
    assert!(result.is_err(), "bomb must be rejected");
    let used = used.expect("counting allocator installed");
    assert!(
        used <= alloc_budget(bomb.len()),
        "rejecting an 8-byte bomb allocated {used} bytes (budget {})",
        alloc_budget(bomb.len())
    );

    // Fast batch: empty name, record count 0xFFFF, nothing behind it.
    let bomb = vec![0, 0, 0xFF, 0xFF];
    let (result, used) = alloc::measure(|| wire::fast::decode_rr_batch(&bomb));
    assert!(result.is_err(), "bomb must be rejected");
    let used = used.expect("counting allocator installed");
    assert!(
        used <= alloc_budget(bomb.len()),
        "fast bomb allocated {used}"
    );
}

//! IXFR edge cases for the incremental preload path (PR 8 follow-up):
//! serial equality, the exact delta-log truncation boundary, and the
//! full-AXFR fallback — at both the preload-report and wire levels.

use bindns::axfr::{read_serial, transfer_zone_incremental, IxfrContents};
use bindns::name::DomainName;
use bindns::resolver::HrpcResolver;
use bindns::rr::ResourceRecord;
use bindns::update::UpdateOp;
use bindns::zone::DELTA_LOG_CAP;
use hns_core::cache::CacheMode;
use hns_core::service::PreloadMode;
use nsms::harness::Testbed;
use std::sync::Arc;

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).expect("static name")
}

/// Drives `n` dynamic updates into the meta zone (distinct names, so
/// each bumps the serial and occupies one delta-log slot).
fn churn(resolver: &HrpcResolver, tag: &str, n: usize) {
    for i in 0..n {
        resolver
            .update(&UpdateOp::Add(ResourceRecord::unspec(
                dn(&format!("{tag}{i}.churn.hns")),
                600,
                format!("v{i}").into_bytes(),
            )))
            .expect("meta-zone update");
    }
}

/// The preload mode ladder: first preload is a full transfer, an
/// immediate repeat is `Unchanged` (same serial, zero bytes), a small
/// churn yields `Incremental`, and churning past the delta-log cap
/// falls back to `Full` — each mode reported exactly.
#[test]
fn preload_reports_the_right_mode_at_each_edge() {
    let tb = Testbed::build();
    let resolver = HrpcResolver::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        tb.meta_bind.hrpc_binding,
    );
    let hns = tb.make_hns(tb.hosts.client, CacheMode::Demarshalled);

    let first = hns.preload().expect("first preload");
    assert_eq!(first.mode, PreloadMode::Full, "first preload is an AXFR");
    assert!(first.bytes > 0 && first.records > 0);

    // Serial equality: nothing changed, nothing ships.
    let again = hns.preload().expect("repeat preload");
    assert_eq!(again.mode, PreloadMode::Unchanged);
    assert_eq!(again.serial, first.serial, "serial pinned");
    assert_eq!(again.bytes, 0, "unchanged preload ships zero bytes");

    // A small churn: strictly incremental, and only the delta ships.
    churn(&resolver, "small", 3);
    let incr = hns.preload().expect("incremental preload");
    assert_eq!(incr.mode, PreloadMode::Incremental);
    assert!(incr.serial > first.serial);
    assert!(
        incr.bytes < first.bytes,
        "delta ({} bytes) must be smaller than the full zone ({} bytes)",
        incr.bytes,
        first.bytes
    );

    // Churn past the cap: our serial falls off the log, and the
    // preload must come back as (and report) a full transfer.
    churn(&resolver, "big", DELTA_LOG_CAP + 1);
    let fallback = hns.preload().expect("fallback preload");
    assert_eq!(
        fallback.mode,
        PreloadMode::Full,
        "truncated delta log forces a full transfer"
    );
    assert!(
        fallback.bytes >= first.bytes,
        "the whole (grown) zone rode back"
    );
}

/// Wire-level pinning of the truncation boundary: with the log full,
/// `from = floor` is served incrementally while `from = floor - 1`
/// falls back to a full transfer and bumps the fallback metric.
#[test]
fn ixfr_boundary_serial_is_exact_on_the_wire() {
    let tb = Testbed::build();
    let resolver = HrpcResolver::new(
        Arc::clone(&tb.net),
        tb.hosts.client,
        tb.meta_bind.hrpc_binding,
    );
    churn(&resolver, "fill", DELTA_LOG_CAP + 10);

    let serial = read_serial(
        &tb.net,
        tb.hosts.client,
        &tb.meta_bind.hrpc_binding,
        &tb.meta_origin,
    )
    .expect("read serial");
    // The log retains the newest DELTA_LOG_CAP serials, so the oldest
    // still-incremental starting point is exactly serial - CAP.
    let floor = serial - DELTA_LOG_CAP as u32;

    let at_floor = transfer_zone_incremental(
        &tb.net,
        tb.hosts.client,
        &tb.meta_bind.hrpc_binding,
        &tb.meta_origin,
        floor,
    )
    .expect("IXFR at the floor");
    assert!(
        matches!(at_floor.contents, IxfrContents::Incremental { .. }),
        "from = floor must still be incremental, got {:?}",
        at_floor.contents
    );
    let fallbacks_before = tb
        .world
        .metrics()
        .snapshot()
        .counter("bindns", "ixfr_fallbacks")
        .unwrap_or(0);

    let past_floor = transfer_zone_incremental(
        &tb.net,
        tb.hosts.client,
        &tb.meta_bind.hrpc_binding,
        &tb.meta_origin,
        floor - 1,
    )
    .expect("IXFR past the floor");
    assert!(
        matches!(past_floor.contents, IxfrContents::Full { .. }),
        "from = floor - 1 must fall back to full, got a different mode"
    );
    assert_eq!(past_floor.serial, serial);
    assert!(
        past_floor.size_bytes > at_floor.size_bytes,
        "the fallback ships the whole zone"
    );
    let fallbacks_after = tb
        .world
        .metrics()
        .snapshot()
        .counter("bindns", "ixfr_fallbacks")
        .unwrap_or(0);
    assert_eq!(
        fallbacks_after,
        fallbacks_before + 1,
        "exactly the past-floor request counted as a fallback"
    );

    // Current serial: unchanged, zero shipped.
    let current = transfer_zone_incremental(
        &tb.net,
        tb.hosts.client,
        &tb.meta_bind.hrpc_binding,
        &tb.meta_origin,
        serial,
    )
    .expect("IXFR at the current serial");
    assert!(matches!(current.contents, IxfrContents::Unchanged));
    assert_eq!(current.size_bytes, 0);
}

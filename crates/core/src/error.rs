//! HNS errors.

use std::fmt;

use hrpc::RpcError;

/// Failures in the HCS Name Service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HnsError {
    /// No context with that name is registered.
    NoSuchContext(String),
    /// No NSM is registered for the (name service, query class) pair.
    NoSuchNsm {
        /// Name service.
        name_service: String,
        /// Query class.
        query_class: String,
    },
    /// A needed host-address NSM is not linked with this HNS instance.
    ///
    /// Recursion in `FindNSM` is broken by linking host-address NSMs
    /// directly with the HNS; without one, mapping 3 cannot terminate.
    NoLinkedHostAddrNsm(String),
    /// A meta record was malformed.
    BadMetaRecord(String),
    /// An HNS name was malformed.
    BadName(String),
    /// The underlying RPC or name-service layer failed.
    Rpc(RpcError),
}

impl fmt::Display for HnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HnsError::NoSuchContext(c) => write!(f, "no such context: {c}"),
            HnsError::NoSuchNsm {
                name_service,
                query_class,
            } => {
                write!(f, "no NSM for query class {query_class} on {name_service}")
            }
            HnsError::NoLinkedHostAddrNsm(ns) => {
                write!(f, "no linked host-address NSM for {ns}")
            }
            HnsError::BadMetaRecord(msg) => write!(f, "bad meta record: {msg}"),
            HnsError::BadName(msg) => write!(f, "bad HNS name: {msg}"),
            HnsError::Rpc(e) => write!(f, "rpc: {e}"),
        }
    }
}

impl std::error::Error for HnsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HnsError::Rpc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RpcError> for HnsError {
    fn from(e: RpcError) -> Self {
        HnsError::Rpc(e)
    }
}

impl From<wire::WireError> for HnsError {
    fn from(e: wire::WireError) -> Self {
        HnsError::Rpc(RpcError::Wire(e))
    }
}

/// Result alias for HNS operations.
pub type HnsResult<T> = Result<T, HnsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        for (e, needle) in [
            (HnsError::NoSuchContext("c".into()), "context"),
            (
                HnsError::NoSuchNsm {
                    name_service: "BIND".into(),
                    query_class: "q".into(),
                },
                "NSM",
            ),
            (HnsError::NoLinkedHostAddrNsm("CH".into()), "linked"),
            (HnsError::BadMetaRecord("m".into()), "meta"),
            (HnsError::BadName("n".into()), "name"),
            (HnsError::Rpc(RpcError::BadProcedure(1)), "rpc"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn conversions_and_source() {
        let e: HnsError = RpcError::Timeout { attempts: 2 }.into();
        assert!(matches!(e, HnsError::Rpc(_)));
        assert!(std::error::Error::source(&e).is_some());
        let w: HnsError = wire::WireError::Truncated.into();
        assert!(matches!(w, HnsError::Rpc(RpcError::Wire(_))));
        assert!(std::error::Error::source(&HnsError::BadName("x".into())).is_none());
    }
}

//! Server-side meta-mapping chaser for the batched `FindNSM` pipeline.
//!
//! The cold `FindNSM` path walks five meta mappings (context → name
//! service, (NS, query class) → NSM name, NSM name → binding info, host
//! context → NS, (NS, `hostaddress`) → HA-NSM name), each a separate
//! round trip to the meta BIND. All five live in the same zone, so the
//! meta server itself can walk the chain once the first answer is known.
//!
//! [`MetaChaser`] is installed on the meta [`bindns::server::BindServer`]
//! as its [`AdditionalProvider`]: when an `MQUERY` for a context record
//! succeeds, the chaser follows mappings 2–5 for every query class named
//! in the request's hints and piggybacks the record sets on the reply.
//! The client ([`crate::service::Hns`]) stashes them, collapsing the cold
//! path from six round trips to at most two (the batch itself plus the
//! final host-address lookup against public BIND).
//!
//! Chasing is best-effort: a broken link just stops the chase for that
//! hint, and the client falls back to fetching the missing mappings
//! sequentially.

use std::collections::HashSet;
use std::sync::Arc;

use bindns::message::Question;
use bindns::name::DomainName;
use bindns::rr::{RType, ResourceRecord};
use bindns::server::AdditionalProvider;
use bindns::ZoneDb;

use crate::meta::{
    context_key_at, nsm_info_key_at, nsm_name_key_at, records_to_fetched, MetaStore,
};
use crate::nsm::NsmInfo;
use crate::query::QueryClass;

/// Chases meta mappings 2–5 inside the meta server's own zone database.
pub struct MetaChaser {
    origin: DomainName,
}

impl MetaChaser {
    /// Creates a chaser for the meta zone rooted at `origin`
    /// (conventionally `hns`), ready to install via
    /// [`bindns::server::BindServer::set_additional_provider`].
    pub fn new(origin: DomainName) -> Arc<Self> {
        Arc::new(MetaChaser { origin })
    }

    /// Decodes a meta record set's payload strings, or `None` if the set
    /// is malformed (which ends the chase for that link).
    fn payloads(records: &[ResourceRecord]) -> Option<Vec<String>> {
        records_to_fetched(records).ok().map(|f| f.value)
    }

    /// Looks up one meta key in the zone database, returning its records.
    fn fetch(db: &ZoneDb, key: &DomainName) -> Option<Vec<ResourceRecord>> {
        db.lookup(key, RType::Unspec).ok()
    }
}

impl AdditionalProvider for MetaChaser {
    fn additional(
        &self,
        db: &ZoneDb,
        question: &Question,
        answer: &[ResourceRecord],
        hints: &[String],
    ) -> Vec<(DomainName, Vec<ResourceRecord>)> {
        let mut out: Vec<(DomainName, Vec<ResourceRecord>)> = Vec::new();
        let mut seen: HashSet<DomainName> = HashSet::new();
        seen.insert(question.name.clone());

        // The primary answer must be a context record; its payload names
        // the name service that anchors every chased mapping.
        let Some(payloads) = Self::payloads(answer) else {
            return out;
        };
        let Ok(ctx_info) = MetaStore::parse_context(&payloads) else {
            return out;
        };

        let push = |out: &mut Vec<(DomainName, Vec<ResourceRecord>)>,
                    seen: &mut HashSet<DomainName>,
                    key: DomainName,
                    records: Vec<ResourceRecord>| {
            if seen.insert(key.clone()) {
                out.push((key, records));
            }
        };

        for hint in hints {
            // Mapping 2: (name service, query class) → NSM name.
            let Ok(k2) = nsm_name_key_at(&self.origin, &ctx_info.name_service, hint) else {
                continue;
            };
            let Some(r2) = Self::fetch(db, &k2) else {
                continue;
            };
            let Some(p2) = Self::payloads(&r2) else {
                continue;
            };
            let Ok(nsm_name) = MetaStore::parse_nsm_name(&p2) else {
                continue;
            };
            push(&mut out, &mut seen, k2, r2);

            // Mapping 3: NSM name → binding information (six records).
            let Ok(k3) = nsm_info_key_at(&self.origin, &nsm_name) else {
                continue;
            };
            let Some(r3) = Self::fetch(db, &k3) else {
                continue;
            };
            let Some(p3) = Self::payloads(&r3) else {
                continue;
            };
            let Ok(info) = NsmInfo::from_records(&nsm_name, &p3) else {
                continue;
            };
            push(&mut out, &mut seen, k3, r3);

            // Mapping 4: the NSM host's context → its name service.
            let Ok(k4) = context_key_at(&self.origin, info.host_context.as_str()) else {
                continue;
            };
            let Some(r4) = Self::fetch(db, &k4) else {
                continue;
            };
            let Some(p4) = Self::payloads(&r4) else {
                continue;
            };
            let Ok(host_ctx) = MetaStore::parse_context(&p4) else {
                continue;
            };
            push(&mut out, &mut seen, k4, r4);

            // Mapping 5: (host's NS, hostaddress) → host-address NSM name.
            let Ok(k5) = nsm_name_key_at(
                &self.origin,
                &host_ctx.name_service,
                QueryClass::host_address().as_str(),
            ) else {
                continue;
            };
            let Some(r5) = Self::fetch(db, &k5) else {
                continue;
            };
            push(&mut out, &mut seen, k5, r5);
        }
        out
    }
}

impl std::fmt::Debug for MetaChaser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaChaser")
            .field("origin", &self.origin.to_string())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{MetaStore, META_TTL};
    use crate::name::{Context, NameMapping};
    use crate::nsm::SuiteTag;
    use bindns::server::{deploy, single_zone_server, BindDeployment};
    use bindns::zone::Zone;
    use hrpc::net::RpcNet;
    use hrpc::ProgramId;
    use simnet::world::World;

    fn ctx(s: &str) -> Context {
        Context::new(s).expect("ctx")
    }

    fn origin() -> DomainName {
        DomainName::parse("hns").expect("origin")
    }

    /// Meta BIND with a chaser installed, populated with the full mapping
    /// chain for the `bind-uw` context and the `hrpcbinding` query class.
    fn setup() -> (Arc<simnet::World>, MetaStore, BindDeployment) {
        let world = World::paper();
        let hns_host = world.add_host("hns-host");
        let meta_host = world.add_host("meta-bind-host");
        let net = RpcNet::new(Arc::clone(&world));
        let zone = Zone::new(origin(), META_TTL);
        let dep = deploy(&net, meta_host, single_zone_server("meta-bind", zone, true));
        dep.server
            .set_additional_provider(MetaChaser::new(origin()));
        let resolver = bindns::HrpcResolver::new(net, hns_host, dep.hrpc_binding);
        let meta = MetaStore::new(resolver, origin());

        meta.register_context(&ctx("bind-uw"), "BIND", &NameMapping::Identity)
            .expect("ctx");
        meta.register_nsm("BIND", &QueryClass::hrpc_binding(), "nsm-hrpc-bind")
            .expect("map");
        meta.register_nsm_info(&NsmInfo {
            nsm_name: "nsm-hrpc-bind".into(),
            host_name: "june.cs.washington.edu".into(),
            host_context: ctx("bind-uw"),
            program: ProgramId(300_001),
            port: 1025,
            suite: SuiteTag::Sun,
            version: 1,
            owner: "hcs".into(),
        })
        .expect("info");
        meta.register_nsm("BIND", &QueryClass::host_address(), "nsm-ha-bind")
            .expect("ha map");
        (world, meta, dep)
    }

    #[test]
    fn chaser_attaches_mappings_two_through_five() {
        let (world, meta, _dep) = setup();
        let key = meta.context_key(&ctx("bind-uw")).expect("key");
        let (result, _, delta) =
            world.measure(|| meta.fetch_batch(&key, &["hrpcbinding".to_string()]));
        let batch = result.expect("batch");
        assert_eq!(delta.remote_calls, 1, "whole chain in one round trip");
        assert!(batch.primary.is_some());
        // Mapping 4's key equals the primary (same context), so the chaser
        // dedupes it: mappings 2, 3, and 5 come back as additional sets.
        let owners: Vec<String> = batch
            .additional
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        assert_eq!(owners.len(), 3, "additional sets: {owners:?}");
        assert!(owners[0].starts_with("map.bind--hrpcbinding."));
        assert!(owners[1].starts_with("info.nsm-hrpc-bind."));
        assert!(owners[2].starts_with("map.bind--hostaddress."));
        let info_set = &batch.additional[1].1;
        assert_eq!(info_set.rrs, NsmInfo::RECORDS);
    }

    #[test]
    fn chaser_with_distinct_host_context_attaches_four_sets() {
        let (world, meta, _dep) = setup();
        // An NSM whose host lives in a different context: mapping 4 is no
        // longer a duplicate of the primary, so all four sets come back.
        meta.register_context(&ctx("ch-uw"), "Clearinghouse", &NameMapping::Identity)
            .expect("ctx");
        meta.register_nsm("Clearinghouse", &QueryClass::host_address(), "nsm-ha-ch")
            .expect("ha map");
        meta.register_nsm_info(&NsmInfo {
            nsm_name: "nsm-hrpc-bind".into(),
            host_name: "ivory.cs.washington.edu".into(),
            host_context: ctx("ch-uw"),
            program: ProgramId(300_001),
            port: 1025,
            suite: SuiteTag::Sun,
            version: 1,
            owner: "hcs".into(),
        })
        .expect("info");
        let key = meta.context_key(&ctx("bind-uw")).expect("key");
        let batch = world
            .measure(|| meta.fetch_batch(&key, &["hrpcbinding".to_string()]))
            .0
            .expect("batch");
        assert_eq!(batch.additional.len(), 4);
        let owners: Vec<String> = batch
            .additional
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        assert!(owners[2].starts_with("ctx.ch-uw."));
        assert!(owners[3].starts_with("map.clearinghouse--hostaddress."));
    }

    #[test]
    fn broken_chain_degrades_to_partial_batch() {
        let (world, meta, _dep) = setup();
        // Unknown query class: mapping 2 fails immediately, nothing chased.
        let key = meta.context_key(&ctx("bind-uw")).expect("key");
        let batch = world
            .measure(|| meta.fetch_batch(&key, &["mailboxlocation".to_string()]))
            .0
            .expect("batch");
        assert!(batch.primary.is_some());
        assert!(batch.additional.is_empty());
    }
}

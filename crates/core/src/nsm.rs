//! Naming Semantics Managers.
//!
//! "Each NSM understands the semantics of naming for a particular query
//! class and a particular name service. ... All NSMs for a particular
//! query class have identical client interfaces." The trait below is that
//! interface; concrete NSMs (for BIND, for the Clearinghouse, per query
//! class) live in the `nsms` crate.
//!
//! "The NSMs are neither HNS nor application code per se. Rather, they are
//! code managed by the HNS and shared by the applications."

use std::sync::Arc;

use simnet::topology::HostId;

use hrpc::error::{RpcError, RpcResult};
use hrpc::net::RpcNet;
use hrpc::server::{CallCtx, RpcService};
use hrpc::{ComponentSet, HrpcBinding, ProgramId};
use wire::Value;

use crate::error::{HnsError, HnsResult};
use crate::name::{Context, HnsName};
use crate::query::QueryClass;

/// The single NSM procedure: perform a query.
pub const NSM_PROC_QUERY: u32 = 1;

/// A Naming Semantics Manager.
pub trait Nsm: Send + Sync {
    /// Globally unique NSM name (registered in the HNS meta store).
    fn nsm_name(&self) -> &str;

    /// The query class this NSM serves.
    fn query_class(&self) -> QueryClass;

    /// Handles one query. `hns_name` is the original HNS name; the NSM
    /// translates the individual name to the local name, interrogates its
    /// name service, and returns the query class's standard result format.
    fn handle(&self, hns_name: &HnsName, args: &Value) -> RpcResult<Value>;
}

/// Adapts an [`Nsm`] into an RPC service so it can be exported remotely.
pub struct NsmService {
    inner: Arc<dyn Nsm>,
}

impl NsmService {
    /// Wraps an NSM.
    pub fn new(inner: Arc<dyn Nsm>) -> Arc<Self> {
        Arc::new(NsmService { inner })
    }
}

impl RpcService for NsmService {
    fn service_name(&self) -> &str {
        self.inner.nsm_name()
    }

    fn dispatch(&self, ctx: &CallCtx<'_>, proc_id: u32, args: &Value) -> RpcResult<Value> {
        if proc_id != NSM_PROC_QUERY {
            return Err(RpcError::BadProcedure(proc_id));
        }
        let context = Context::new(args.str_field("context")?)
            .map_err(|e| RpcError::Service(e.to_string()))?;
        let hns_name = HnsName::new(context, args.str_field("name")?)
            .map_err(|e| RpcError::Service(e.to_string()))?;
        ctx.world.metrics().inc("nsm", "queries");
        ctx.world.trace(
            Some(ctx.host),
            simnet::trace::TraceKind::Nsm,
            format!("{}: query for {}", self.inner.nsm_name(), hns_name),
        );
        let span = ctx
            .world
            .span_lazy(Some(ctx.host), simnet::trace::TraceKind::Nsm, || {
                format!("NSM {} handles {}", self.inner.nsm_name(), hns_name)
            });
        let result = self.inner.handle(&hns_name, args);
        drop(span);
        result
    }
}

impl std::fmt::Debug for NsmService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsmService")
            .field("nsm", &self.inner.nsm_name())
            .finish()
    }
}

/// Client-side helper for calling NSMs through the identical per-query-class
/// interface.
pub struct NsmClient {
    net: Arc<RpcNet>,
    host: HostId,
}

impl NsmClient {
    /// Creates a client for code running on `host`.
    pub fn new(net: Arc<RpcNet>, host: HostId) -> Self {
        NsmClient { net, host }
    }

    /// Calls the NSM designated by `binding` with the original HNS name
    /// and any query-specific arguments.
    pub fn call(
        &self,
        binding: &HrpcBinding,
        hns_name: &HnsName,
        extra: Vec<(&str, Value)>,
    ) -> RpcResult<Value> {
        let world = self.net.world();
        world.metrics().inc("nsm", "client_calls");
        if !world.topology.colocated(self.host, binding.host) {
            // Marshalling of the NSM interface arguments on a remote hop.
            world.charge_ms(world.costs.nsm_arg_marshal);
        }
        let mut fields = vec![
            ("context", Value::str(hns_name.context.as_str())),
            ("name", Value::str(hns_name.individual.clone())),
        ];
        fields.extend(extra);
        self.net
            .call(self.host, binding, NSM_PROC_QUERY, &Value::record(fields))
    }
}

impl std::fmt::Debug for NsmClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsmClient")
            .field("host", &self.host)
            .finish()
    }
}

/// The RPC suite an NSM is reachable through, as stored in the meta store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteTag {
    /// Sun RPC.
    Sun,
    /// Courier.
    Courier,
    /// Raw HRPC over TCP.
    RawTcp,
    /// Raw HRPC over UDP.
    RawUdp,
}

impl SuiteTag {
    /// Meta-store spelling.
    pub fn encode(self) -> &'static str {
        match self {
            SuiteTag::Sun => "sun",
            SuiteTag::Courier => "courier",
            SuiteTag::RawTcp => "rawtcp",
            SuiteTag::RawUdp => "rawudp",
        }
    }

    /// Parses the meta-store spelling.
    pub fn decode(s: &str) -> HnsResult<SuiteTag> {
        match s {
            "sun" => Ok(SuiteTag::Sun),
            "courier" => Ok(SuiteTag::Courier),
            "rawtcp" => Ok(SuiteTag::RawTcp),
            "rawudp" => Ok(SuiteTag::RawUdp),
            other => Err(HnsError::BadMetaRecord(format!("bad suite `{other}`"))),
        }
    }

    /// The component set for calling an NSM at a known port.
    pub fn components(self, port: u16) -> ComponentSet {
        match self {
            SuiteTag::Sun => ComponentSet {
                binding: hrpc::BindingProtocol::StaticPort(port),
                ..ComponentSet::sun()
            },
            SuiteTag::Courier => ComponentSet {
                binding: hrpc::BindingProtocol::StaticPort(port),
                ..ComponentSet::courier()
            },
            SuiteTag::RawTcp => ComponentSet::raw_tcp(port),
            SuiteTag::RawUdp => ComponentSet::raw_udp(port),
        }
    }
}

/// Registration-time description of an NSM: the "binding information"
/// mapping 3 of `FindNSM` retrieves. Stored as six resource records
/// ("contains, among other information, the host name on which the NSM
/// resides").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsmInfo {
    /// The NSM's registered name.
    pub nsm_name: String,
    /// Host name the NSM runs on — itself an HNS-resolvable name.
    pub host_name: String,
    /// Context in which `host_name` is interpreted.
    pub host_context: Context,
    /// Exported program number.
    pub program: ProgramId,
    /// Exported port.
    pub port: u16,
    /// RPC suite to call it with.
    pub suite: SuiteTag,
    /// Interface version.
    pub version: u32,
    /// Administrative owner (who registered it).
    pub owner: String,
}

impl NsmInfo {
    /// Number of resource records this info occupies in the meta store.
    pub const RECORDS: usize = 6;

    /// Encodes into the six meta-store record payloads.
    pub fn to_records(&self) -> Vec<String> {
        vec![
            format!("host={}", self.host_name),
            format!("hostctx={}", self.host_context),
            format!("prog={};port={}", self.program.0, self.port),
            format!("suite={}", self.suite.encode()),
            format!("ver={}", self.version),
            format!("owner={}", self.owner),
        ]
    }

    /// Decodes from meta-store record payloads.
    pub fn from_records(nsm_name: &str, records: &[String]) -> HnsResult<NsmInfo> {
        let mut host_name = None;
        let mut host_context = None;
        let mut program = None;
        let mut port = None;
        let mut suite = None;
        let mut version = None;
        let mut owner = None;
        for record in records {
            for piece in record.split(';') {
                let (key, value) = piece
                    .split_once('=')
                    .ok_or_else(|| HnsError::BadMetaRecord(format!("`{piece}`")))?;
                match key {
                    "host" => host_name = Some(value.to_string()),
                    "hostctx" => host_context = Some(Context::new(value)?),
                    "prog" => {
                        program = Some(ProgramId(value.parse().map_err(|_| {
                            HnsError::BadMetaRecord(format!("bad program `{value}`"))
                        })?))
                    }
                    "port" => {
                        port =
                            Some(value.parse().map_err(|_| {
                                HnsError::BadMetaRecord(format!("bad port `{value}`"))
                            })?)
                    }
                    "suite" => suite = Some(SuiteTag::decode(value)?),
                    "ver" => {
                        version = Some(value.parse().map_err(|_| {
                            HnsError::BadMetaRecord(format!("bad version `{value}`"))
                        })?)
                    }
                    "owner" => owner = Some(value.to_string()),
                    other => return Err(HnsError::BadMetaRecord(format!("unknown key `{other}`"))),
                }
            }
        }
        let missing = |what: &str| HnsError::BadMetaRecord(format!("missing {what}"));
        Ok(NsmInfo {
            nsm_name: nsm_name.to_string(),
            host_name: host_name.ok_or_else(|| missing("host"))?,
            host_context: host_context.ok_or_else(|| missing("hostctx"))?,
            program: program.ok_or_else(|| missing("prog"))?,
            port: port.ok_or_else(|| missing("port"))?,
            suite: suite.ok_or_else(|| missing("suite"))?,
            version: version.ok_or_else(|| missing("ver"))?,
            owner: owner.ok_or_else(|| missing("owner"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoNsm;

    impl Nsm for EchoNsm {
        fn nsm_name(&self) -> &str {
            "nsm-echo"
        }
        fn query_class(&self) -> QueryClass {
            QueryClass::new("Echo")
        }
        fn handle(&self, hns_name: &HnsName, _args: &Value) -> RpcResult<Value> {
            Ok(Value::str(hns_name.individual.clone()))
        }
    }

    fn info() -> NsmInfo {
        NsmInfo {
            nsm_name: "nsm-hrpcbinding-bind".into(),
            host_name: "june.cs.washington.edu".into(),
            host_context: Context::new("bind-uw").expect("ctx"),
            program: ProgramId(300_001),
            port: 1025,
            suite: SuiteTag::Sun,
            version: 1,
            owner: "hcs-project".into(),
        }
    }

    #[test]
    fn info_occupies_six_records() {
        let records = info().to_records();
        assert_eq!(records.len(), NsmInfo::RECORDS);
    }

    #[test]
    fn info_roundtrips_through_records() {
        let i = info();
        let records = i.to_records();
        let back = NsmInfo::from_records(&i.nsm_name, &records).expect("decode");
        assert_eq!(back, i);
    }

    #[test]
    fn info_rejects_missing_fields() {
        let records = vec!["host=x".to_string()];
        assert!(NsmInfo::from_records("n", &records).is_err());
        let records = vec!["bogus".to_string()];
        assert!(NsmInfo::from_records("n", &records).is_err());
        let records = vec!["mystery=1".to_string()];
        assert!(NsmInfo::from_records("n", &records).is_err());
    }

    #[test]
    fn suite_tags_roundtrip() {
        for tag in [
            SuiteTag::Sun,
            SuiteTag::Courier,
            SuiteTag::RawTcp,
            SuiteTag::RawUdp,
        ] {
            assert_eq!(SuiteTag::decode(tag.encode()).expect("decode"), tag);
        }
        assert!(SuiteTag::decode("smoke-signals").is_err());
    }

    #[test]
    fn suite_components_use_static_port() {
        for tag in [
            SuiteTag::Sun,
            SuiteTag::Courier,
            SuiteTag::RawTcp,
            SuiteTag::RawUdp,
        ] {
            let c = tag.components(4242);
            assert_eq!(c.binding, hrpc::BindingProtocol::StaticPort(4242));
        }
    }

    #[test]
    fn nsm_service_roundtrip_over_fabric() {
        use simnet::world::World;
        let world = World::paper();
        let client_host = world.add_host("client");
        let nsm_host = world.add_host("nsm-host");
        let net = RpcNet::new(std::sync::Arc::clone(&world));
        let svc = NsmService::new(Arc::new(EchoNsm));
        let port = net.export(nsm_host, ProgramId(300_009), svc);
        let binding = HrpcBinding {
            host: nsm_host,
            addr: simnet::topology::NetAddr::of(nsm_host),
            program: ProgramId(300_009),
            port,
            components: SuiteTag::Sun.components(port),
        };
        let client = NsmClient::new(net, client_host);
        let hns_name = HnsName::new(Context::new("bind-uw").expect("ctx"), "fiji").expect("name");
        let reply = client.call(&binding, &hns_name, vec![]).expect("call");
        assert_eq!(reply, Value::str("fiji"));
    }

    #[test]
    fn nsm_client_charges_marshalling_only_when_remote() {
        use simnet::world::World;
        let world = World::paper();
        let host = world.add_host("shared");
        let net = RpcNet::new(std::sync::Arc::clone(&world));
        let svc = NsmService::new(Arc::new(EchoNsm));
        let port = net.export(host, ProgramId(300_009), svc);
        let binding = HrpcBinding {
            host,
            addr: simnet::topology::NetAddr::of(host),
            program: ProgramId(300_009),
            port,
            components: SuiteTag::Sun.components(port),
        };
        let client = NsmClient::new(net, host);
        let hns_name = HnsName::new(Context::new("c").expect("ctx"), "x").expect("name");
        let (_, took, delta) = world.measure(|| client.call(&binding, &hns_name, vec![]));
        assert!(took.as_ms_f64() < 1.0, "local NSM call took {took}");
        assert_eq!(delta.remote_calls, 0);
    }

    #[test]
    fn nsm_service_rejects_unknown_proc() {
        use simnet::world::World;
        let world = World::paper();
        let host = world.add_host("h");
        let net = RpcNet::new(std::sync::Arc::clone(&world));
        let svc = NsmService::new(Arc::new(EchoNsm));
        let port = net.export(host, ProgramId(300_009), svc);
        let binding = HrpcBinding {
            host,
            addr: simnet::topology::NetAddr::of(host),
            program: ProgramId(300_009),
            port,
            components: SuiteTag::Sun.components(port),
        };
        let err = net.call(host, &binding, 77, &Value::Void).unwrap_err();
        assert!(matches!(err, RpcError::BadProcedure(77)));
    }
}

//! Query classes.
//!
//! A query class names "the type of data to be returned" by an HNS query.
//! All NSMs for one query class present an identical client interface, so
//! clients "can call the NSM that the HNS designates without regard to the
//! name service that NSM uses". Query classes are open-ended strings —
//! adding one requires no change to the HNS itself, which is the point of
//! the design.

use std::fmt;

/// A query class identifier (case-insensitive).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryClass(String);

impl QueryClass {
    /// Creates a query class (normalized to lowercase).
    pub fn new(name: impl AsRef<str>) -> Self {
        QueryClass(name.as_ref().to_ascii_lowercase())
    }

    /// The normalized name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// HRPC binding: name → complete HRPC binding for a service.
    pub fn hrpc_binding() -> Self {
        QueryClass::new("HRPCBinding")
    }

    /// Host address: host name → network address.
    pub fn host_address() -> Self {
        QueryClass::new("HostAddress")
    }

    /// Mailbox location: user name → mailbox host.
    pub fn mailbox_location() -> Self {
        QueryClass::new("MailboxLocation")
    }

    /// File location: file name → file service and path.
    pub fn file_location() -> Self {
        QueryClass::new("FileLocation")
    }

    /// User information: user name → descriptive record.
    pub fn user_info() -> Self {
        QueryClass::new("UserInfo")
    }
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for QueryClass {
    fn from(s: &str) -> Self {
        QueryClass::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_case_insensitive() {
        assert_eq!(
            QueryClass::new("HRPCBinding"),
            QueryClass::new("hrpcbinding")
        );
        assert_eq!(QueryClass::hrpc_binding().as_str(), "hrpcbinding");
    }

    #[test]
    fn well_known_classes_are_distinct() {
        let all = [
            QueryClass::hrpc_binding(),
            QueryClass::host_address(),
            QueryClass::mailbox_location(),
            QueryClass::file_location(),
            QueryClass::user_info(),
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }

    #[test]
    fn new_classes_need_no_registry() {
        // Open-ended: any string is a valid query class.
        let custom = QueryClass::from("PrinterCapabilities");
        assert_eq!(custom.to_string(), "printercapabilities");
    }
}

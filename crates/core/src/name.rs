//! HNS names: context plus individual name.
//!
//! "HNS names contain two parts, a context and an individual name. Roughly,
//! the context identifies the local name service in which the data can be
//! found while the individual name determines the name of the object in
//! that local service."
//!
//! The mapping from local names to individual names must be a *function*
//! (produce a unique result); that restriction is what "guarantee\[s\] that
//! no naming conflicts can ever be created in the HNS name space when
//! combining previously separate systems". [`NameMapping`] captures the
//! invertible mappings this implementation supports.

use std::fmt;

use crate::error::{HnsError, HnsResult};

/// A context identifier (case-insensitive).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Context(String);

impl Context {
    /// Creates a context (normalized to lowercase).
    ///
    /// Context names may not contain `!`, which separates context from
    /// individual name in the printed form.
    pub fn new(name: impl AsRef<str>) -> HnsResult<Self> {
        let name = name.as_ref();
        if name.is_empty() {
            return Err(HnsError::BadName("empty context".into()));
        }
        if name.contains('!') {
            return Err(HnsError::BadName(format!("`!` in context `{name}`")));
        }
        Ok(Context(name.to_ascii_lowercase()))
    }

    /// The normalized name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A complete HNS name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HnsName {
    /// The context (selects the local name service).
    pub context: Context,
    /// The individual name within that context.
    pub individual: String,
}

impl HnsName {
    /// Builds a name.
    pub fn new(context: Context, individual: impl Into<String>) -> HnsResult<Self> {
        let individual = individual.into();
        if individual.is_empty() {
            return Err(HnsError::BadName("empty individual name".into()));
        }
        Ok(HnsName {
            context,
            individual,
        })
    }

    /// Parses the printed form `context!individual`.
    pub fn parse(s: &str) -> HnsResult<Self> {
        let (ctx, rest) = s
            .split_once('!')
            .ok_or_else(|| HnsError::BadName(format!("`{s}` lacks `!` separator")))?;
        HnsName::new(Context::new(ctx)?, rest)
    }
}

impl fmt::Display for HnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}", self.context, self.individual)
    }
}

/// An invertible mapping between local names and individual names.
///
/// "In the simplest case [the individual name] is identical to the name of
/// the entity in its local name service" — that is [`NameMapping::Identity`].
/// The other variants support local services whose raw names would collide
/// or need qualification, while remaining functions (unique results) in
/// both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameMapping {
    /// individual = local.
    Identity,
    /// individual = `prefix` + local.
    Prefixed {
        /// The prefix prepended to local names.
        prefix: String,
    },
    /// individual = local + `suffix`.
    Suffixed {
        /// The suffix appended to local names.
        suffix: String,
    },
}

impl NameMapping {
    /// Maps a local name to its individual name.
    pub fn to_individual(&self, local: &str) -> String {
        match self {
            NameMapping::Identity => local.to_string(),
            NameMapping::Prefixed { prefix } => format!("{prefix}{local}"),
            NameMapping::Suffixed { suffix } => format!("{local}{suffix}"),
        }
    }

    /// Maps an individual name back to the local name.
    pub fn to_local(&self, individual: &str) -> HnsResult<String> {
        match self {
            NameMapping::Identity => Ok(individual.to_string()),
            NameMapping::Prefixed { prefix } => individual
                .strip_prefix(prefix.as_str())
                .map(str::to_string)
                .ok_or_else(|| {
                    HnsError::BadName(format!("`{individual}` lacks prefix `{prefix}`"))
                }),
            NameMapping::Suffixed { suffix } => individual
                .strip_suffix(suffix.as_str())
                .map(str::to_string)
                .ok_or_else(|| {
                    HnsError::BadName(format!("`{individual}` lacks suffix `{suffix}`"))
                }),
        }
    }

    /// Serializes to a compact string for the meta store.
    pub fn encode(&self) -> String {
        match self {
            NameMapping::Identity => "id".to_string(),
            NameMapping::Prefixed { prefix } => format!("pre:{prefix}"),
            NameMapping::Suffixed { suffix } => format!("suf:{suffix}"),
        }
    }

    /// Parses the meta-store form.
    pub fn decode(s: &str) -> HnsResult<NameMapping> {
        if s == "id" {
            Ok(NameMapping::Identity)
        } else if let Some(prefix) = s.strip_prefix("pre:") {
            Ok(NameMapping::Prefixed {
                prefix: prefix.to_string(),
            })
        } else if let Some(suffix) = s.strip_prefix("suf:") {
            Ok(NameMapping::Suffixed {
                suffix: suffix.to_string(),
            })
        } else {
            Err(HnsError::BadMetaRecord(format!("bad mapping `{s}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_normalizes_and_validates() {
        let c = Context::new("HRPCBinding-BIND").expect("ok");
        assert_eq!(c.as_str(), "hrpcbinding-bind");
        assert!(Context::new("").is_err());
        assert!(Context::new("a!b").is_err());
    }

    #[test]
    fn hns_name_parse_and_display() {
        let n = HnsName::parse("hrpcbinding-bind!fiji.cs.washington.edu").expect("parse");
        assert_eq!(n.context.as_str(), "hrpcbinding-bind");
        assert_eq!(n.individual, "fiji.cs.washington.edu");
        assert_eq!(n.to_string(), "hrpcbinding-bind!fiji.cs.washington.edu");
        assert!(HnsName::parse("no-separator").is_err());
        let ctx = Context::new("c").expect("ok");
        assert!(HnsName::new(ctx, "").is_err());
    }

    #[test]
    fn identity_mapping_roundtrips() {
        let m = NameMapping::Identity;
        assert_eq!(m.to_individual("fiji"), "fiji");
        assert_eq!(m.to_local("fiji").expect("ok"), "fiji");
    }

    #[test]
    fn prefixed_mapping_roundtrips_and_rejects() {
        let m = NameMapping::Prefixed {
            prefix: "xerox-".into(),
        };
        assert_eq!(m.to_individual("printer"), "xerox-printer");
        assert_eq!(m.to_local("xerox-printer").expect("ok"), "printer");
        assert!(m.to_local("printer").is_err());
    }

    #[test]
    fn suffixed_mapping_roundtrips_and_rejects() {
        let m = NameMapping::Suffixed {
            suffix: ".uw".into(),
        };
        assert_eq!(m.to_individual("fiji"), "fiji.uw");
        assert_eq!(m.to_local("fiji.uw").expect("ok"), "fiji");
        assert!(m.to_local("fiji").is_err());
    }

    #[test]
    fn mapping_encode_decode() {
        for m in [
            NameMapping::Identity,
            NameMapping::Prefixed {
                prefix: "p-".into(),
            },
            NameMapping::Suffixed {
                suffix: "-s".into(),
            },
        ] {
            assert_eq!(NameMapping::decode(&m.encode()).expect("decode"), m);
        }
        assert!(NameMapping::decode("garbage").is_err());
    }

    #[test]
    fn mapping_is_a_function_no_conflicts() {
        // Distinct local names map to distinct individual names, the
        // paper's conflict-freedom requirement.
        let m = NameMapping::Prefixed {
            prefix: "x-".into(),
        };
        let locals = ["a", "b", "ab", "x-a"];
        let mut individuals: Vec<String> = locals.iter().map(|l| m.to_individual(l)).collect();
        individuals.sort();
        individuals.dedup();
        assert_eq!(individuals.len(), locals.len());
    }
}

//! The meta-naming store.
//!
//! "Although all data associated with individually nameable entities is
//! kept in the underlying name services, the HNS maintains additional
//! meta-naming information needed for managing the global name space. This
//! information consists of the names and binding information for each name
//! service and each NSM, the names of all contexts, and the mappings from
//! contexts to name services. ... we use a version of BIND, modified to
//! support both dynamic updates and also data of unspecified type."
//!
//! Three mapping families live here, mirroring `FindNSM`'s decomposition:
//!
//! 1. context → name-service name (one `UNSPEC` record),
//! 2. (name-service name, query class) → NSM name (one record),
//! 3. NSM name → NSM binding information (six records — this is the
//!    6-resource-record row of Table 3.2).

use bindns::error::Rcode;
use bindns::message::Question;
use bindns::name::DomainName;
use bindns::resolver::HrpcResolver;
use bindns::rr::{RData, RType, ResourceRecord};
use bindns::update::UpdateOp;
use hrpc::error::RpcError;

use crate::error::{HnsError, HnsResult};
use crate::name::{Context, NameMapping};
use crate::nsm::NsmInfo;
use crate::query::QueryClass;

/// Default TTL for meta records, seconds.
pub const META_TTL: u32 = 600;

/// A value fetched from the meta store, with the sizing/lifetime data the
/// HNS cache needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fetched<T> {
    /// The decoded value.
    pub value: T,
    /// Resource records the reply carried (drives marshalling cost).
    pub rrs: usize,
    /// Minimum TTL among those records, seconds.
    pub ttl_secs: u32,
}

/// What a context maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextInfo {
    /// The name service responsible for the context.
    pub name_service: String,
    /// The individual-name ↔ local-name mapping.
    pub mapping: NameMapping,
}

/// The meta store: a client of the modified BIND holding the `hns` zone.
pub struct MetaStore {
    resolver: HrpcResolver,
    origin: DomainName,
    record_ttl: parking_lot::Mutex<u32>,
}

/// A batched meta fetch: the primary record set plus any speculative
/// additional sets the meta server piggybacked on the same reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaBatch {
    /// The answer to the primary question; `None` when the meta server
    /// reported the name absent (NameError / NoData).
    pub primary: Option<Fetched<Vec<String>>>,
    /// Speculative additional sets, keyed by the meta name they live under.
    pub additional: Vec<(DomainName, Fetched<Vec<String>>)>,
}

/// Builds a meta key under `origin` from sanitized label parts. This is the
/// same derivation [`MetaStore`] uses client-side, exposed as a free
/// function so the server-side chaser can recompute keys without a store.
pub fn meta_key_at(origin: &DomainName, parts: &[&str]) -> HnsResult<DomainName> {
    let mut name = parts.iter().map(|p| label(p)).collect::<Vec<_>>().join(".");
    name.push('.');
    name.push_str(&origin.to_string());
    DomainName::parse(&name).map_err(|e| HnsError::BadMetaRecord(e.to_string()))
}

/// The meta key for a context record under `origin`.
pub fn context_key_at(origin: &DomainName, context: &str) -> HnsResult<DomainName> {
    meta_key_at(origin, &["ctx", context])
}

/// The meta key for an NSM-name record under `origin`.
pub fn nsm_name_key_at(
    origin: &DomainName,
    name_service: &str,
    query_class: &str,
) -> HnsResult<DomainName> {
    meta_key_at(origin, &["map", &format!("{name_service}--{query_class}")])
}

/// The meta key for an NSM-info record set under `origin`.
pub fn nsm_info_key_at(origin: &DomainName, nsm_name: &str) -> HnsResult<DomainName> {
    meta_key_at(origin, &["info", nsm_name])
}

/// Decodes a meta record set's UNSPEC payloads into a [`Fetched`] value.
pub fn records_to_fetched(records: &[ResourceRecord]) -> HnsResult<Fetched<Vec<String>>> {
    let ttl_secs = records.iter().map(|r| r.ttl).min().unwrap_or(META_TTL);
    let rrs = records.len();
    let mut payloads = Vec::with_capacity(rrs);
    for r in records {
        match &r.rdata {
            RData::Opaque(bytes) => payloads.push(
                String::from_utf8(bytes.clone())
                    .map_err(|_| HnsError::BadMetaRecord("non-UTF-8 payload".into()))?,
            ),
            other => {
                return Err(HnsError::BadMetaRecord(format!(
                    "expected UNSPEC, found {other:?}"
                )))
            }
        }
    }
    Ok(Fetched {
        value: payloads,
        rrs,
        ttl_secs,
    })
}

/// Sanitizes an arbitrary identifier into a safe domain label.
fn label(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    out.truncate(60);
    if out.is_empty() {
        out.push('x');
    }
    out
}

impl MetaStore {
    /// Creates a store speaking to the modified BIND behind `resolver`,
    /// whose meta zone is rooted at `origin` (conventionally `hns`).
    pub fn new(resolver: HrpcResolver, origin: DomainName) -> Self {
        MetaStore {
            resolver,
            origin,
            record_ttl: parking_lot::Mutex::new(META_TTL),
        }
    }

    /// The meta zone origin.
    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    /// Sets the TTL stamped on subsequently written records (the TTL
    /// sensitivity ablation varies this).
    pub fn set_record_ttl(&self, ttl_secs: u32) {
        *self.record_ttl.lock() = ttl_secs;
    }

    /// The TTL currently stamped on written records.
    pub fn record_ttl(&self) -> u32 {
        *self.record_ttl.lock()
    }

    /// The meta key for a context record.
    pub fn context_key(&self, context: &Context) -> HnsResult<DomainName> {
        context_key_at(&self.origin, context.as_str())
    }

    /// The meta key for an NSM-name record.
    pub fn nsm_name_key(&self, name_service: &str, qc: &QueryClass) -> HnsResult<DomainName> {
        nsm_name_key_at(&self.origin, name_service, qc.as_str())
    }

    /// The meta key for an NSM-info record set.
    pub fn nsm_info_key(&self, nsm_name: &str) -> HnsResult<DomainName> {
        nsm_info_key_at(&self.origin, nsm_name)
    }

    fn write(&self, name: DomainName, payloads: Vec<String>) -> HnsResult<()> {
        let ttl = self.record_ttl();
        let records: Vec<ResourceRecord> = payloads
            .into_iter()
            .map(|p| ResourceRecord::unspec(name.clone(), ttl, p.into_bytes()))
            .collect();
        self.resolver
            .update(&UpdateOp::Replace {
                name,
                rtype: RType::Unspec,
                records,
            })
            .map_err(HnsError::Rpc)
    }

    /// Reads the raw payload strings at a meta key.
    pub fn fetch(&self, name: &DomainName) -> HnsResult<Fetched<Vec<String>>> {
        self.read(name)
    }

    fn read(&self, name: &DomainName) -> HnsResult<Fetched<Vec<String>>> {
        let records = self
            .resolver
            .query(name, RType::Unspec)
            .map_err(HnsError::Rpc)?;
        records_to_fetched(&records)
    }

    /// Fetches `primary` plus whatever additional sets the meta server's
    /// chaser speculatively attaches for the given query-class `hints`,
    /// all in one round trip.
    ///
    /// A NameError/NoData on the primary question comes back as
    /// `primary: None` (the caller turns it into a negative cache entry);
    /// unattachable hints simply yield fewer additional sets — the caller
    /// falls back to sequential fetches for anything missing.
    pub fn fetch_batch(&self, primary: &DomainName, hints: &[String]) -> HnsResult<MetaBatch> {
        let questions = [Question::new(primary.clone(), RType::Unspec)];
        let multi = self
            .resolver
            .mquery(&questions, hints)
            .map_err(HnsError::Rpc)?;
        let answer = multi
            .answers
            .first()
            .ok_or_else(|| HnsError::BadMetaRecord("mquery reply missing answer".into()))?;
        let primary_set = match answer.rcode {
            Rcode::Ok => Some(records_to_fetched(&answer.records)?),
            Rcode::NameError | Rcode::NoData => None,
            other => {
                return Err(HnsError::Rpc(RpcError::Service(format!(
                    "mquery rcode {other:?}"
                ))))
            }
        };
        let mut additional = Vec::with_capacity(multi.additional.len());
        for set in &multi.additional {
            if set.rcode != Rcode::Ok || set.records.is_empty() {
                continue;
            }
            let owner = set.records[0].name.clone();
            additional.push((owner, records_to_fetched(&set.records)?));
        }
        Ok(MetaBatch {
            primary: primary_set,
            additional,
        })
    }

    /// Registers (or replaces) a context.
    pub fn register_context(
        &self,
        context: &Context,
        name_service: &str,
        mapping: &NameMapping,
    ) -> HnsResult<()> {
        let payload = format!("ns={name_service};map={}", mapping.encode());
        self.write(self.context_key(context)?, vec![payload])
    }

    /// Registers (or replaces) which NSM serves a (name service, query
    /// class) pair.
    pub fn register_nsm(
        &self,
        name_service: &str,
        qc: &QueryClass,
        nsm_name: &str,
    ) -> HnsResult<()> {
        self.write(
            self.nsm_name_key(name_service, qc)?,
            vec![nsm_name.to_string()],
        )
    }

    /// Registers an NSM's binding information (six records).
    pub fn register_nsm_info(&self, info: &NsmInfo) -> HnsResult<()> {
        self.write(self.nsm_info_key(&info.nsm_name)?, info.to_records())
    }

    /// Parses a context record's payloads.
    pub fn parse_context(payloads: &[String]) -> HnsResult<ContextInfo> {
        let payload = payloads
            .first()
            .ok_or_else(|| HnsError::BadMetaRecord("empty context record".into()))?;
        let mut name_service = None;
        let mut mapping = None;
        for piece in payload.split(';') {
            match piece.split_once('=') {
                Some(("ns", v)) => name_service = Some(v.to_string()),
                Some(("map", v)) => mapping = Some(NameMapping::decode(v)?),
                _ => return Err(HnsError::BadMetaRecord(format!("`{piece}`"))),
            }
        }
        Ok(ContextInfo {
            name_service: name_service
                .ok_or_else(|| HnsError::BadMetaRecord("missing ns".into()))?,
            mapping: mapping.ok_or_else(|| HnsError::BadMetaRecord("missing map".into()))?,
        })
    }

    /// Parses an NSM-name record's payloads.
    pub fn parse_nsm_name(payloads: &[String]) -> HnsResult<String> {
        payloads
            .first()
            .cloned()
            .ok_or_else(|| HnsError::BadMetaRecord("empty NSM record".into()))
    }

    /// Mapping 1: context → name service (+ name mapping).
    pub fn lookup_context(&self, context: &Context) -> HnsResult<Fetched<ContextInfo>> {
        let fetched = self
            .read(&self.context_key(context)?)
            .map_err(|e| match e {
                HnsError::Rpc(RpcError::NotFound(_)) => {
                    HnsError::NoSuchContext(context.as_str().to_string())
                }
                other => other,
            })?;
        Ok(Fetched {
            value: Self::parse_context(&fetched.value)?,
            rrs: fetched.rrs,
            ttl_secs: fetched.ttl_secs,
        })
    }

    /// Mapping 2: (name service, query class) → NSM name.
    pub fn lookup_nsm_name(
        &self,
        name_service: &str,
        qc: &QueryClass,
    ) -> HnsResult<Fetched<String>> {
        let fetched = self
            .read(&self.nsm_name_key(name_service, qc)?)
            .map_err(|e| match e {
                HnsError::Rpc(RpcError::NotFound(_)) => HnsError::NoSuchNsm {
                    name_service: name_service.to_string(),
                    query_class: qc.as_str().to_string(),
                },
                other => other,
            })?;
        let nsm_name = Self::parse_nsm_name(&fetched.value)?;
        Ok(Fetched {
            value: nsm_name,
            rrs: fetched.rrs,
            ttl_secs: fetched.ttl_secs,
        })
    }

    /// Mapping 3 (first half): NSM name → binding information.
    pub fn lookup_nsm_info(&self, nsm_name: &str) -> HnsResult<Fetched<NsmInfo>> {
        let fetched = self.read(&self.nsm_info_key(nsm_name)?)?;
        let info = NsmInfo::from_records(nsm_name, &fetched.value)?;
        Ok(Fetched {
            value: info,
            rrs: fetched.rrs,
            ttl_secs: fetched.ttl_secs,
        })
    }
}

impl std::fmt::Debug for MetaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaStore")
            .field("origin", &self.origin.to_string())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsm::SuiteTag;
    use bindns::server::{deploy, single_zone_server};
    use bindns::zone::Zone;
    use hrpc::net::RpcNet;
    use hrpc::ProgramId;
    use simnet::world::World;
    use std::sync::Arc;

    fn setup() -> (Arc<simnet::World>, MetaStore) {
        let world = World::paper();
        let hns_host = world.add_host("hns-host");
        let meta_host = world.add_host("meta-bind-host");
        let net = RpcNet::new(Arc::clone(&world));
        let zone = Zone::new(DomainName::parse("hns").expect("origin"), META_TTL);
        let dep = deploy(&net, meta_host, single_zone_server("meta-bind", zone, true));
        let resolver = HrpcResolver::new(net, hns_host, dep.hrpc_binding);
        (
            world,
            MetaStore::new(resolver, DomainName::parse("hns").expect("origin")),
        )
    }

    fn ctx(s: &str) -> Context {
        Context::new(s).expect("ctx")
    }

    fn sample_info() -> NsmInfo {
        NsmInfo {
            nsm_name: "nsm-hrpcbinding-bind".into(),
            host_name: "june.cs.washington.edu".into(),
            host_context: ctx("bind-uw"),
            program: ProgramId(300_001),
            port: 1025,
            suite: SuiteTag::Sun,
            version: 1,
            owner: "hcs".into(),
        }
    }

    #[test]
    fn context_registration_roundtrips() {
        let (_world, meta) = setup();
        let mapping = NameMapping::Identity;
        meta.register_context(&ctx("hrpcbinding-bind"), "BIND", &mapping)
            .expect("register");
        let fetched = meta
            .lookup_context(&ctx("hrpcbinding-bind"))
            .expect("lookup");
        assert_eq!(fetched.value.name_service, "BIND");
        assert_eq!(fetched.value.mapping, mapping);
        assert_eq!(fetched.rrs, 1);
        assert_eq!(fetched.ttl_secs, META_TTL);
    }

    #[test]
    fn unknown_context_is_specific_error() {
        let (_world, meta) = setup();
        assert!(matches!(
            meta.lookup_context(&ctx("ghost")),
            Err(HnsError::NoSuchContext(_))
        ));
    }

    #[test]
    fn nsm_name_registration_roundtrips() {
        let (_world, meta) = setup();
        let qc = QueryClass::hrpc_binding();
        meta.register_nsm("BIND", &qc, "nsm-hrpcbinding-bind")
            .expect("register");
        let fetched = meta.lookup_nsm_name("BIND", &qc).expect("lookup");
        assert_eq!(fetched.value, "nsm-hrpcbinding-bind");
        assert_eq!(fetched.rrs, 1);
    }

    #[test]
    fn missing_nsm_is_specific_error() {
        let (_world, meta) = setup();
        assert!(matches!(
            meta.lookup_nsm_name("BIND", &QueryClass::mailbox_location()),
            Err(HnsError::NoSuchNsm { .. })
        ));
    }

    #[test]
    fn nsm_info_occupies_six_records() {
        let (_world, meta) = setup();
        let info = sample_info();
        meta.register_nsm_info(&info).expect("register");
        let fetched = meta.lookup_nsm_info(&info.nsm_name).expect("lookup");
        assert_eq!(fetched.value, info);
        assert_eq!(fetched.rrs, NsmInfo::RECORDS);
    }

    #[test]
    fn reregistration_replaces() {
        let (_world, meta) = setup();
        meta.register_context(&ctx("c"), "BIND", &NameMapping::Identity)
            .expect("first");
        meta.register_context(
            &ctx("c"),
            "Clearinghouse",
            &NameMapping::Suffixed {
                suffix: ":cs:uw".into(),
            },
        )
        .expect("second");
        let fetched = meta.lookup_context(&ctx("c")).expect("lookup");
        assert_eq!(fetched.value.name_service, "Clearinghouse");
        assert_eq!(fetched.rrs, 1, "replace must not accumulate records");
    }

    #[test]
    fn labels_are_sanitized() {
        let (_world, meta) = setup();
        // Contexts with characters illegal in domain labels still work.
        let context = ctx("hrpcbinding bind/uw");
        meta.register_context(&context, "BIND", &NameMapping::Identity)
            .expect("register");
        assert!(meta.lookup_context(&context).is_ok());
        assert_eq!(label(""), "x");
        assert_eq!(label("A b.C"), "a-b-c");
    }

    #[test]
    fn meta_lookup_cost_matches_calibration() {
        // One 1-RR meta lookup: raw_tcp (22) + bind service (8) +
        // generated miss (20.23) + interface overhead (15.5) ≈ 65.7 ms.
        let (world, meta) = setup();
        meta.register_context(&ctx("c"), "BIND", &NameMapping::Identity)
            .expect("register");
        let (_, took, delta) = world.measure(|| meta.lookup_context(&ctx("c")));
        let ms = took.as_ms_f64();
        assert!((ms - 65.7).abs() < 2.0, "meta lookup took {ms} ms");
        assert_eq!(delta.remote_calls, 1);
    }

    #[test]
    fn fetch_batch_returns_primary_in_one_round_trip() {
        let (world, meta) = setup();
        meta.register_context(&ctx("c"), "BIND", &NameMapping::Identity)
            .expect("register");
        let key = meta.context_key(&ctx("c")).expect("key");
        let (result, _, delta) =
            world.measure(|| meta.fetch_batch(&key, &["hrpcbinding".to_string()]));
        let batch = result.expect("batch");
        assert_eq!(delta.remote_calls, 1);
        let primary = batch.primary.expect("primary present");
        assert_eq!(primary.rrs, 1);
        assert!(primary.value[0].starts_with("ns=BIND"));
        // No chaser installed on the bare test server: nothing piggybacked.
        assert!(batch.additional.is_empty());
    }

    #[test]
    fn fetch_batch_missing_primary_is_none_not_error() {
        let (_world, meta) = setup();
        let key = meta.context_key(&ctx("ghost")).expect("key");
        let batch = meta.fetch_batch(&key, &[]).expect("batch");
        assert!(batch.primary.is_none());
        assert!(batch.additional.is_empty());
    }

    #[test]
    fn key_helpers_match_store_keys() {
        let (_world, meta) = setup();
        let origin = meta.origin().clone();
        assert_eq!(
            meta.context_key(&ctx("bind-uw")).expect("k"),
            context_key_at(&origin, "bind-uw").expect("k")
        );
        assert_eq!(
            meta.nsm_name_key("BIND", &QueryClass::hrpc_binding())
                .expect("k"),
            nsm_name_key_at(&origin, "BIND", "hrpcbinding").expect("k")
        );
        assert_eq!(
            meta.nsm_info_key("nsm-hrpcbinding-bind").expect("k"),
            nsm_info_key_at(&origin, "nsm-hrpcbinding-bind").expect("k")
        );
    }

    #[test]
    fn six_record_lookup_costs_more() {
        let (world, meta) = setup();
        let info = sample_info();
        meta.register_nsm_info(&info).expect("register");
        meta.register_context(&ctx("c"), "BIND", &NameMapping::Identity)
            .expect("register");
        let (_, one_rr, _) = world.measure(|| meta.lookup_context(&ctx("c")));
        let (_, six_rr, _) = world.measure(|| meta.lookup_nsm_info(&info.nsm_name));
        let delta = six_rr.as_ms_f64() - one_rr.as_ms_f64();
        // gen_miss(6) - gen_miss(1) = 5 * 2.42 = 12.1
        assert!((delta - 12.1).abs() < 1.0, "delta {delta}");
    }
}

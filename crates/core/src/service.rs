//! The HNS itself: "a collection of library routines" plus the `FindNSM`
//! operation.
//!
//! `FindNSM` "maps a context and query class to the information, called an
//! HRPC Binding, needed for making an HRPC call to the NSM", implemented as
//! three separate mappings:
//!
//! 1. Context → Name Service Name
//! 2. Name Service Name, Query Class → NSM Name
//! 3. NSM Name → HRPC Binding for the NSM
//!
//! Mapping 3 stores the NSM's *host name*, so resolving it "is in itself an
//! HNS naming operation" — mappings 1 and 2 run again for the host-address
//! query class. "Further recursion is avoided by linking instances of the
//! NSMs that perform this mapping directly with the HNS, so that their
//! network addresses need not be found." On a cold cache this costs six
//! remote data mappings; each is individually cached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use simnet::obs::{LazyCounter, LazyHistogram};
use simnet::topology::{HostId, NetAddr};
use simnet::trace::TraceKind;
use simnet::world::World;

use bindns::name::DomainName;
use bindns::resolver::HrpcResolver;
use hrpc::net::RpcNet;
use hrpc::{HrpcBinding, RpcError};
use wire::Value;

use simnet::time::SimDuration;
use simnet::trace::CacheOutcome;

use crate::binding_cache::{BindingCache, BindingCacheStats};
use crate::cache::{CacheMode, HnsCache, HnsCacheStats, LookupOrFetch, MetaKey};
use crate::error::{HnsError, HnsResult};
use crate::meta::{ContextInfo, Fetched, MetaStore};
use crate::name::{Context, HnsName, NameMapping};
use crate::nsm::{Nsm, NsmInfo};
use crate::query::QueryClass;

/// One HNS instance: meta-store client, cache, and linked NSMs.
///
/// Instances can be linked into a client process, run as a remote server
/// (see [`crate::colocation::HnsService`]), or linked into an agent — the
/// colocation arrangements of Table 3.1.
pub struct Hns {
    net: Arc<RpcNet>,
    host: HostId,
    meta: MetaStore,
    meta_binding: HrpcBinding,
    cache: Arc<HnsCache>,
    /// Composed `FindNSM` results (off by default; see
    /// [`crate::binding_cache`]).
    binding_cache: Arc<BindingCache>,
    /// Linked NSM registry. Read-mostly: linking happens at deployment,
    /// mapping 6 reads on every cold walk. Readers take an `Arc`
    /// snapshot; writers rebuild and swap.
    linked_nsms: RwLock<Arc<HashMap<String, Arc<dyn Nsm>>>>,
    batching: AtomicBool,
    handles: HnsMetricHandles,
    /// Serve-stale fallbacks performed, for the per-query
    /// [`FindNsmReport::stale_served`] marker (the cache keeps its own
    /// aggregate in `HnsCacheStats::stale_serves`).
    stale_serves: AtomicU64,
    /// Meta-zone serial of the last successful preload; later preloads
    /// ask for only the delta since it (IXFR).
    preload_serial: parking_lot::Mutex<Option<u32>>,
}

/// Cached registry handles for the per-query metrics, resolved on first
/// use so a query costs striped atomic ops — not registry lookups with
/// their key allocations and read locks — per metric update.
#[derive(Default)]
struct HnsMetricHandles {
    find_nsm_calls: LazyCounter,
    find_nsm_errors: LazyCounter,
    find_nsm_remote_round_trips: LazyCounter,
    round_trips_sequential: LazyHistogram,
    round_trips_batched: LazyHistogram,
    find_nsm_us: LazyHistogram,
    mapping_us: [LazyHistogram; 6],
    batch_prefetch_us: LazyHistogram,
    linked_calls: LazyCounter,
    stale_served: LazyCounter,
}

/// Record sets piggybacked by the meta server on a batched fetch, keyed by
/// meta name. Consulted before the cache so the batch also serves
/// [`CacheMode::Disabled`] runs; its demarshalling cost was already charged
/// when the `MQUERY` reply was decoded.
type BatchOverlay = HashMap<DomainName, Fetched<Vec<String>>>;

/// Per-query accounting attached to a `FindNSM` by
/// [`Hns::find_nsm_report`].
///
/// Round trips are derived from the world's remote-call counter delta
/// across the query, so they are exact for the single-threaded
/// experiment drivers (concurrent queries on one world attribute each
/// other's calls; the per-span `round_trips` from tracing are not
/// affected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FindNsmReport {
    /// Remote round trips the query performed (6 on the sequential cold
    /// path; ≤ 2 with batching; 0 warm).
    pub remote_round_trips: u64,
    /// Whether the batched MQUERY pipeline was enabled for this query.
    pub batched: bool,
    /// Whether any mapping fell back to an expired cache entry because
    /// the authoritative server was unreachable (serve-stale, paper §4).
    pub stale_served: bool,
    /// Virtual time the query took.
    pub took: SimDuration,
}

/// How a preload obtained its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreloadMode {
    /// Full zone transfer (first preload, or the delta log was
    /// truncated past our serial).
    Full,
    /// Incremental transfer: only names changed since our last preload.
    Incremental,
    /// Our copy was already current; nothing shipped.
    Unchanged,
}

/// Result of a cache preload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreloadReport {
    /// Meta records transferred.
    pub records: usize,
    /// Zone bytes transferred.
    pub bytes: usize,
    /// Cache entries created.
    pub entries: usize,
    /// How the data was obtained.
    pub mode: PreloadMode,
    /// Meta-zone serial this instance is now current to.
    pub serial: u32,
}

impl Hns {
    /// Creates an HNS instance running on `host`, speaking to the modified
    /// BIND behind `meta_binding` whose meta zone is rooted at `origin`.
    pub fn new(
        net: Arc<RpcNet>,
        host: HostId,
        meta_binding: HrpcBinding,
        origin: DomainName,
        cache_mode: CacheMode,
    ) -> Self {
        let resolver = HrpcResolver::new(Arc::clone(&net), host, meta_binding);
        let cache = Arc::new(HnsCache::new(cache_mode));
        let binding_cache = Arc::new(BindingCache::new());
        // Snapshot-time stats flush through `World::export_all_caches`:
        // `Weak` captures keep dropped instances (e.g. the short-lived
        // registrar HNSes the harness builds) from re-publishing stale
        // totals, and disabled caches stay silent so a Disabled
        // instance sharing the world never clobbers a live one's rows
        // with zeros.
        let weak_cache = Arc::downgrade(&cache);
        let weak_binding = Arc::downgrade(&binding_cache);
        net.world()
            .register_cache_exporter(Box::new(move |metrics| {
                if let Some(cache) = weak_cache.upgrade() {
                    if cache.mode() != CacheMode::Disabled {
                        cache.export_metrics(metrics, "hns_cache");
                    }
                }
                if let Some(binding_cache) = weak_binding.upgrade() {
                    if binding_cache.enabled() {
                        binding_cache.export_metrics(metrics, "hns_binding_cache");
                    }
                }
            }));
        Hns {
            net,
            host,
            meta: MetaStore::new(resolver, origin),
            meta_binding,
            cache,
            binding_cache,
            linked_nsms: RwLock::new(Arc::new(HashMap::new())),
            batching: AtomicBool::new(false),
            handles: HnsMetricHandles::default(),
            stale_serves: AtomicU64::new(0),
            preload_serial: parking_lot::Mutex::new(None),
        }
    }

    /// Enables or disables the batched meta pipeline. Off by default: the
    /// sequential six-round-trip pipeline is the paper's measured shape;
    /// batching is the ablation on top of it.
    pub fn set_batching(&self, enabled: bool) {
        self.batching.store(enabled, Ordering::Relaxed);
    }

    /// Whether the batched meta pipeline is enabled.
    pub fn batching(&self) -> bool {
        self.batching.load(Ordering::Relaxed)
    }

    /// The host this instance runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The fabric.
    pub fn net(&self) -> &Arc<RpcNet> {
        &self.net
    }

    /// The simulation environment.
    pub fn world(&self) -> &Arc<World> {
        self.net.world()
    }

    /// The meta store (for registration tooling).
    pub fn meta(&self) -> &MetaStore {
        &self.meta
    }

    /// Links an NSM instance directly with this HNS (the recursion-breaking
    /// arrangement for host-address NSMs).
    pub fn link_nsm(&self, nsm: Arc<dyn Nsm>) {
        let mut nsms = self.linked_nsms.write();
        let mut next = HashMap::clone(&nsms);
        next.insert(nsm.nsm_name().to_string(), nsm);
        *nsms = Arc::new(next);
    }

    /// Registers a context with its name service and name mapping.
    pub fn register_context(
        &self,
        context: &Context,
        name_service: &str,
        mapping: &NameMapping,
    ) -> HnsResult<()> {
        self.meta.register_context(context, name_service, mapping)
    }

    /// Registers which NSM serves a (name service, query class) pair.
    ///
    /// "Registering an NSM with the HNS extends the functionality of all
    /// machines at once."
    pub fn register_nsm(
        &self,
        name_service: &str,
        qc: &QueryClass,
        nsm_name: &str,
    ) -> HnsResult<()> {
        self.meta.register_nsm(name_service, qc, nsm_name)
    }

    /// Registers an NSM's binding information.
    pub fn register_nsm_info(&self, info: &NsmInfo) -> HnsResult<()> {
        self.meta.register_nsm_info(info)
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> HnsCacheStats {
        self.cache.stats()
    }

    /// Enables or disables the composed binding cache (disabling clears
    /// it). Off by default: the per-mapping walk is the paper's measured
    /// shape; composing it is a throughput optimization on top.
    pub fn set_binding_cache(&self, enabled: bool) {
        self.binding_cache.set_enabled(enabled);
    }

    /// Whether the composed binding cache is enabled.
    pub fn binding_cache_enabled(&self) -> bool {
        self.binding_cache.enabled()
    }

    /// Composed binding-cache statistics.
    pub fn binding_cache_stats(&self) -> BindingCacheStats {
        self.binding_cache.stats()
    }

    /// Clears the cache.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Switches cache mode (clears contents).
    pub fn set_cache_mode(&self, mode: CacheMode) {
        self.cache.set_mode(mode);
    }

    /// Current cache mode.
    pub fn cache_mode(&self) -> CacheMode {
        self.cache.mode()
    }

    /// Decodes a cached list-of-strings value back into payload strings.
    fn value_to_payloads(v: &Value) -> HnsResult<Vec<String>> {
        v.as_list()
            .map_err(HnsError::from)?
            .iter()
            .map(|s| s.as_str().map(str::to_string).map_err(HnsError::from))
            .collect()
    }

    /// One cached meta fetch: payload strings at `key`.
    ///
    /// The overlay (record sets piggybacked by the current batched fetch)
    /// is consulted first, then the cache; a miss enters the singleflight
    /// gate, so of several threads missing on the same key only one
    /// performs the remote fetch. A `NotFound` from the meta store is
    /// remembered as a negative entry.
    fn cached_fetch_with(
        &self,
        key: &DomainName,
        overlay: Option<&BatchOverlay>,
    ) -> HnsResult<Fetched<Vec<String>>> {
        self.world().charge_ms(self.world().costs.hns_bookkeeping);
        if let Some(fetched) = overlay.and_then(|o| o.get(key)) {
            self.world().cache_outcome(CacheOutcome::Overlay);
            return Ok(fetched.clone());
        }
        let cache_key = MetaKey::meta(key);
        // `lookup_or_fetch` loops through coalesced waits internally and
        // annotates the current span with the cache outcome.
        match self.cache.lookup_or_fetch(self.world(), &cache_key) {
            LookupOrFetch::Hit {
                value,
                remaining_ttl_secs,
            } => {
                let payloads = Self::value_to_payloads(&value)?;
                let rrs = payloads.len();
                Ok(Fetched {
                    value: payloads,
                    rrs,
                    ttl_secs: remaining_ttl_secs,
                })
            }
            LookupOrFetch::NegativeHit => Err(HnsError::Rpc(RpcError::NotFound(key.to_string()))),
            LookupOrFetch::Lead(_guard) => {
                let fetched = match self.meta.fetch(key) {
                    Ok(fetched) => fetched,
                    Err(HnsError::Rpc(RpcError::NotFound(n))) => {
                        self.cache.insert_negative(self.world(), cache_key);
                        return Err(HnsError::Rpc(RpcError::NotFound(n)));
                    }
                    Err(HnsError::Rpc(err)) if err.is_unreachable() => {
                        // Serve-stale (paper §4): the meta server is down
                        // or cut off, but an expired entry may still be
                        // in the cache — meta-naming data changes slowly,
                        // so stale data beats no data. The entry stays
                        // expired; the next walk retries the fetch and a
                        // success overwrites it.
                        if let Some(stale) = self.cache.lookup_stale(self.world(), &cache_key) {
                            self.note_stale_serve(|| format!("meta {key} ({err})"));
                            let payloads = Self::value_to_payloads(&stale.value)?;
                            let rrs = payloads.len();
                            return Ok(Fetched {
                                value: payloads,
                                rrs,
                                ttl_secs: 0,
                            });
                        }
                        return Err(HnsError::Rpc(err));
                    }
                    Err(other) => return Err(other),
                };
                let value = Value::List(fetched.value.iter().map(Value::str).collect());
                self.cache.insert(
                    self.world(),
                    cache_key,
                    &value,
                    fetched.rrs,
                    fetched.ttl_secs,
                );
                Ok(fetched)
            }
        }
    }

    /// Accounts one serve-stale fallback: bumps the per-instance marker
    /// counter and the `faults/stale_served` metric, annotates the
    /// current span with [`CacheOutcome::Stale`], and traces the event
    /// (label built lazily — this path only runs under faults, but the
    /// convention keeps tracing free when disabled).
    fn note_stale_serve(&self, label: impl FnOnce() -> String) {
        self.stale_serves.fetch_add(1, Ordering::Relaxed);
        let world = self.world();
        world.cache_outcome(CacheOutcome::Stale);
        self.handles
            .stale_served
            .get(world.metrics(), "faults", "stale_served")
            .inc();
        if world.tracer.is_enabled() {
            world.trace(
                Some(self.host),
                TraceKind::Hns,
                format!("stale_served: {}", label()),
            );
        }
    }

    /// Internal mapping helpers return `(parsed, remaining TTL secs)`;
    /// the walk folds the TTLs into the composed binding cache's
    /// freshness bound. A serve-stale result reports TTL 0, which keeps
    /// the composed entry uncacheable.
    fn context_info_with(
        &self,
        context: &Context,
        overlay: Option<&BatchOverlay>,
    ) -> HnsResult<(ContextInfo, u32)> {
        let key = self.meta.context_key(context)?;
        let fetched = self.cached_fetch_with(&key, overlay).map_err(|e| match e {
            HnsError::Rpc(RpcError::NotFound(_)) => {
                HnsError::NoSuchContext(context.as_str().to_string())
            }
            other => other,
        })?;
        Ok((MetaStore::parse_context(&fetched.value)?, fetched.ttl_secs))
    }

    /// Mapping 1 (or 4): context → name service, through the cache.
    pub fn context_info(&self, context: &Context) -> HnsResult<ContextInfo> {
        self.context_info_with(context, None).map(|(info, _)| info)
    }

    fn nsm_name_with(
        &self,
        name_service: &str,
        qc: &QueryClass,
        overlay: Option<&BatchOverlay>,
    ) -> HnsResult<(String, u32)> {
        let key = self.meta.nsm_name_key(name_service, qc)?;
        let fetched = self.cached_fetch_with(&key, overlay).map_err(|e| match e {
            HnsError::Rpc(RpcError::NotFound(_)) => HnsError::NoSuchNsm {
                name_service: name_service.to_string(),
                query_class: qc.as_str().to_string(),
            },
            other => other,
        })?;
        Ok((MetaStore::parse_nsm_name(&fetched.value)?, fetched.ttl_secs))
    }

    /// Mapping 2 (or 5): (name service, query class) → NSM name.
    pub fn nsm_name(&self, name_service: &str, qc: &QueryClass) -> HnsResult<String> {
        self.nsm_name_with(name_service, qc, None)
            .map(|(name, _)| name)
    }

    fn nsm_info_with(
        &self,
        nsm_name: &str,
        overlay: Option<&BatchOverlay>,
    ) -> HnsResult<(NsmInfo, u32)> {
        let key = self.meta.nsm_info_key(nsm_name)?;
        let fetched = self.cached_fetch_with(&key, overlay)?;
        Ok((
            NsmInfo::from_records(nsm_name, &fetched.value)?,
            fetched.ttl_secs,
        ))
    }

    /// Mapping 3 (first half): NSM name → binding information.
    pub fn nsm_info(&self, nsm_name: &str) -> HnsResult<NsmInfo> {
        self.nsm_info_with(nsm_name, None).map(|(info, _)| info)
    }

    /// Mapping 6: NSM host name → address, via the linked host-address NSM
    /// for the host's name service, through the cache.
    fn host_address(
        &self,
        host_ns: &str,
        ha_nsm_name: &str,
        host_name: &str,
        host_context: &Context,
    ) -> HnsResult<(HostId, u32)> {
        self.world().charge_ms(self.world().costs.hns_bookkeeping);
        let cache_key = MetaKey::host_addr(host_ns, host_name);
        let _guard = match self.cache.lookup_or_fetch(self.world(), &cache_key) {
            LookupOrFetch::Hit {
                value,
                remaining_ttl_secs,
            } => {
                return Ok((
                    HostId(value.u32_field("host").map_err(HnsError::from)?),
                    remaining_ttl_secs,
                ));
            }
            // Host-address keys never cache negatives; fetch directly.
            LookupOrFetch::NegativeHit => None,
            LookupOrFetch::Lead(guard) => Some(guard),
        };
        let linked = Arc::clone(&self.linked_nsms.read())
            .get(ha_nsm_name)
            .cloned()
            .ok_or_else(|| HnsError::NoLinkedHostAddrNsm(host_ns.to_string()))?;
        let hns_name = HnsName::new(host_context.clone(), host_name)?;
        let world = self.world();
        self.handles
            .linked_calls
            .get(world.metrics(), "nsm", "linked_calls")
            .inc();
        let reply = {
            let span = world.span_lazy(Some(self.host), TraceKind::Nsm, || {
                format!("linked NSM {ha_nsm_name}: {host_name} -> address")
            });
            let reply = linked.handle(&hns_name, &Value::Void);
            drop(span);
            reply
        };
        let reply = match reply {
            Ok(reply) => reply,
            Err(err) if err.is_unreachable() => {
                // Serve-stale for mapping 6: an expired host-address
                // entry still names the right host far more often than
                // not (paper §4).
                if let Some(stale) = self.cache.lookup_stale(self.world(), &cache_key) {
                    self.note_stale_serve(|| format!("hostaddr {host_name} ({err})"));
                    return Ok((
                        HostId(stale.value.u32_field("host").map_err(HnsError::from)?),
                        0,
                    ));
                }
                return Err(HnsError::Rpc(err));
            }
            Err(err) => return Err(HnsError::Rpc(err)),
        };
        let host = HostId(reply.u32_field("host").map_err(HnsError::from)?);
        let ttl = reply.u32_field("ttl").unwrap_or(crate::meta::META_TTL);
        self.cache.insert(self.world(), cache_key, &reply, 1, ttl);
        Ok((host, ttl))
    }

    /// Speculatively fetches the whole meta-mapping chain for (`context`,
    /// `qc`) in one `MQUERY`, seeding the cache and returning the overlay
    /// for this `FindNSM`'s own mapping walk.
    ///
    /// Skipped (returning an empty overlay) when the context record is
    /// already live in the cache — a warm walk needs no round trips at
    /// all, so a batch would only add one.
    fn prefetch_meta_batch(&self, context: &Context, qc: &QueryClass) -> HnsResult<BatchOverlay> {
        let ctx_key = self.meta.context_key(context)?;
        let mut overlay = BatchOverlay::new();
        if self
            .cache
            .contains_live(self.world(), &MetaKey::meta(&ctx_key))
        {
            return Ok(overlay);
        }
        self.world().charge_ms(self.world().costs.hns_bookkeeping);
        let batch = self
            .meta
            .fetch_batch(&ctx_key, &[qc.as_str().to_string()])?;
        match batch.primary {
            Some(fetched) => self.stash(&mut overlay, ctx_key, fetched),
            None => {
                self.cache
                    .insert_negative(self.world(), MetaKey::meta(&ctx_key));
            }
        }
        for (owner, fetched) in batch.additional {
            self.stash(&mut overlay, owner, fetched);
        }
        Ok(overlay)
    }

    /// Seeds one batched record set into both the cache and the overlay.
    fn stash(&self, overlay: &mut BatchOverlay, key: DomainName, fetched: Fetched<Vec<String>>) {
        let value = Value::List(fetched.value.iter().map(Value::str).collect());
        self.cache.insert(
            self.world(),
            MetaKey::meta(&key),
            &value,
            fetched.rrs,
            fetched.ttl_secs,
        );
        overlay.insert(key, fetched);
    }

    /// The primary HNS function: maps a context and query class to an HRPC
    /// binding for the NSM that can serve the query.
    pub fn find_nsm(&self, qc: &QueryClass, name: &HnsName) -> HnsResult<HrpcBinding> {
        self.find_nsm_report(qc, name).map(|(binding, _)| binding)
    }

    /// [`Hns::find_nsm`] plus per-query accounting: the remote round
    /// trips the query made (6 sequential cold, ≤ 2 batched cold, 0
    /// warm), whether batching was on, and the virtual time it took.
    ///
    /// When tracing is enabled the query also records a root span named
    /// `FindNSM(query class …, name …)` with one child span per meta
    /// mapping; per-mapping latency lands in the `hns_meta` histograms
    /// and the round-trip distributions in `hns/find_nsm_round_trips_*`
    /// either way.
    pub fn find_nsm_report(
        &self,
        qc: &QueryClass,
        name: &HnsName,
    ) -> HnsResult<(HrpcBinding, FindNsmReport)> {
        let world = Arc::clone(self.world());
        let batched = self.batching();

        // Composed fast path: a live binding-cache entry answers the
        // whole query in one probe. Only the context matters — the
        // individual name plays no part in the mapping walk.
        if self.binding_cache.enabled() {
            let t0 = world.now();
            if let Some(binding) =
                self.binding_cache
                    .lookup(&world, qc.as_str(), name.context.as_str())
            {
                world.cache_outcome(CacheOutcome::Hit);
                let took = world.now().since(t0);
                self.record_query_metrics(&world, batched, 0, took, false);
                return Ok((
                    binding,
                    FindNsmReport {
                        remote_round_trips: 0,
                        batched,
                        stale_served: false,
                        took,
                    },
                ));
            }
        }

        let span = world.span_lazy(Some(self.host), TraceKind::Hns, || {
            format!("FindNSM(query class {qc}, name {name})")
        });
        let t0 = world.now();
        let calls0 = world.counters().remote_calls;
        let stale0 = self.stale_serves.load(Ordering::Relaxed);
        let result = self.find_nsm_inner(qc, name, batched);
        let took = world.now().since(t0);
        let remote_round_trips = world.counters().remote_calls.saturating_sub(calls0);
        let stale_served = self.stale_serves.load(Ordering::Relaxed) > stale0;
        span.add_round_trips(remote_round_trips);
        drop(span);

        self.record_query_metrics(&world, batched, remote_round_trips, took, result.is_err());

        let (binding, min_ttl) = result?;
        // A zero `min_ttl` (some constituent was stale-served or about to
        // lapse) is refused by the insert, so composed entries never
        // outlive their parts.
        self.binding_cache
            .insert(&world, qc.as_str(), name.context.as_str(), binding, min_ttl);
        Ok((
            binding,
            FindNsmReport {
                remote_round_trips,
                batched,
                stale_served,
                took,
            },
        ))
    }

    /// Per-query metric updates shared by the composed fast path and the
    /// full mapping walk.
    fn record_query_metrics(
        &self,
        world: &World,
        batched: bool,
        remote_round_trips: u64,
        took: SimDuration,
        is_err: bool,
    ) {
        let metrics = world.metrics();
        self.handles
            .find_nsm_calls
            .get(metrics, "hns", "find_nsm_calls")
            .inc();
        // The error counter registers unconditionally (add of 0), exactly
        // as the seed did — snapshots must keep showing the `= 0` line.
        self.handles
            .find_nsm_errors
            .get(metrics, "hns", "find_nsm_errors")
            .add(u64::from(is_err));
        self.handles
            .find_nsm_remote_round_trips
            .get(metrics, "hns", "find_nsm_remote_round_trips")
            .add(remote_round_trips);
        let (rt_handle, rt_name) = if batched {
            (
                &self.handles.round_trips_batched,
                "find_nsm_round_trips_batched",
            )
        } else {
            (
                &self.handles.round_trips_sequential,
                "find_nsm_round_trips_sequential",
            )
        };
        rt_handle
            .get(metrics, "hns", rt_name)
            .record(remote_round_trips);
        self.handles
            .find_nsm_us
            .record_ms(metrics, "hns", "find_nsm_us", took.as_ms_f64());
    }

    /// Runs `f` inside a `mapping {idx}` child span and records its
    /// virtual latency in the `hns_meta/mapping{idx}_us` histogram.
    fn with_mapping<T>(
        &self,
        idx: usize,
        label: impl FnOnce() -> String,
        f: impl FnOnce() -> HnsResult<T>,
    ) -> HnsResult<T> {
        const HIST: [&str; 6] = [
            "mapping1_us",
            "mapping2_us",
            "mapping3_us",
            "mapping4_us",
            "mapping5_us",
            "mapping6_us",
        ];
        let world = self.world();
        let span = world.span_lazy(Some(self.host), TraceKind::Hns, || {
            format!("mapping {idx}: {}", label())
        });
        let t0 = world.now();
        let result = f();
        let took_ms = world.now().since(t0).as_ms_f64();
        drop(span);
        self.handles.mapping_us[idx - 1].record_ms(
            world.metrics(),
            "hns_meta",
            HIST[idx - 1],
            took_ms,
        );
        result
    }

    /// The mapping walk. Returns the binding plus the minimum remaining
    /// TTL across the six mapping entries consulted — the freshness
    /// bound for a composed binding-cache entry.
    fn find_nsm_inner(
        &self,
        qc: &QueryClass,
        name: &HnsName,
        batched: bool,
    ) -> HnsResult<(HrpcBinding, u32)> {
        // With batching enabled, one MQUERY fetches mapping 1 and lets the
        // meta server's chaser piggyback mappings 2-5; the walk below then
        // runs against the overlay instead of making per-mapping calls.
        let overlay = if batched {
            let world = self.world();
            let span = world.span_lazy(Some(self.host), TraceKind::Hns, || {
                format!("MQUERY batch prefetch (context {}, {qc})", name.context)
            });
            let t0 = world.now();
            let prefetched = self.prefetch_meta_batch(&name.context, qc);
            let took_ms = world.now().since(t0).as_ms_f64();
            drop(span);
            self.handles.batch_prefetch_us.record_ms(
                world.metrics(),
                "hns_meta",
                "batch_prefetch_us",
                took_ms,
            );
            Some(prefetched?)
        } else {
            None
        };
        let overlay = overlay.as_ref();
        // Mapping 1: Context -> Name Service Name.
        let (ctx_info, ttl1) = self.with_mapping(
            1,
            || format!("context {} -> name service", name.context),
            || self.context_info_with(&name.context, overlay),
        )?;
        // Mapping 2: Name Service Name, Query Class -> NSM Name.
        let (nsm_name, ttl2) = self.with_mapping(
            2,
            || format!("({}, {qc}) -> NSM name", ctx_info.name_service),
            || self.nsm_name_with(&ctx_info.name_service, qc, overlay),
        )?;
        // Mapping 3: NSM Name -> HRPC Binding for the NSM. The stored info
        // names the NSM's host; translating that is itself an HNS naming
        // operation (mappings 4-6).
        let (info, ttl3) = self.with_mapping(
            3,
            || format!("NSM {nsm_name} -> binding info"),
            || self.nsm_info_with(&nsm_name, overlay),
        )?;
        let (host_ctx_info, ttl4) = self.with_mapping(
            4,
            || format!("host context {} -> name service", info.host_context),
            || self.context_info_with(&info.host_context, overlay),
        )?;
        let (ha_nsm, ttl5) = self.with_mapping(
            5,
            || {
                format!(
                    "({}, hostaddress) -> HA-NSM name",
                    host_ctx_info.name_service
                )
            },
            || {
                self.nsm_name_with(
                    &host_ctx_info.name_service,
                    &QueryClass::host_address(),
                    overlay,
                )
            },
        )?;
        let (host, ttl6) = self.with_mapping(
            6,
            || format!("host {} -> address", info.host_name),
            || {
                self.host_address(
                    &host_ctx_info.name_service,
                    &ha_nsm,
                    &info.host_name,
                    &info.host_context,
                )
            },
        )?;
        let binding = HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program: info.program,
            port: info.port,
            components: info.suite.components(info.port),
        };
        self.world().trace(
            Some(self.host),
            TraceKind::Hns,
            format!("FindNSM -> {nsm_name} at {host}:{}", info.port),
        );
        let min_ttl = ttl1.min(ttl2).min(ttl3).min(ttl4).min(ttl5).min(ttl6);
        Ok((binding, min_ttl))
    }

    /// Publishes this instance's cache statistics into the world's
    /// metrics registry (component `hns_cache`, plus
    /// `hns_binding_cache` when the composed cache is enabled — gated so
    /// default-configuration snapshots are unchanged). A Disabled cache
    /// publishes nothing: several instances share one component, and a
    /// disabled instance exporting zeros would clobber a live one's
    /// rows (the same rule [`World::export_all_caches`] applies on
    /// every sampler tick).
    pub fn export_metrics(&self) {
        if self.cache.mode() != CacheMode::Disabled {
            self.cache
                .export_metrics(self.world().metrics(), "hns_cache");
        }
        if self.binding_cache.enabled() {
            self.binding_cache
                .export_metrics(self.world().metrics(), "hns_binding_cache");
        }
    }

    /// Preloads the cache by zone transfer of the whole meta zone.
    ///
    /// "The cost of the many remote lookups required on the initial
    /// reference ... might exceed the cost of preloading the relatively
    /// small amount of information (currently about 2KB) required to
    /// guarantee HNS cache hits."
    pub fn preload(&self) -> HnsResult<PreloadReport> {
        let last_serial = *self.preload_serial.lock();
        let report = match last_serial {
            // Warm instance: ask for only the delta since our serial.
            // The server falls back to shipping the whole zone when its
            // delta log is truncated past us.
            Some(from) => {
                let xfer = bindns::axfr::transfer_zone_incremental(
                    &self.net,
                    self.host,
                    &self.meta_binding,
                    self.meta.origin(),
                    from,
                )
                .map_err(HnsError::Rpc)?;
                let (mode, records) = match &xfer.contents {
                    bindns::axfr::IxfrContents::Unchanged => (PreloadMode::Unchanged, &[][..]),
                    bindns::axfr::IxfrContents::Incremental { records, .. } => {
                        (PreloadMode::Incremental, records.as_slice())
                    }
                    bindns::axfr::IxfrContents::Full { records } => {
                        (PreloadMode::Full, records.as_slice())
                    }
                };
                let entries = self.preload_records(records)?;
                PreloadReport {
                    records: records.len(),
                    bytes: xfer.size_bytes,
                    entries,
                    mode,
                    serial: xfer.serial,
                }
            }
            // Cold instance: full zone transfer.
            None => {
                let xfer = bindns::axfr::transfer_zone(
                    &self.net,
                    self.host,
                    &self.meta_binding,
                    self.meta.origin(),
                )
                .map_err(HnsError::Rpc)?;
                let entries = self.preload_records(&xfer.records)?;
                PreloadReport {
                    records: xfer.records.len(),
                    bytes: xfer.size_bytes,
                    entries,
                    mode: PreloadMode::Full,
                    serial: xfer.serial,
                }
            }
        };
        *self.preload_serial.lock() = Some(report.serial);
        let metrics = self.world().metrics();
        match report.mode {
            PreloadMode::Full => metrics.inc("hns_preload", "full_transfers"),
            PreloadMode::Incremental => metrics.inc("hns_preload", "incremental_transfers"),
            PreloadMode::Unchanged => metrics.inc("hns_preload", "unchanged_probes"),
        }
        metrics.add("hns_preload", "bytes_shipped", report.bytes as u64);
        Ok(report)
    }

    /// Groups transferred meta records by owner name and seeds the cache.
    /// Returns the number of cache entries created. Grouping preserves
    /// owner and record order; an index map keeps it linear in the batch.
    fn preload_records(&self, records: &[bindns::rr::ResourceRecord]) -> HnsResult<usize> {
        let mut grouped: Vec<(DomainName, Vec<String>, u32)> = Vec::new();
        let mut index: HashMap<DomainName, usize> = HashMap::new();
        for rr in records {
            let payload = match &rr.rdata {
                bindns::rr::RData::Opaque(bytes) => String::from_utf8(bytes.clone())
                    .map_err(|_| HnsError::BadMetaRecord("non-UTF-8 payload".into()))?,
                _ => continue, // Only UNSPEC meta records preload.
            };
            match index.get(&rr.name) {
                Some(&i) => {
                    let (_, payloads, ttl) = &mut grouped[i];
                    payloads.push(payload);
                    *ttl = (*ttl).min(rr.ttl);
                }
                None => {
                    index.insert(rr.name.clone(), grouped.len());
                    grouped.push((rr.name.clone(), vec![payload], rr.ttl));
                }
            }
        }
        let entries = grouped.len();
        for (name, payloads, ttl) in grouped {
            let rrs = payloads.len();
            let value = Value::List(payloads.iter().map(Value::str).collect());
            self.cache
                .preload_insert(self.world(), MetaKey::meta(&name), &value, rrs, ttl);
        }
        Ok(entries)
    }
}

impl std::fmt::Debug for Hns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hns")
            .field("host", &self.host)
            .field("cache", &self.cache)
            .finish()
    }
}

//! The composed `FindNSM` binding cache.
//!
//! The per-mapping [`HnsCache`](crate::cache::HnsCache) makes a warm
//! `FindNSM` free of *remote* work, but the walk itself still runs all
//! six mappings: six meta-key constructions, six shard probes, and —
//! the dominant cost at load — re-parsing the cached payload strings
//! into `ContextInfo` / NSM-name / `NsmInfo` structures on every query.
//! At hundreds of thousands of queries per second that parse-and-alloc
//! tax *is* the hot path.
//!
//! This cache composes the whole walk: the final [`HrpcBinding`] for a
//! `(query class, context)` pair, tagged with the **minimum remaining
//! TTL across every constituent mapping entry** observed while the walk
//! ran. Until that composed TTL lapses, no constituent can have expired
//! either (meta entries only leave the cache by TTL; dynamic updates
//! re-register and bump serials before any TTL math would let a
//! composed entry outlive its parts), so serving the composed binding
//! is exactly as fresh as re-walking the per-mapping cache. A warm
//! `FindNSM` becomes one shard probe returning a `Copy` binding.
//!
//! Disabled by default: the paper's measured shape (Table 3.1) is the
//! six-mapping walk, and every golden experiment keeps that shape.
//! The load engine enables it per instance via
//! [`Hns::set_binding_cache`](crate::service::Hns::set_binding_cache).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use hrpc::HrpcBinding;
use intern::NameId;
use parking_lot::Mutex;
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;

/// Number of lock-striped shards (matches the per-mapping cache).
const SHARDS: usize = 16;

/// One composed entry: the bound result and when the *earliest*
/// constituent mapping entry expires.
#[derive(Debug, Clone, Copy)]
struct Entry {
    binding: HrpcBinding,
    expires_at: SimTime,
}

/// Statistics of a [`BindingCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BindingCacheStats {
    /// Probes answered by a live composed entry.
    pub hits: u64,
    /// Probes that found nothing composed (the walk ran).
    pub misses: u64,
    /// Probes that found an entry whose composed TTL had lapsed.
    pub expired: u64,
    /// Composed entries inserted after successful walks.
    pub inserts: u64,
}

/// A sharded cache of composed `FindNSM` results.
///
/// Keys are interned `(query class, context)` ids — the individual
/// name plays no part in the mapping walk, so all names in a context
/// share one entry per query class. Probing with [`NameId`]s keeps the
/// warm path free of per-query key allocation: the seed keyed shards
/// by `(String, String)` and cloned both strings on every probe.
pub struct BindingCache {
    enabled: AtomicBool,
    shards: Vec<Mutex<HashMap<(NameId, NameId), Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    inserts: AtomicU64,
}

impl Default for BindingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl BindingCache {
    /// Creates a disabled, empty cache.
    pub fn new() -> Self {
        BindingCache {
            enabled: AtomicBool::new(false),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Enables or disables the cache. Disabling clears it, so a
    /// re-enable starts cold.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            for shard in &self.shards {
                shard.lock().clear();
            }
        }
    }

    /// Whether the cache is consulted at all.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn shard(&self, qc: NameId, context: NameId) -> &Mutex<HashMap<(NameId, NameId), Entry>> {
        // Interned ids are dense; mixing the pair spreads shards evenly.
        &self.shards[(qc.0 as usize ^ (context.0 as usize).rotate_left(7)) % SHARDS]
    }

    /// Probes for a live composed binding, charging one cache-probe
    /// cost. Returns `None` (without charging more) when disabled.
    pub fn lookup(&self, world: &World, qc: &str, context: &str) -> Option<HrpcBinding> {
        if !self.enabled() {
            return None;
        }
        world.charge_ms(world.costs.cache_probe);
        let now = world.now();
        let (qc, context) = (intern::intern(qc), intern::intern(context));
        let shard = self.shard(qc, context).lock();
        match shard.get(&(qc, context)) {
            Some(entry) if entry.expires_at > now => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.binding)
            }
            Some(_) => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a composed result whose earliest constituent expires in
    /// `min_ttl_secs`. A zero TTL (a stale-served walk) is not cached.
    pub fn insert(
        &self,
        world: &World,
        qc: &str,
        context: &str,
        binding: HrpcBinding,
        min_ttl_secs: u32,
    ) {
        if !self.enabled() || min_ttl_secs == 0 {
            return;
        }
        let expires_at = world.now() + SimDuration::from_ms(u64::from(min_ttl_secs) * 1000);
        let (qc, context) = (intern::intern(qc), intern::intern(context));
        self.shard(qc, context).lock().insert(
            (qc, context),
            Entry {
                binding,
                expires_at,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BindingCacheStats {
        BindingCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }

    /// Exports the current statistics into a metrics registry under
    /// `component` (published at snapshot time like the per-mapping
    /// cache's stats; never registered while the cache is disabled and
    /// untouched, so default-configuration snapshots are unchanged).
    pub fn export_metrics(&self, metrics: &simnet::obs::MetricsRegistry, component: &str) {
        let s = self.stats();
        metrics.set_counter(component, "hits", s.hits);
        metrics.set_counter(component, "misses", s.misses);
        metrics.set_counter(component, "expired", s.expired);
        metrics.set_counter(component, "inserts", s.inserts);
    }
}

impl std::fmt::Debug for BindingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BindingCache")
            .field("enabled", &self.enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrpc::ProgramId;
    use simnet::topology::{HostId, NetAddr};

    fn binding(host: u32) -> HrpcBinding {
        HrpcBinding {
            host: HostId(host),
            addr: NetAddr::of(HostId(host)),
            program: ProgramId(17),
            port: 1234,
            components: hrpc::ComponentSet::sun(),
        }
    }

    #[test]
    fn disabled_cache_is_inert() {
        let w = World::paper();
        let c = BindingCache::new();
        c.insert(&w, "hrpc_binding", "dept0", binding(1), 600);
        assert_eq!(c.lookup(&w, "hrpc_binding", "dept0"), None);
        assert_eq!(c.stats(), BindingCacheStats::default());
        // Probes of a disabled cache charge nothing.
        assert_eq!(w.now().as_us(), 0);
    }

    #[test]
    fn hit_until_composed_ttl_lapses_then_expired() {
        let w = World::paper();
        let c = BindingCache::new();
        c.set_enabled(true);
        assert_eq!(c.lookup(&w, "qc", "ctx"), None, "cold miss");
        c.insert(&w, "qc", "ctx", binding(2), 2);
        assert_eq!(c.lookup(&w, "qc", "ctx"), Some(binding(2)));
        w.charge_ms(2_000.0);
        assert_eq!(c.lookup(&w, "qc", "ctx"), None, "composed TTL lapsed");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.expired, s.inserts), (1, 1, 1, 1));
    }

    #[test]
    fn zero_ttl_walks_are_not_cached() {
        let w = World::paper();
        let c = BindingCache::new();
        c.set_enabled(true);
        c.insert(&w, "qc", "ctx", binding(3), 0);
        assert_eq!(c.lookup(&w, "qc", "ctx"), None);
        assert_eq!(c.stats().inserts, 0);
    }

    #[test]
    fn disabling_clears_entries() {
        let w = World::paper();
        let c = BindingCache::new();
        c.set_enabled(true);
        c.insert(&w, "qc", "ctx", binding(4), 600);
        c.set_enabled(false);
        c.set_enabled(true);
        assert_eq!(c.lookup(&w, "qc", "ctx"), None, "re-enable starts cold");
    }

    #[test]
    fn entries_are_per_query_class_and_context() {
        let w = World::paper();
        let c = BindingCache::new();
        c.set_enabled(true);
        c.insert(&w, "a", "ctx", binding(5), 600);
        c.insert(&w, "b", "ctx", binding(6), 600);
        assert_eq!(c.lookup(&w, "a", "ctx"), Some(binding(5)));
        assert_eq!(c.lookup(&w, "b", "ctx"), Some(binding(6)));
        assert_eq!(c.lookup(&w, "a", "other"), None);
    }
}

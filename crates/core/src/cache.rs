//! The HNS meta-naming cache.
//!
//! "Because our approach introduces a level of indirection, we use a
//! specialized caching scheme based on locality of reference to query class
//! and name system type to provide acceptable performance."
//!
//! Two storage forms exist, the subject of Table 3.2:
//!
//! * **Marshalled** — entries are kept in wire form and demarshalled
//!   through the generated routines on every hit (the initial
//!   implementation: "we kept data in its marshalled form, and demarshalled
//!   it upon every access, expecting that marshalling was a minor expense").
//! * **Demarshalled** — entries are kept decoded; a hit is a map lookup
//!   plus a copy ("by simply changing the cache to keep demarshalled
//!   information, the times decreased dramatically").
//!
//! Entries are TTL-tagged, inheriting BIND's invalidation regime.

use std::collections::HashMap;

use parking_lot::Mutex;
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;
use simnet::CacheForm;
use wire::Value;

/// Whether and how the HNS caches meta information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching (the paper's column-A/no-cache interpretation).
    Disabled,
    /// Cache in wire form; every hit pays a generated demarshal.
    Marshalled,
    /// Cache decoded values; hits are nearly free.
    Demarshalled,
}

/// Keys for the six data mappings a `FindNSM` performs.
///
/// Meta-store mappings (context, NSM-name, NSM-info records) are keyed by
/// their meta-zone domain name, so the zone-transfer preload path produces
/// exactly the same keys as the demand-fetch path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MetaKey {
    /// Mappings 1–5: a record set in the meta zone.
    Meta(bindns::name::DomainName),
    /// Mapping 6: a (name service, host name) → address result obtained
    /// via the linked host-address NSM.
    HostAddr(String, String),
}

#[derive(Debug)]
enum Stored {
    Bytes(Vec<u8>),
    Decoded(Value),
}

#[derive(Debug)]
struct Entry {
    stored: Stored,
    rrs: usize,
    expires_at: SimTime,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HnsCacheStats {
    /// Live-entry hits.
    pub hits: u64,
    /// Misses (including TTL expirations).
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries inserted by preload.
    pub preloaded: u64,
}

/// The HNS cache.
pub struct HnsCache {
    mode: Mutex<CacheMode>,
    entries: Mutex<HashMap<MetaKey, Entry>>,
    stats: Mutex<HnsCacheStats>,
}

impl HnsCache {
    /// Creates a cache in the given mode.
    pub fn new(mode: CacheMode) -> Self {
        HnsCache {
            mode: Mutex::new(mode),
            entries: Mutex::new(HashMap::new()),
            stats: Mutex::new(HnsCacheStats::default()),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> CacheMode {
        *self.mode.lock()
    }

    /// Switches mode, clearing the cache (entries are stored per-form).
    pub fn set_mode(&self, mode: CacheMode) {
        *self.mode.lock() = mode;
        self.entries.lock().clear();
    }

    /// Looks up `key`, charging the probe cost and, on a hit, the
    /// form-dependent access cost of Table 3.2.
    pub fn get(&self, world: &World, key: &MetaKey) -> Option<Value> {
        let mode = self.mode();
        if mode == CacheMode::Disabled {
            return None;
        }
        world.charge_ms(world.costs.cache_probe);
        let mut entries = self.entries.lock();
        match entries.get(key) {
            Some(entry) if entry.expires_at > world.now() => {
                let value = match &entry.stored {
                    Stored::Bytes(bytes) => {
                        // The real demarshal, plus its calibrated cost.
                        world.charge_ms(world.costs.cache_hit(CacheForm::Marshalled, entry.rrs));
                        match wire::xdr::decode(bytes) {
                            Ok(v) => v,
                            Err(_) => {
                                entries.remove(key);
                                self.stats.lock().misses += 1;
                                return None;
                            }
                        }
                    }
                    Stored::Decoded(v) => {
                        world.charge_ms(world.costs.cache_hit(CacheForm::Demarshalled, entry.rrs));
                        v.clone()
                    }
                };
                self.stats.lock().hits += 1;
                world.trace(
                    None,
                    simnet::trace::TraceKind::Cache,
                    format!("hit {key:?}"),
                );
                Some(value)
            }
            Some(_) => {
                entries.remove(key);
                self.stats.lock().misses += 1;
                None
            }
            None => {
                self.stats.lock().misses += 1;
                None
            }
        }
    }

    /// Inserts a value fetched from the meta store or an NSM.
    pub fn insert(&self, world: &World, key: MetaKey, value: &Value, rrs: usize, ttl_secs: u32) {
        self.insert_inner(world, key, value, rrs, ttl_secs, false);
    }

    fn insert_inner(
        &self,
        world: &World,
        key: MetaKey,
        value: &Value,
        rrs: usize,
        ttl_secs: u32,
        preload: bool,
    ) {
        let mode = self.mode();
        if mode == CacheMode::Disabled {
            return;
        }
        let stored = match mode {
            CacheMode::Marshalled => match wire::xdr::encode(value) {
                Ok(bytes) => Stored::Bytes(bytes),
                Err(_) => return,
            },
            CacheMode::Demarshalled => Stored::Decoded(value.clone()),
            CacheMode::Disabled => unreachable!("checked above"),
        };
        let expires_at = world.now() + SimDuration::from_ms(u64::from(ttl_secs) * 1000);
        self.entries.lock().insert(
            key,
            Entry {
                stored,
                rrs,
                expires_at,
            },
        );
        let mut stats = self.stats.lock();
        stats.inserts += 1;
        if preload {
            stats.preloaded += 1;
        }
    }

    /// Inserts an entry on behalf of the preload path.
    pub fn preload_insert(
        &self,
        world: &World,
        key: MetaKey,
        value: &Value,
        rrs: usize,
        ttl_secs: u32,
    ) {
        self.insert_inner(world, key, value, rrs, ttl_secs, true);
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HnsCacheStats {
        *self.stats.lock()
    }

    /// Resets statistics.
    pub fn reset_stats(&self) {
        *self.stats.lock() = HnsCacheStats::default();
    }
}

impl std::fmt::Debug for HnsCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnsCache")
            .field("mode", &self.mode())
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MetaKey {
        MetaKey::Meta(bindns::name::DomainName::parse("ctx.bind-uw.hns").expect("name"))
    }

    fn value() -> Value {
        Value::str("ns=BIND;map=id")
    }

    #[test]
    fn disabled_mode_stores_nothing() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Disabled);
        cache.insert(&world, key(), &value(), 1, 600);
        assert!(cache.get(&world, &key()).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn marshalled_hits_cost_table_3_2() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let (got, took, _) = world.measure(|| cache.get(&world, &key()));
        assert_eq!(got, Some(value()));
        // probe (0.05) + marshalled hit for 1 RR (11.11).
        assert!((took.as_ms_f64() - 11.16).abs() < 0.1, "took {took}");
    }

    #[test]
    fn demarshalled_hits_are_nearly_free() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let (got, took, _) = world.measure(|| cache.get(&world, &key()));
        assert_eq!(got, Some(value()));
        // probe (0.05) + demarshalled hit (0.83).
        assert!((took.as_ms_f64() - 0.88).abs() < 0.05, "took {took}");
    }

    #[test]
    fn six_record_entries_cost_more() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 6, 600);
        let (_, took, _) = world.measure(|| cache.get(&world, &key()));
        // probe + 26.17 (Table 3.2, 6 RRs marshalled).
        assert!((took.as_ms_f64() - 26.22).abs() < 0.1, "took {took}");
    }

    #[test]
    fn ttl_expiry_evicts() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 1); // 1 second
        world.charge_ms(1_500.0);
        assert!(cache.get(&world, &key()).is_none());
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn mode_switch_clears_entries() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        cache.set_mode(CacheMode::Demarshalled);
        assert!(cache.is_empty());
        assert_eq!(cache.mode(), CacheMode::Demarshalled);
    }

    #[test]
    fn preload_counts_separately() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.preload_insert(&world, key(), &value(), 1, 600);
        let stats = cache.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.preloaded, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        let dn = |s: &str| bindns::name::DomainName::parse(s).expect("name");
        let k1 = MetaKey::Meta(dn("map.bind--hrpcbinding.hns"));
        let k2 = MetaKey::Meta(dn("map.bind--hostaddress.hns"));
        let k3 = MetaKey::Meta(dn("info.nsm-x.hns"));
        let k4 = MetaKey::HostAddr("BIND".into(), "fiji".into());
        cache.insert(&world, k1.clone(), &Value::str("a"), 1, 600);
        cache.insert(&world, k2.clone(), &Value::str("b"), 1, 600);
        cache.insert(&world, k3.clone(), &Value::str("c"), 1, 600);
        cache.insert(&world, k4.clone(), &Value::str("d"), 1, 600);
        assert_eq!(cache.get(&world, &k1), Some(Value::str("a")));
        assert_eq!(cache.get(&world, &k2), Some(Value::str("b")));
        assert_eq!(cache.get(&world, &k3), Some(Value::str("c")));
        assert_eq!(cache.get(&world, &k4), Some(Value::str("d")));
    }

    #[test]
    fn stats_reset() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let _ = cache.get(&world, &key());
        cache.reset_stats();
        assert_eq!(cache.stats(), HnsCacheStats::default());
    }
}

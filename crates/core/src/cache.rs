//! The HNS meta-naming cache.
//!
//! "Because our approach introduces a level of indirection, we use a
//! specialized caching scheme based on locality of reference to query class
//! and name system type to provide acceptable performance."
//!
//! Two storage forms exist, the subject of Table 3.2:
//!
//! * **Marshalled** — entries are kept in wire form and demarshalled
//!   through the generated routines on every hit (the initial
//!   implementation: "we kept data in its marshalled form, and demarshalled
//!   it upon every access, expecting that marshalling was a minor expense").
//! * **Demarshalled** — entries are kept decoded; a hit is a map lookup
//!   plus a reference-count bump ("by simply changing the cache to keep
//!   demarshalled information, the times decreased dramatically").
//!
//! Entries are TTL-tagged, inheriting BIND's invalidation regime.
//!
//! Beyond the paper's design, this cache is built for a multi-threaded
//! HNS:
//!
//! * **Lock striping** — entries live in [`SHARDS`] independently-locked
//!   shards, so concurrent lookups on different keys never contend.
//! * **Arc-shared hits** — demarshalled entries are stored as
//!   `Arc<Value>` and hits hand back a clone of the `Arc`, not of the
//!   value.
//! * **Miss coalescing** — [`HnsCache::begin_fetch`] is a singleflight
//!   gate: of K threads missing on the same key, one becomes the
//!   [`FetchTicket::Leader`] and performs the remote fetch while the
//!   others block until it finishes, then re-probe the cache.
//! * **Negative caching** — a `NotFound` can be remembered via
//!   [`HnsCache::insert_negative`] for a (short, separate) TTL, so
//!   repeated lookups of absent names do not hammer the meta server.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use intern::NameId;
use parking_lot::Mutex;
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;
use simnet::CacheForm;
use wire::Value;

/// Number of lock-striped shards.
pub const SHARDS: usize = 16;

/// Default TTL for negative entries, seconds. Deliberately much shorter
/// than the positive [`crate::meta::META_TTL`]: absence is the cheapest
/// fact to recompute and the most dangerous to over-remember.
pub const NEGATIVE_TTL: u32 = 30;

/// Whether and how the HNS caches meta information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching (the paper's column-A/no-cache interpretation).
    Disabled,
    /// Cache in wire form; every hit pays a generated demarshal.
    Marshalled,
    /// Cache decoded values; hits are nearly free.
    Demarshalled,
}

impl CacheMode {
    fn to_u8(self) -> u8 {
        match self {
            CacheMode::Disabled => 0,
            CacheMode::Marshalled => 1,
            CacheMode::Demarshalled => 2,
        }
    }

    fn from_u8(v: u8) -> CacheMode {
        match v {
            1 => CacheMode::Marshalled,
            2 => CacheMode::Demarshalled,
            _ => CacheMode::Disabled,
        }
    }
}

/// Keys for the six data mappings a `FindNSM` performs.
///
/// Meta-store mappings (context, NSM-name, NSM-info records) are keyed by
/// their meta-zone domain name, so the zone-transfer preload path produces
/// exactly the same keys as the demand-fetch path.
///
/// Keys carry interned [`NameId`]s rather than owned strings: a key is
/// `Copy`, eight bytes, hashes as one or two `u32`s, and a million cached
/// mappings share one stored copy of each distinct name. `Debug` resolves
/// the ids so traces stay human-readable.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaKey {
    /// Mappings 1–5: a record set in the meta zone.
    Meta(NameId),
    /// Mapping 6: a (name service, host name) → address result obtained
    /// via the linked host-address NSM.
    HostAddr(NameId, NameId),
}

impl MetaKey {
    /// Keys a meta-zone record set by its domain name.
    pub fn meta(name: &bindns::name::DomainName) -> MetaKey {
        MetaKey::Meta(name.interned())
    }

    /// Keys a host-address result by `(name service, host name)`.
    pub fn host_addr(ns: &str, host: &str) -> MetaKey {
        MetaKey::HostAddr(intern::intern(ns), intern::intern(host))
    }
}

impl std::fmt::Debug for MetaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaKey::Meta(id) => write!(f, "Meta({:?})", &*intern::display(*id)),
            MetaKey::HostAddr(ns, host) => write!(
                f,
                "HostAddr({:?}, {:?})",
                &*intern::display(*ns),
                &*intern::display(*host)
            ),
        }
    }
}

#[derive(Debug)]
enum Stored {
    Bytes(Vec<u8>),
    Decoded(Arc<Value>),
    /// The name was authoritatively absent when cached.
    Negative,
}

#[derive(Debug)]
struct Entry {
    stored: Stored,
    rrs: usize,
    expires_at: SimTime,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HnsCacheStats {
    /// Live-entry hits.
    pub hits: u64,
    /// Probes that found nothing cached (absent or decode failure —
    /// TTL expirations are counted in [`HnsCacheStats::expired`]).
    pub misses: u64,
    /// Probes that found an entry whose TTL had lapsed.
    pub expired: u64,
    /// Probes answered by a live negative entry.
    pub negative_hits: u64,
    /// Fetches avoided by coalescing onto another thread's in-flight
    /// fetch for the same key.
    pub coalesced: u64,
    /// Entries inserted (negatives not counted).
    pub inserts: u64,
    /// Entries inserted by preload.
    pub preloaded: u64,
    /// Expired entries served anyway because the authoritative server
    /// was unreachable (serve-stale).
    pub stale_serves: u64,
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    negative_hits: AtomicU64,
    coalesced: AtomicU64,
    inserts: AtomicU64,
    preloaded: AtomicU64,
    stale_serves: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> HnsCacheStats {
        HnsCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            preloaded: self.preloaded.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
        self.negative_hits.store(0, Ordering::Relaxed);
        self.coalesced.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.preloaded.store(0, Ordering::Relaxed);
        self.stale_serves.store(0, Ordering::Relaxed);
    }
}

/// One in-flight fetch that other threads can wait on.
///
/// Built on `std::sync` primitives (not `parking_lot`) because waiters
/// must tolerate a leader that panicked mid-fetch: the guard's `Drop`
/// still completes the flight, and lock poisoning is explicitly absorbed.
struct Flight {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn complete(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        drop(done);
        self.cv.notify_all();
    }
}

struct Shard {
    entries: Mutex<HashMap<MetaKey, Entry>>,
    in_flight: Mutex<HashMap<MetaKey, Arc<Flight>>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            entries: Mutex::new(HashMap::new()),
            in_flight: Mutex::new(HashMap::new()),
        }
    }
}

/// Result of a cost-charged cache probe.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// A live entry: the (shared) value and its remaining TTL in seconds,
    /// rounded up so a just-inserted entry reports its full TTL.
    Hit {
        /// The cached value; demarshalled hits share the stored allocation.
        value: Arc<Value>,
        /// Seconds of validity the entry still has.
        remaining_ttl_secs: u32,
    },
    /// A live negative entry: the name was authoritatively absent within
    /// the negative TTL.
    NegativeHit,
    /// Nothing cached (absent, expired, or undecodable).
    Miss,
}

/// Internal probe result; plain misses are counted by the caller.
enum Probe {
    Hit {
        value: Arc<Value>,
        remaining_ttl_secs: u32,
    },
    Negative,
    Miss {
        /// An entry existed but its TTL had lapsed (already counted).
        expired: bool,
    },
}

/// Outcome of [`HnsCache::lookup_or_fetch`]: either the cache (or a
/// coalesced leader's fetch) answered, or this caller owns the fetch.
pub enum LookupOrFetch<'a> {
    /// A live entry: the (shared) value and its remaining TTL, seconds.
    Hit {
        /// The cached value; demarshalled hits share the stored allocation.
        value: Arc<Value>,
        /// Seconds of validity the entry still has.
        remaining_ttl_secs: u32,
    },
    /// A live negative entry: the name is authoritatively absent.
    NegativeHit,
    /// This caller must fetch; keep the guard alive until the insert.
    Lead(FlightGuard<'a>),
}

/// An expired positive entry returned by [`HnsCache::lookup_stale`].
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// The cached value; demarshalled entries share the stored `Arc`.
    pub value: Arc<Value>,
    /// Record count of the entry.
    pub rrs: usize,
    /// Whole seconds since the entry's TTL lapsed.
    pub stale_for_secs: u32,
}

/// Outcome of [`HnsCache::begin_fetch`] after a miss.
pub enum FetchTicket<'a> {
    /// This caller owns the fetch; the guard must stay alive until the
    /// fetched value has been inserted (or the fetch abandoned) — dropping
    /// it releases every coalesced waiter.
    Leader(FlightGuard<'a>),
    /// Another thread was already fetching this key; its fetch has now
    /// completed (successfully or not). Re-probe the cache.
    Coalesced,
}

/// RAII token held by the leader of an in-flight fetch. On drop — normal
/// return, error, or panic — the flight is deregistered and all coalesced
/// waiters are released.
pub struct FlightGuard<'a> {
    cache: &'a HnsCache,
    key: MetaKey,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache
            .shard(&self.key)
            .in_flight
            .lock()
            .remove(&self.key);
        self.flight.complete();
    }
}

/// The HNS cache: lock-striped, miss-coalescing, TTL-tagged.
pub struct HnsCache {
    mode: AtomicU8,
    negative_ttl: AtomicU32,
    shards: Vec<Shard>,
    stats: AtomicStats,
}

impl HnsCache {
    /// Creates a cache in the given mode.
    pub fn new(mode: CacheMode) -> Self {
        HnsCache {
            mode: AtomicU8::new(mode.to_u8()),
            negative_ttl: AtomicU32::new(NEGATIVE_TTL),
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            stats: AtomicStats::default(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> CacheMode {
        CacheMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Switches mode, clearing the cache (entries are stored per-form).
    pub fn set_mode(&self, mode: CacheMode) {
        self.mode.store(mode.to_u8(), Ordering::Relaxed);
        self.clear();
    }

    /// TTL applied to negative entries, seconds.
    pub fn negative_ttl(&self) -> u32 {
        self.negative_ttl.load(Ordering::Relaxed)
    }

    /// Sets the TTL applied to subsequently inserted negative entries.
    pub fn set_negative_ttl(&self, ttl_secs: u32) {
        self.negative_ttl.store(ttl_secs, Ordering::Relaxed);
    }

    fn shard(&self, key: &MetaKey) -> &Shard {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    fn remaining_secs(expires_at: SimTime, now: SimTime) -> u32 {
        let us = expires_at.saturating_since(now).as_us();
        us.div_ceil(1_000_000) as u32
    }

    /// Probes `key`, charging the probe cost and, on a hit, the
    /// form-dependent access cost of Table 3.2. Demarshalled hits share
    /// the stored `Arc` — no value clone.
    ///
    /// Counts one of hits / misses / expired / negative_hits per call.
    /// Callers that follow a miss through the singleflight gate should
    /// prefer [`HnsCache::lookup_or_fetch`], whose accounting counts
    /// each logical operation exactly once even when it coalesces.
    pub fn lookup(&self, world: &World, key: &MetaKey) -> CacheLookup {
        if self.mode() == CacheMode::Disabled {
            return CacheLookup::Miss;
        }
        match self.probe(world, key, true) {
            Probe::Hit {
                value,
                remaining_ttl_secs,
            } => CacheLookup::Hit {
                value,
                remaining_ttl_secs,
            },
            Probe::Negative => CacheLookup::NegativeHit,
            Probe::Miss { expired } => {
                if !expired {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                }
                CacheLookup::Miss
            }
        }
    }

    /// The shared probe. Counts hits / negative_hits / expired when
    /// `record_stats` is set; never counts plain misses (the caller
    /// decides whether the miss is this operation's outcome or a
    /// re-probe after a coalesced wait).
    fn probe(&self, world: &World, key: &MetaKey, record_stats: bool) -> Probe {
        world.charge_ms(world.costs.cache_probe);
        let now = world.now();
        let mut entries = self.shard(key).entries.lock();
        match entries.get(key) {
            Some(entry) if entry.expires_at > now => {
                let remaining_ttl_secs = Self::remaining_secs(entry.expires_at, now);
                let value = match &entry.stored {
                    Stored::Bytes(bytes) => {
                        // The real demarshal, plus its calibrated cost.
                        world.charge_ms(world.costs.cache_hit(CacheForm::Marshalled, entry.rrs));
                        match wire::xdr::decode(bytes) {
                            Ok(v) => Arc::new(v),
                            Err(_) => {
                                entries.remove(key);
                                return Probe::Miss { expired: false };
                            }
                        }
                    }
                    Stored::Decoded(v) => {
                        world.charge_ms(world.costs.cache_hit(CacheForm::Demarshalled, entry.rrs));
                        Arc::clone(v)
                    }
                    Stored::Negative => {
                        if record_stats {
                            self.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        return Probe::Negative;
                    }
                };
                if record_stats {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    // Gate on the tracer so the hot hit path never pays
                    // for the Debug formatting when tracing is off.
                    if world.tracer.is_enabled() {
                        world.trace(
                            None,
                            simnet::trace::TraceKind::Cache,
                            format!("hit {key:?}"),
                        );
                    }
                }
                Probe::Hit {
                    value,
                    remaining_ttl_secs,
                }
            }
            Some(_) => {
                // The entry is dead for normal reads but deliberately
                // *retained*: it is the serve-stale fallback when the
                // authoritative meta server is unreachable (paper §4 —
                // meta-naming data changes slowly, so stale data beats
                // no data). A successful refetch overwrites it in place.
                if record_stats {
                    self.stats.expired.fetch_add(1, Ordering::Relaxed);
                }
                Probe::Miss { expired: true }
            }
            None => Probe::Miss { expired: false },
        }
    }

    /// Probes `key` and, on a miss, enters the singleflight gate —
    /// looping through coalesced waits until the operation resolves as
    /// a hit, a negative hit, or leadership of the fetch.
    ///
    /// Accounting contract (the `HnsCacheStats` double-count fix): each
    /// logical operation moves **exactly one** of `hits`, `misses`,
    /// `expired`, `negative_hits`, or `coalesced`. In particular a
    /// coalesced waiter counts only `coalesced` — its initial probe is
    /// not a `miss` (it never fetched) and its post-wait re-probe is
    /// not a `hit` (the leader's fetch, not the cache, answered it).
    ///
    /// Also annotates the calling thread's current trace span with the
    /// operation's [`simnet::trace::CacheOutcome`].
    pub fn lookup_or_fetch(&self, world: &World, key: &MetaKey) -> LookupOrFetch<'_> {
        use simnet::trace::CacheOutcome;
        let mut waited = false;
        loop {
            let disabled = self.mode() == CacheMode::Disabled;
            let probe = if disabled {
                Probe::Miss { expired: false }
            } else {
                self.probe(world, key, !waited)
            };
            match probe {
                Probe::Hit {
                    value,
                    remaining_ttl_secs,
                } => {
                    if !waited {
                        world.cache_outcome(CacheOutcome::Hit);
                    }
                    return LookupOrFetch::Hit {
                        value,
                        remaining_ttl_secs,
                    };
                }
                Probe::Negative => {
                    if !waited {
                        world.cache_outcome(CacheOutcome::NegativeHit);
                    }
                    return LookupOrFetch::NegativeHit;
                }
                Probe::Miss { expired } => match self.begin_fetch(key) {
                    FetchTicket::Leader(guard) => {
                        // An expiry was already counted by the probe; a
                        // clean miss is counted here, at the moment this
                        // operation commits to fetching.
                        if !disabled && !expired {
                            self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        }
                        if !waited {
                            world.cache_outcome(if expired {
                                CacheOutcome::Expired
                            } else {
                                CacheOutcome::Miss
                            });
                        }
                        return LookupOrFetch::Lead(guard);
                    }
                    FetchTicket::Coalesced => {
                        if !waited {
                            world.cache_outcome(CacheOutcome::Coalesced);
                        }
                        waited = true;
                    }
                },
            }
        }
    }

    /// Looks up `key`, cloning the value out on a hit. Negative hits
    /// report as `None`, like plain misses.
    pub fn get(&self, world: &World, key: &MetaKey) -> Option<Value> {
        match self.lookup(world, key) {
            CacheLookup::Hit { value, .. } => Some((*value).clone()),
            CacheLookup::NegativeHit | CacheLookup::Miss => None,
        }
    }

    /// Probes `key` for an **expired** positive entry — the serve-stale
    /// fallback used when the authoritative meta server is unreachable
    /// (paper §4: meta-naming data changes slowly, so stale data beats
    /// no data). Charges the probe plus the form-dependent hit cost and
    /// counts one `stale_serves` on success. Live entries, negatives,
    /// absent keys, and a disabled cache all return `None` — the normal
    /// lookup path is never bypassed for live data.
    pub fn lookup_stale(&self, world: &World, key: &MetaKey) -> Option<StaleEntry> {
        if self.mode() == CacheMode::Disabled {
            return None;
        }
        world.charge_ms(world.costs.cache_probe);
        let now = world.now();
        let entries = self.shard(key).entries.lock();
        let entry = entries.get(key)?;
        if entry.expires_at > now {
            return None;
        }
        let value = match &entry.stored {
            Stored::Bytes(bytes) => {
                world.charge_ms(world.costs.cache_hit(CacheForm::Marshalled, entry.rrs));
                Arc::new(wire::xdr::decode(bytes).ok()?)
            }
            Stored::Decoded(v) => {
                world.charge_ms(world.costs.cache_hit(CacheForm::Demarshalled, entry.rrs));
                Arc::clone(v)
            }
            Stored::Negative => return None,
        };
        let stale_for_secs = (now.saturating_since(entry.expires_at).as_us() / 1_000_000) as u32;
        self.stats.stale_serves.fetch_add(1, Ordering::Relaxed);
        Some(StaleEntry {
            value,
            rrs: entry.rrs,
            stale_for_secs,
        })
    }

    /// True if a live (positive) entry exists. Charges nothing and moves
    /// no statistics — this is a structural peek, used to decide whether
    /// a speculative batch fetch is worthwhile.
    pub fn contains_live(&self, world: &World, key: &MetaKey) -> bool {
        if self.mode() == CacheMode::Disabled {
            return false;
        }
        let now = world.now();
        let entries = self.shard(key).entries.lock();
        matches!(
            entries.get(key),
            Some(entry) if entry.expires_at > now && !matches!(entry.stored, Stored::Negative)
        )
    }

    /// Enters the singleflight gate for `key` after a miss.
    ///
    /// Returns [`FetchTicket::Leader`] if this caller should perform the
    /// fetch (keep the guard alive until after the insert), or
    /// [`FetchTicket::Coalesced`] once another thread's in-flight fetch
    /// for the same key has finished — in which case re-probe the cache
    /// and, if it is still a miss, call `begin_fetch` again.
    pub fn begin_fetch(&self, key: &MetaKey) -> FetchTicket<'_> {
        let shard = self.shard(key);
        let existing = {
            let mut flights = shard.in_flight.lock();
            match flights.get(key) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::new());
                    flights.insert(*key, Arc::clone(&flight));
                    drop(flights);
                    return FetchTicket::Leader(FlightGuard {
                        cache: self,
                        key: *key,
                        flight,
                    });
                }
            }
        };
        let flight = existing.expect("checked above");
        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
        flight.wait();
        FetchTicket::Coalesced
    }

    /// Inserts a value fetched from the meta store or an NSM.
    pub fn insert(&self, world: &World, key: MetaKey, value: &Value, rrs: usize, ttl_secs: u32) {
        self.insert_inner(world, key, value, rrs, ttl_secs, false);
    }

    fn insert_inner(
        &self,
        world: &World,
        key: MetaKey,
        value: &Value,
        rrs: usize,
        ttl_secs: u32,
        preload: bool,
    ) {
        let mode = self.mode();
        if mode == CacheMode::Disabled {
            return;
        }
        let stored = match mode {
            CacheMode::Marshalled => match wire::xdr::encode(value) {
                Ok(bytes) => Stored::Bytes(bytes),
                Err(_) => return,
            },
            CacheMode::Demarshalled => Stored::Decoded(Arc::new(value.clone())),
            CacheMode::Disabled => unreachable!("checked above"),
        };
        let expires_at = world.now() + SimDuration::from_ms(u64::from(ttl_secs) * 1000);
        self.shard(&key).entries.lock().insert(
            key,
            Entry {
                stored,
                rrs,
                expires_at,
            },
        );
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        if preload {
            self.stats.preloaded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Remembers that `key` was authoritatively absent, for the negative
    /// TTL. Not counted in [`HnsCacheStats::inserts`].
    pub fn insert_negative(&self, world: &World, key: MetaKey) {
        if self.mode() == CacheMode::Disabled {
            return;
        }
        let ttl = u64::from(self.negative_ttl());
        let expires_at = world.now() + SimDuration::from_ms(ttl * 1000);
        self.shard(&key).entries.lock().insert(
            key,
            Entry {
                stored: Stored::Negative,
                rrs: 0,
                expires_at,
            },
        );
    }

    /// Inserts an entry on behalf of the preload path.
    pub fn preload_insert(
        &self,
        world: &World,
        key: MetaKey,
        value: &Value,
        rrs: usize,
        ttl_secs: u32,
    ) {
        self.insert_inner(world, key, value, rrs, ttl_secs, true);
    }

    /// Drops everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.entries.lock().clear();
        }
    }

    /// Number of entries (negative entries included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HnsCacheStats {
        self.stats.snapshot()
    }

    /// Resets statistics.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Exports the current statistics into a metrics registry under
    /// `component` (the hot probe path keeps its own atomics; this
    /// publishes them at snapshot time).
    pub fn export_metrics(&self, metrics: &simnet::obs::MetricsRegistry, component: &str) {
        let s = self.stats();
        metrics.set_counter(component, "hits", s.hits);
        metrics.set_counter(component, "misses", s.misses);
        metrics.set_counter(component, "expired", s.expired);
        metrics.set_counter(component, "negative_hits", s.negative_hits);
        metrics.set_counter(component, "coalesced", s.coalesced);
        metrics.set_counter(component, "inserts", s.inserts);
        metrics.set_counter(component, "preloaded", s.preloaded);
        // Published only once exercised, preserving fault-free snapshots
        // byte-for-byte (the same lazy-registration convention the
        // handle-cached counters follow).
        if s.stale_serves > 0 {
            metrics.set_counter(component, "stale_serves", s.stale_serves);
        }
        metrics.set_counter(component, "entries", self.len() as u64);
    }
}

impl std::fmt::Debug for HnsCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnsCache")
            .field("mode", &self.mode())
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MetaKey {
        MetaKey::meta(&bindns::name::DomainName::parse("ctx.bind-uw.hns").expect("name"))
    }

    fn value() -> Value {
        Value::str("ns=BIND;map=id")
    }

    #[test]
    fn disabled_mode_stores_nothing() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Disabled);
        cache.insert(&world, key(), &value(), 1, 600);
        assert!(cache.get(&world, &key()).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn marshalled_hits_cost_table_3_2() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let (got, took, _) = world.measure(|| cache.get(&world, &key()));
        assert_eq!(got, Some(value()));
        // probe (0.05) + marshalled hit for 1 RR (11.11).
        assert!((took.as_ms_f64() - 11.16).abs() < 0.1, "took {took}");
    }

    #[test]
    fn demarshalled_hits_are_nearly_free() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let (got, took, _) = world.measure(|| cache.get(&world, &key()));
        assert_eq!(got, Some(value()));
        // probe (0.05) + demarshalled hit (0.83).
        assert!((took.as_ms_f64() - 0.88).abs() < 0.05, "took {took}");
    }

    #[test]
    fn six_record_entries_cost_more() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 6, 600);
        let (_, took, _) = world.measure(|| cache.get(&world, &key()));
        // probe + 26.17 (Table 3.2, 6 RRs marshalled).
        assert!((took.as_ms_f64() - 26.22).abs() < 0.1, "took {took}");
    }

    #[test]
    fn ttl_expiry_hides_but_retains_the_entry() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 1); // 1 second
        world.charge_ms(1_500.0);
        assert!(cache.get(&world, &key()).is_none(), "dead for normal reads");
        assert_eq!(cache.len(), 1, "retained as the serve-stale fallback");
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.expired, 1, "expiry is its own counter");
        assert_eq!(stats.misses, 0, "an expiry is not a plain miss");
    }

    #[test]
    fn lookup_stale_serves_only_expired_positives() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 1);
        assert!(
            cache.lookup_stale(&world, &key()).is_none(),
            "live entries go through the normal path"
        );
        world.charge_ms(3_500.0);
        let stale = cache.lookup_stale(&world, &key()).expect("stale fallback");
        assert_eq!(*stale.value, value());
        assert_eq!(stale.rrs, 1);
        assert_eq!(stale.stale_for_secs, 2, "3.5 s elapsed on a 1 s TTL");
        assert_eq!(cache.stats().stale_serves, 1);
        // A refetch overwrites the stale entry in place.
        cache.insert(&world, key(), &value(), 1, 600);
        assert_eq!(cache.get(&world, &key()), Some(value()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lookup_stale_never_serves_negatives_absent_or_disabled() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        assert!(cache.lookup_stale(&world, &key()).is_none(), "absent");
        cache.set_negative_ttl(1);
        cache.insert_negative(&world, key());
        world.charge_ms(2_000.0);
        assert!(
            cache.lookup_stale(&world, &key()).is_none(),
            "an expired negative is not servable data"
        );
        let disabled = HnsCache::new(CacheMode::Disabled);
        assert!(disabled.lookup_stale(&world, &key()).is_none());
        assert_eq!(cache.stats().stale_serves, 0);
    }

    #[test]
    fn lookup_stale_decodes_marshalled_entries() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 1, 1);
        world.charge_ms(1_500.0);
        let (stale, took, _) = world.measure(|| cache.lookup_stale(&world, &key()));
        let stale = stale.expect("stale fallback");
        assert_eq!(*stale.value, value());
        // probe (0.05) + marshalled hit for 1 RR (11.11): stale hits pay
        // the same access cost a live hit would.
        assert!((took.as_ms_f64() - 11.16).abs() < 0.1, "took {took}");
    }

    #[test]
    fn cold_probe_counts_as_miss() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        assert!(cache.get(&world, &key()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.expired, 0);
    }

    #[test]
    fn mode_switch_clears_entries() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        cache.set_mode(CacheMode::Demarshalled);
        assert!(cache.is_empty());
        assert_eq!(cache.mode(), CacheMode::Demarshalled);
    }

    #[test]
    fn preload_counts_separately() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Marshalled);
        cache.preload_insert(&world, key(), &value(), 1, 600);
        let stats = cache.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.preloaded, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        let dn = |s: &str| bindns::name::DomainName::parse(s).expect("name");
        let k1 = MetaKey::meta(&dn("map.bind--hrpcbinding.hns"));
        let k2 = MetaKey::meta(&dn("map.bind--hostaddress.hns"));
        let k3 = MetaKey::meta(&dn("info.nsm-x.hns"));
        let k4 = MetaKey::host_addr("BIND", "fiji");
        cache.insert(&world, k1, &Value::str("a"), 1, 600);
        cache.insert(&world, k2, &Value::str("b"), 1, 600);
        cache.insert(&world, k3, &Value::str("c"), 1, 600);
        cache.insert(&world, k4, &Value::str("d"), 1, 600);
        assert_eq!(cache.get(&world, &k1), Some(Value::str("a")));
        assert_eq!(cache.get(&world, &k2), Some(Value::str("b")));
        assert_eq!(cache.get(&world, &k3), Some(Value::str("c")));
        assert_eq!(cache.get(&world, &k4), Some(Value::str("d")));
    }

    #[test]
    fn stats_reset() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let _ = cache.get(&world, &key());
        cache.reset_stats();
        assert_eq!(cache.stats(), HnsCacheStats::default());
    }

    #[test]
    fn lookup_reports_remaining_ttl() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        match cache.lookup(&world, &key()) {
            CacheLookup::Hit {
                remaining_ttl_secs, ..
            } => assert_eq!(remaining_ttl_secs, 600, "fresh entry reports full TTL"),
            other => panic!("expected hit, got {other:?}"),
        }
        world.charge_ms(250_000.0); // 250 s elapse.
        match cache.lookup(&world, &key()) {
            CacheLookup::Hit {
                remaining_ttl_secs, ..
            } => assert_eq!(remaining_ttl_secs, 350),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn demarshalled_hits_share_the_stored_allocation() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let a = match cache.lookup(&world, &key()) {
            CacheLookup::Hit { value, .. } => value,
            other => panic!("expected hit, got {other:?}"),
        };
        let b = match cache.lookup(&world, &key()) {
            CacheLookup::Hit { value, .. } => value,
            other => panic!("expected hit, got {other:?}"),
        };
        assert!(Arc::ptr_eq(&a, &b), "hits must share one allocation");
    }

    #[test]
    fn negative_entries_hit_until_their_ttl_lapses() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert_negative(&world, key());
        assert!(matches!(
            cache.lookup(&world, &key()),
            CacheLookup::NegativeHit
        ));
        let stats = cache.stats();
        assert_eq!(stats.negative_hits, 1);
        assert_eq!(stats.inserts, 0, "negatives are not inserts");
        world.charge_ms(f64::from(NEGATIVE_TTL) * 1000.0 + 500.0);
        assert!(matches!(cache.lookup(&world, &key()), CacheLookup::Miss));
    }

    #[test]
    fn negative_ttl_is_configurable() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.set_negative_ttl(2);
        cache.insert_negative(&world, key());
        world.charge_ms(1_000.0);
        assert!(matches!(
            cache.lookup(&world, &key()),
            CacheLookup::NegativeHit
        ));
        world.charge_ms(1_500.0);
        assert!(matches!(cache.lookup(&world, &key()), CacheLookup::Miss));
    }

    #[test]
    fn negative_hit_charges_only_the_probe() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert_negative(&world, key());
        let (_, took, _) = world.measure(|| cache.lookup(&world, &key()));
        assert!(
            (took.as_ms_f64() - 0.05).abs() < 0.01,
            "negative hit took {took}"
        );
    }

    #[test]
    fn positive_insert_overwrites_negative() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert_negative(&world, key());
        cache.insert(&world, key(), &value(), 1, 600);
        assert_eq!(cache.get(&world, &key()), Some(value()));
    }

    #[test]
    fn contains_live_is_structural() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        assert!(!cache.contains_live(&world, &key()));
        cache.insert(&world, key(), &value(), 1, 1);
        let before = cache.stats();
        let (found, took, _) = world.measure(|| cache.contains_live(&world, &key()));
        assert!(found);
        assert_eq!(took.as_us(), 0, "peek must be cost-free");
        world.charge_ms(1_500.0);
        assert!(!cache.contains_live(&world, &key()), "expired is not live");
        assert_eq!(cache.stats(), before, "no stats moved");
        cache.insert_negative(&world, key());
        assert!(
            !cache.contains_live(&world, &key()),
            "negative is not a live positive"
        );
    }

    #[test]
    fn singleflight_leader_then_coalesced() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        let guard = match cache.begin_fetch(&key()) {
            FetchTicket::Leader(guard) => guard,
            FetchTicket::Coalesced => panic!("first caller must lead"),
        };
        // Leader inserts and releases; a later caller gets a fresh flight.
        cache.insert(&world, key(), &value(), 1, 600);
        drop(guard);
        assert!(matches!(cache.begin_fetch(&key()), FetchTicket::Leader(_)));
    }

    #[test]
    fn abandoned_flight_allows_a_new_leader() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        match cache.begin_fetch(&key()) {
            FetchTicket::Leader(guard) => drop(guard), // fetch failed; no insert
            FetchTicket::Coalesced => panic!("first caller must lead"),
        }
        assert!(matches!(cache.begin_fetch(&key()), FetchTicket::Leader(_)));
        let _ = world; // silence unused
    }

    #[test]
    fn lookup_or_fetch_counts_cold_miss_once() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        let guard = match cache.lookup_or_fetch(&world, &key()) {
            LookupOrFetch::Lead(guard) => guard,
            _ => panic!("cold probe must lead"),
        };
        cache.insert(&world, key(), &value(), 1, 600);
        drop(guard);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.coalesced, 0);
        // Warm path is a plain hit.
        assert!(matches!(
            cache.lookup_or_fetch(&world, &key()),
            LookupOrFetch::Hit { .. }
        ));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lookup_or_fetch_expired_counts_expiry_not_miss() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 1);
        world.charge_ms(1_500.0);
        match cache.lookup_or_fetch(&world, &key()) {
            LookupOrFetch::Lead(_guard) => {}
            _ => panic!("expired entry must lead a refetch"),
        }
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.misses, 0, "an expiry is not a plain miss");
    }

    /// Regression (ISSUE 2 satellite): a coalesced waiter must count
    /// exactly one `coalesced` — not a `miss` for its initial probe and
    /// not a `hit` for its post-wait re-probe.
    #[test]
    fn coalesced_waiters_are_not_double_counted() {
        const WAITERS: usize = 4;
        let world = simnet::World::paper();
        let cache = Arc::new(HnsCache::new(CacheMode::Demarshalled));

        let guard = match cache.lookup_or_fetch(&world, &key()) {
            LookupOrFetch::Lead(guard) => guard,
            _ => panic!("leader expected"),
        };

        let barrier = Arc::new(std::sync::Barrier::new(WAITERS + 1));
        let handles: Vec<_> = (0..WAITERS)
            .map(|_| {
                let world = Arc::clone(&world);
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.lookup_or_fetch(&world, &key()) {
                        LookupOrFetch::Hit { value, .. } => (*value).clone(),
                        _ => panic!("waiter must see the leader's insert"),
                    }
                })
            })
            .collect();

        barrier.wait();
        // Deterministic ordering: every waiter registers in the flight
        // (bumping `coalesced`) before the fetch completes, so each one
        // resolves via its quiet post-wait re-probe.
        while cache.stats().coalesced < WAITERS as u64 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        cache.insert(&world, key(), &value(), 1, 600);
        drop(guard);
        for h in handles {
            assert_eq!(h.join().expect("join"), value());
        }

        let stats = cache.stats();
        // Exactly one stat per logical operation.
        assert_eq!(stats.misses, 1, "only the leader's fetch is a miss");
        assert_eq!(stats.coalesced, WAITERS as u64);
        assert_eq!(
            stats.hits, 0,
            "a coalesced waiter's re-probe must not count a hit: {stats:?}"
        );
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.negative_hits, 0);
    }

    #[test]
    fn export_metrics_publishes_stats() {
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        cache.insert(&world, key(), &value(), 1, 600);
        let _ = cache.get(&world, &key());
        let metrics = simnet::obs::MetricsRegistry::new();
        cache.export_metrics(&metrics, "hns_cache");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("hns_cache", "hits"), Some(1));
        assert_eq!(snap.counter("hns_cache", "inserts"), Some(1));
        assert_eq!(snap.counter("hns_cache", "entries"), Some(1));
    }
}

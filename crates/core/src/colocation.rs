//! Colocation arrangements.
//!
//! "Because the HNS accesses its data from other servers ... even the HNS
//! can be linked locally. Similarly, the NSMs can be linked with any
//! process. ... We call the choice of where the HNS and NSMs are linked
//! for each client the colocation arrangement."
//!
//! This module provides the machinery for every arrangement of Table 3.1:
//!
//! * a linked HNS — the client holds an [`crate::service::Hns`] directly;
//! * a remote HNS — [`HnsService`] exports `FindNSM` over HRPC and
//!   [`HnsHandle::Remote`] calls it, paying argument marshalling;
//! * an agent — [`AgentService`] is "a single process remote from the
//!   client [that acts] as the client's agent, making local calls to the
//!   HNS and then to the NSM" (row 2).

use std::sync::Arc;

use simnet::topology::HostId;

use hrpc::error::{RpcError, RpcResult};
use hrpc::net::RpcNet;
use hrpc::server::{CallCtx, RpcService};
use hrpc::{HrpcBinding, ProgramId};
use wire::Value;

use crate::error::{HnsError, HnsResult};
use crate::name::{Context, HnsName};
use crate::nsm::NsmClient;
use crate::query::QueryClass;
use crate::service::Hns;

/// Program number for a remotely exported HNS.
pub const HNS_PROGRAM: ProgramId = ProgramId(400_001);
/// HNS procedure: `FindNSM`.
pub const HNS_PROC_FINDNSM: u32 = 1;
/// Program number for an agent process.
pub const AGENT_PROGRAM: ProgramId = ProgramId(400_002);
/// Agent procedure: full query (find NSM + call it).
pub const AGENT_PROC_QUERY: u32 = 1;

/// Exports an [`Hns`] as a remote service.
pub struct HnsService {
    hns: Arc<Hns>,
}

impl HnsService {
    /// Wraps an HNS instance.
    pub fn new(hns: Arc<Hns>) -> Arc<Self> {
        Arc::new(HnsService { hns })
    }
}

fn hns_err(e: HnsError) -> RpcError {
    match e {
        HnsError::Rpc(rpc) => rpc,
        HnsError::NoSuchContext(c) => RpcError::NotFound(format!("context {c}")),
        HnsError::NoSuchNsm {
            name_service,
            query_class,
        } => RpcError::NotFound(format!("NSM for {query_class} on {name_service}")),
        other => RpcError::Service(other.to_string()),
    }
}

fn parse_findnsm_args(args: &Value) -> RpcResult<(QueryClass, HnsName)> {
    let qc = QueryClass::new(args.str_field("query_class")?);
    let context =
        Context::new(args.str_field("context")?).map_err(|e| RpcError::Service(e.to_string()))?;
    let name = HnsName::new(context, args.str_field("name")?)
        .map_err(|e| RpcError::Service(e.to_string()))?;
    Ok((qc, name))
}

impl RpcService for HnsService {
    fn service_name(&self) -> &str {
        "hns"
    }

    fn dispatch(&self, _ctx: &CallCtx<'_>, proc_id: u32, args: &Value) -> RpcResult<Value> {
        match proc_id {
            HNS_PROC_FINDNSM => {
                let (qc, name) = parse_findnsm_args(args)?;
                let binding = self.hns.find_nsm(&qc, &name).map_err(hns_err)?;
                Ok(binding.to_value())
            }
            other => Err(RpcError::BadProcedure(other)),
        }
    }
}

impl std::fmt::Debug for HnsService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnsService").finish()
    }
}

/// How a client reaches the HNS.
#[derive(Clone)]
pub enum HnsHandle {
    /// The HNS is linked into the client's address space.
    Linked(Arc<Hns>),
    /// The HNS runs remotely behind a binding.
    Remote(HrpcBinding),
}

/// Client-side access to `FindNSM` under any colocation arrangement.
pub struct HnsClient {
    net: Arc<RpcNet>,
    host: HostId,
    handle: HnsHandle,
}

impl HnsClient {
    /// Creates a client on `host` using `handle`.
    pub fn new(net: Arc<RpcNet>, host: HostId, handle: HnsHandle) -> Self {
        HnsClient { net, host, handle }
    }

    /// The caller host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Toggles the batched meta pipeline on the underlying HNS instance.
    /// Only applies to [`HnsHandle::Linked`] handles; returns whether the
    /// setting took effect (remote servers manage their own flag).
    pub fn set_batching(&self, enabled: bool) -> bool {
        match &self.handle {
            HnsHandle::Linked(hns) => {
                hns.set_batching(enabled);
                true
            }
            HnsHandle::Remote(_) => false,
        }
    }

    /// Calls `FindNSM`.
    pub fn find_nsm(&self, qc: &QueryClass, name: &HnsName) -> HnsResult<HrpcBinding> {
        match &self.handle {
            HnsHandle::Linked(hns) => hns.find_nsm(qc, name),
            HnsHandle::Remote(binding) => {
                let world = self.net.world();
                if !world.topology.colocated(self.host, binding.host) {
                    world.charge_ms(world.costs.findnsm_arg_marshal);
                }
                let args = Value::record(vec![
                    ("query_class", Value::str(qc.as_str())),
                    ("context", Value::str(name.context.as_str())),
                    ("name", Value::str(name.individual.clone())),
                ]);
                let reply = self
                    .net
                    .call(self.host, binding, HNS_PROC_FINDNSM, &args)
                    .map_err(HnsError::Rpc)?;
                HrpcBinding::from_value(&reply).map_err(HnsError::from)
            }
        }
    }
}

impl std::fmt::Debug for HnsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnsClient")
            .field("host", &self.host)
            .finish()
    }
}

/// The agent arrangement (Table 3.1 row 2): a remote process linked with
/// both the HNS and the NSMs; the client makes one call and the agent does
/// the rest locally.
///
/// "This structure provides a mixture of colocation efficiency and ease of
/// NSM update, as the code to be modified with changes to the NSM is well
/// contained."
pub struct AgentService {
    hns: Arc<Hns>,
    host: HostId,
}

impl AgentService {
    /// Wraps an HNS linked into the agent process on `host`.
    pub fn new(hns: Arc<Hns>, host: HostId) -> Arc<Self> {
        Arc::new(AgentService { hns, host })
    }
}

impl RpcService for AgentService {
    fn service_name(&self) -> &str {
        "hns-agent"
    }

    fn dispatch(&self, _ctx: &CallCtx<'_>, proc_id: u32, args: &Value) -> RpcResult<Value> {
        if proc_id != AGENT_PROC_QUERY {
            return Err(RpcError::BadProcedure(proc_id));
        }
        let (qc, name) = parse_findnsm_args(args)?;
        let nsm_binding = self.hns.find_nsm(&qc, &name).map_err(hns_err)?;
        // Forward any query-specific arguments besides the standard three.
        let extra: Vec<(&str, Value)> = args
            .as_struct()?
            .iter()
            .filter(|(k, _)| k != "query_class" && k != "context" && k != "name")
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let nsm_client = NsmClient::new(Arc::clone(self.hns.net()), self.host);
        nsm_client.call(&nsm_binding, &name, extra)
    }
}

impl std::fmt::Debug for AgentService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentService")
            .field("host", &self.host)
            .finish()
    }
}

/// Client-side access to an agent.
pub struct AgentClient {
    net: Arc<RpcNet>,
    host: HostId,
    binding: HrpcBinding,
}

impl AgentClient {
    /// Creates a client on `host` calling the agent behind `binding`.
    pub fn new(net: Arc<RpcNet>, host: HostId, binding: HrpcBinding) -> Self {
        AgentClient { net, host, binding }
    }

    /// Performs a complete query through the agent.
    pub fn query(
        &self,
        qc: &QueryClass,
        name: &HnsName,
        extra: Vec<(&str, Value)>,
    ) -> HnsResult<Value> {
        let world = self.net.world();
        if !world.topology.colocated(self.host, self.binding.host) {
            world.charge_ms(world.costs.agent_arg_marshal);
        }
        let mut fields = vec![
            ("query_class", Value::str(qc.as_str())),
            ("context", Value::str(name.context.as_str())),
            ("name", Value::str(name.individual.clone())),
        ];
        fields.extend(extra);
        self.net
            .call(
                self.host,
                &self.binding,
                AGENT_PROC_QUERY,
                &Value::record(fields),
            )
            .map_err(HnsError::Rpc)
    }
}

impl std::fmt::Debug for AgentClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentClient")
            .field("host", &self.host)
            .finish()
    }
}

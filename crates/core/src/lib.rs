//! `hns-core` — the HCS Name Service (HNS).
//!
//! The paper's primary contribution: a *federated* name service that
//! integrates existing heterogeneous name services by **direct access** —
//! using them in place rather than reregistering their data — with the
//! understanding of per-service naming semantics encapsulated in **Naming
//! Semantics Managers** (NSMs) and the HNS itself reduced to managing
//! meta-naming information.
//!
//! * [`name`] — HNS names (`context` + individual name) and the invertible
//!   local↔individual name mappings that guarantee conflict freedom.
//! * [`query`] — open-ended query classes.
//! * [`nsm`] — the NSM trait, its identical per-query-class client
//!   interface, and NSM registration metadata.
//! * [`meta`] — the meta store over the modified BIND, including the
//!   batched `MQUERY` fetch path.
//! * [`chaser`] — the server-side mapping chaser that piggybacks
//!   speculative meta record sets on batched replies.
//! * [`service`] — the HNS library routines and `FindNSM` (three mappings,
//!   six cached remote lookups cold, recursion broken by linked
//!   host-address NSMs; at most two remote round trips with batching
//!   enabled), plus zone-transfer cache preload.
//! * [`cache`] — the sharded, miss-coalescing marshalled/demarshalled TTL
//!   cache of Table 3.2, with negative caching.
//! * [`binding_cache`] — an opt-in composed-result cache: a warm
//!   `FindNSM` collapses to one probe returning the final binding,
//!   fresh for the minimum TTL of the constituent mapping entries.
//! * [`colocation`] — linked / remote / agent arrangements of Table 3.1.
//! * [`analysis`] — equation (1) and the preload break-even model.
#![warn(missing_docs)]

pub mod analysis;
pub mod binding_cache;
pub mod cache;
pub mod chaser;
pub mod colocation;
pub mod error;
pub mod meta;
pub mod name;
pub mod nsm;
pub mod query;
pub mod service;

pub use intern;
pub use simnet::obs;

pub use binding_cache::{BindingCache, BindingCacheStats};
pub use cache::{
    CacheLookup, CacheMode, FetchTicket, HnsCache, HnsCacheStats, LookupOrFetch, MetaKey,
};
pub use chaser::MetaChaser;
pub use colocation::{AgentClient, AgentService, HnsClient, HnsHandle, HnsService};
pub use error::{HnsError, HnsResult};
pub use meta::{ContextInfo, Fetched, MetaBatch, MetaStore, META_TTL};
pub use name::{Context, HnsName, NameMapping};
pub use nsm::{Nsm, NsmClient, NsmInfo, NsmService, SuiteTag, NSM_PROC_QUERY};
pub use query::QueryClass;
pub use service::{FindNsmReport, Hns, PreloadMode, PreloadReport};

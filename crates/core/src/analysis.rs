//! The paper's analytic models: equation (1) and the preload break-even.
//!
//! Equation (1): starting from
//!
//! ```text
//! C(remote) = C(remote call) + (p+q)·C(hit) + (1-p-q)·C(miss)
//! C(local)  = C(local call)  +  p   ·C(hit) + (1-p)  ·C(miss)
//! ```
//!
//! and taking `C(local call) ≈ 0`, "remote location is preferable whenever
//! `q > C(remote call) / (C(cache miss) − C(cache hit))`" — where `q` is
//! the *additional* cache-hit fraction a long-lived remote server achieves
//! over locally linked copies.

/// Inputs to equation (1), all in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq1Inputs {
    /// Cost of one remote call to the component being placed.
    pub remote_call_ms: f64,
    /// Operation cost on a cache hit.
    pub hit_ms: f64,
    /// Operation cost on a cache miss.
    pub miss_ms: f64,
}

impl Eq1Inputs {
    /// The threshold additional hit fraction `q` above which remote
    /// placement wins.
    ///
    /// Returns `None` when `miss ≤ hit` (no benefit to caching, so remote
    /// placement can never pay for its call overhead).
    pub fn remote_threshold(&self) -> Option<f64> {
        let denom = self.miss_ms - self.hit_ms;
        if denom <= 0.0 {
            None
        } else {
            Some(self.remote_call_ms / denom)
        }
    }

    /// Expected cost with the component remote, given base hit fraction
    /// `p` and additional remote hit fraction `q`.
    pub fn remote_cost(&self, p: f64, q: f64) -> f64 {
        let hit = (p + q).clamp(0.0, 1.0);
        self.remote_call_ms + hit * self.hit_ms + (1.0 - hit) * self.miss_ms
    }

    /// Expected cost with the component linked locally at hit fraction `p`
    /// (local call cost taken as zero, as in the paper).
    pub fn local_cost(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        p * self.hit_ms + (1.0 - p) * self.miss_ms
    }
}

/// Preload economics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreloadModel {
    /// One-time preload cost, milliseconds.
    pub preload_ms: f64,
    /// Cold (cache-miss) cost per distinct context/query-class call.
    pub cold_ms: f64,
    /// Warm (cache-hit) cost per call after preload.
    pub warm_ms: f64,
}

impl PreloadModel {
    /// Total cost of `k` distinct calls with preloading.
    pub fn with_preload(&self, k: u32) -> f64 {
        self.preload_ms + f64::from(k) * self.warm_ms
    }

    /// Total cost of `k` distinct calls without preloading (each first
    /// touch is cold).
    pub fn without_preload(&self, k: u32) -> f64 {
        f64::from(k) * self.cold_ms
    }

    /// Smallest number of distinct calls at which preloading wins, if any.
    pub fn break_even_calls(&self) -> Option<u32> {
        let saving = self.cold_ms - self.warm_ms;
        if saving <= 0.0 {
            return None;
        }
        Some((self.preload_ms / saving).ceil().max(1.0) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hns_threshold_is_11_percent() {
        // "estimating C(remote call) as 33 msec., C(cache hit) as 261
        // msec., and C(cache miss) as 547 msec., we calculate that the
        // cache hit fraction obtained when the HNS is remote must exceed
        // that when it is local by an additional 11%".
        let inputs = Eq1Inputs {
            remote_call_ms: 33.0,
            hit_ms: 261.0,
            miss_ms: 547.0,
        };
        let q = inputs.remote_threshold().expect("threshold");
        assert!((q - 0.11).abs() < 0.006, "q = {q}");
    }

    #[test]
    fn paper_nsm_threshold_is_42_percent() {
        // "estimating C(cache hit) as 147 msec. and C(cache miss) as 225
        // msec., an additional 42% cache hit must be experienced by the
        // remote NSMs".
        let inputs = Eq1Inputs {
            remote_call_ms: 33.0,
            hit_ms: 147.0,
            miss_ms: 225.0,
        };
        let q = inputs.remote_threshold().expect("threshold");
        assert!((q - 0.42).abs() < 0.01, "q = {q}");
    }

    #[test]
    fn threshold_crossing_flips_preference() {
        let inputs = Eq1Inputs {
            remote_call_ms: 33.0,
            hit_ms: 100.0,
            miss_ms: 400.0,
        };
        let q_star = inputs.remote_threshold().expect("threshold");
        let p = 0.3;
        // Just below the threshold, local wins; just above, remote wins.
        assert!(inputs.remote_cost(p, q_star - 0.02) > inputs.local_cost(p));
        assert!(inputs.remote_cost(p, q_star + 0.02) < inputs.local_cost(p));
    }

    #[test]
    fn useless_cache_means_local_always_wins() {
        let inputs = Eq1Inputs {
            remote_call_ms: 33.0,
            hit_ms: 100.0,
            miss_ms: 100.0,
        };
        assert_eq!(inputs.remote_threshold(), None);
        assert!(inputs.remote_cost(0.5, 0.5) > inputs.local_cost(0.5));
    }

    #[test]
    fn hit_fractions_clamp() {
        let inputs = Eq1Inputs {
            remote_call_ms: 10.0,
            hit_ms: 1.0,
            miss_ms: 100.0,
        };
        assert_eq!(inputs.remote_cost(0.9, 0.9), inputs.remote_cost(1.0, 0.0));
        assert_eq!(inputs.local_cost(2.0), inputs.local_cost(1.0));
    }

    #[test]
    fn paper_preload_breaks_even_at_two_calls() {
        // "preloading seems to be effective in situations where two or
        // more calls to the HNS for different context/query classes will
        // be made." Preload 390, cold ~370, warm ~88.
        let model = PreloadModel {
            preload_ms: 390.0,
            cold_ms: 370.0,
            warm_ms: 88.0,
        };
        assert_eq!(model.break_even_calls(), Some(2));
        assert!(model.with_preload(1) > model.without_preload(1));
        assert!(model.with_preload(2) < model.without_preload(2));
    }

    #[test]
    fn preload_never_pays_without_savings() {
        let model = PreloadModel {
            preload_ms: 390.0,
            cold_ms: 88.0,
            warm_ms: 88.0,
        };
        assert_eq!(model.break_even_calls(), None);
    }

    #[test]
    fn preload_cost_between_one_and_two_misses_matches_paper() {
        // "the cost of preloading plus a cache hit falls between one and
        // two cache miss times".
        let model = PreloadModel {
            preload_ms: 390.0,
            cold_ms: 370.0,
            warm_ms: 88.0,
        };
        let preload_plus_hit = model.preload_ms + model.warm_ms;
        assert!(preload_plus_hit > model.cold_ms);
        assert!(preload_plus_hit < 2.0 * model.cold_ms);
    }
}

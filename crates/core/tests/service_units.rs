//! Unit-level tests of the HNS service and colocation machinery using a
//! minimal environment (no concrete NSM crate): a modified BIND as meta
//! store, a public BIND for addresses, and a stub host-address NSM.

use std::sync::Arc;

use bindns::name::DomainName;
use bindns::server::{deploy as deploy_bind, single_zone_server, BindDeployment};
use bindns::zone::Zone;
use hns_core::cache::CacheMode;
use hns_core::colocation::{
    AgentClient, AgentService, HnsClient, HnsHandle, HnsService, AGENT_PROGRAM, HNS_PROGRAM,
};
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::nsm::{Nsm, NsmInfo, NsmService, SuiteTag};
use hns_core::query::QueryClass;
use hns_core::service::Hns;
use hns_core::HnsError;
use hrpc::net::RpcNet;
use hrpc::server::ProcServer;
use hrpc::{ComponentSet, HrpcBinding, ProgramId, RpcError};
use simnet::topology::{HostId, NetAddr};
use simnet::world::World;
use wire::Value;

/// A stub host-address NSM answering from a fixed table.
struct StubHostAddr {
    name: &'static str,
    table: Vec<(String, u32)>,
}

impl Nsm for StubHostAddr {
    fn nsm_name(&self) -> &str {
        self.name
    }
    fn query_class(&self) -> QueryClass {
        QueryClass::host_address()
    }
    fn handle(&self, hns_name: &HnsName, _args: &Value) -> Result<Value, RpcError> {
        self.table
            .iter()
            .find(|(n, _)| *n == hns_name.individual)
            .map(|(_, host)| {
                Ok(Value::record(vec![
                    ("host", Value::U32(*host)),
                    ("ttl", Value::U32(600)),
                ]))
            })
            .unwrap_or_else(|| Err(RpcError::NotFound(hns_name.individual.clone())))
    }
}

/// A stub query NSM for an arbitrary class.
struct StubEcho;

impl Nsm for StubEcho {
    fn nsm_name(&self) -> &str {
        "nsm-echo-stub"
    }
    fn query_class(&self) -> QueryClass {
        QueryClass::new("Echo")
    }
    fn handle(&self, hns_name: &HnsName, _args: &Value) -> Result<Value, RpcError> {
        Ok(Value::str(format!("echo:{}", hns_name.individual)))
    }
}

struct Env {
    world: Arc<World>,
    net: Arc<RpcNet>,
    client: HostId,
    hns_host: HostId,
    nsm_host: HostId,
    meta: BindDeployment,
}

fn env() -> Env {
    let world = World::paper();
    let client = world.add_host("client");
    let hns_host = world.add_host("hns-server");
    let nsm_host = world.add_host("nsm-server");
    let meta_host = world.add_host("meta-bind");
    let net = RpcNet::new(Arc::clone(&world));
    let zone = Zone::new(DomainName::parse("hns").expect("origin"), 600);
    let meta = deploy_bind(&net, meta_host, single_zone_server("meta-bind", zone, true));
    Env {
        world,
        net,
        client,
        hns_host,
        nsm_host,
        meta,
    }
}

fn make_hns(env: &Env, host: HostId, mode: CacheMode) -> Arc<Hns> {
    let hns = Arc::new(Hns::new(
        Arc::clone(&env.net),
        host,
        env.meta.hrpc_binding,
        DomainName::parse("hns").expect("origin"),
        mode,
    ));
    hns.link_nsm(Arc::new(StubHostAddr {
        name: "nsm-hostaddress-stub",
        table: vec![("nsm-server".to_string(), env.nsm_host.0)],
    }));
    hns
}

/// Registers the echo NSM end to end: context, names, info, export.
fn register_echo(env: &Env, hns: &Hns) -> u16 {
    let ctx = Context::new("stub-ctx").expect("ctx");
    hns.register_context(&ctx, "StubNS", &NameMapping::Identity)
        .expect("ctx");
    hns.register_nsm("StubNS", &QueryClass::new("Echo"), "nsm-echo-stub")
        .expect("nsm");
    hns.register_nsm(
        "StubNS",
        &QueryClass::host_address(),
        "nsm-hostaddress-stub",
    )
    .expect("ha nsm");
    let port = env.net.export(
        env.nsm_host,
        ProgramId(999),
        NsmService::new(Arc::new(StubEcho)),
    );
    hns.register_nsm_info(&NsmInfo {
        nsm_name: "nsm-echo-stub".into(),
        host_name: "nsm-server".into(),
        host_context: ctx,
        program: ProgramId(999),
        port,
        suite: SuiteTag::Sun,
        version: 1,
        owner: "test".into(),
    })
    .expect("info");
    port
}

fn echo_name() -> HnsName {
    HnsName::new(Context::new("stub-ctx").expect("ctx"), "any-entity").expect("name")
}

#[test]
fn linked_hns_resolves_via_stub_nsm() {
    let env = env();
    let hns = make_hns(&env, env.client, CacheMode::Demarshalled);
    let port = register_echo(&env, &hns);
    let binding = hns
        .find_nsm(&QueryClass::new("Echo"), &echo_name())
        .expect("find");
    assert_eq!(binding.host, env.nsm_host);
    assert_eq!(binding.port, port);
    // And the NSM is callable through the returned binding.
    let nsm_client = hns_core::nsm::NsmClient::new(Arc::clone(&env.net), env.client);
    let reply = nsm_client
        .call(&binding, &echo_name(), vec![])
        .expect("call");
    assert_eq!(reply, Value::str("echo:any-entity"));
}

#[test]
fn missing_linked_host_addr_nsm_is_reported() {
    let env = env();
    let hns = Arc::new(Hns::new(
        Arc::clone(&env.net),
        env.client,
        env.meta.hrpc_binding,
        DomainName::parse("hns").expect("origin"),
        CacheMode::Demarshalled,
    ));
    // Registrations done by a fully-linked instance...
    let registrar = make_hns(&env, env.client, CacheMode::Disabled);
    register_echo(&env, &registrar);
    // ...but this instance lacks the linked host-address NSM.
    let err = hns
        .find_nsm(&QueryClass::new("Echo"), &echo_name())
        .unwrap_err();
    assert!(matches!(err, HnsError::NoLinkedHostAddrNsm(_)), "{err}");
}

#[test]
fn remote_hns_service_and_client_roundtrip() {
    let env = env();
    let hns = make_hns(&env, env.hns_host, CacheMode::Demarshalled);
    register_echo(&env, &hns);
    let port = env
        .net
        .export(env.hns_host, HNS_PROGRAM, HnsService::new(Arc::clone(&hns)));
    let binding = HrpcBinding {
        host: env.hns_host,
        addr: NetAddr::of(env.hns_host),
        program: HNS_PROGRAM,
        port,
        components: ComponentSet::raw_tcp(port),
    };
    let client = HnsClient::new(Arc::clone(&env.net), env.client, HnsHandle::Remote(binding));
    let (found, took, delta) = env
        .world
        .measure(|| client.find_nsm(&QueryClass::new("Echo"), &echo_name()));
    let found = found.expect("remote find");
    assert_eq!(found.host, env.nsm_host);
    // One client->HNS remote hop plus the HNS's cold meta mappings (the
    // stub environment shares the host context with the query context, so
    // mapping 4 hits the cache and the linked HA stub is local).
    assert!(
        delta.remote_calls >= 5,
        "remote calls {}",
        delta.remote_calls
    );
    assert!(took.as_ms_f64() > 50.0);

    // Remote errors propagate with meaning.
    let missing = HnsName::new(Context::new("ghost").expect("ctx"), "x").expect("name");
    let err = client
        .find_nsm(&QueryClass::new("Echo"), &missing)
        .unwrap_err();
    assert!(matches!(err, HnsError::Rpc(RpcError::NotFound(_))), "{err}");
}

#[test]
fn linked_handle_is_free_of_hop_costs() {
    let env = env();
    let hns = make_hns(&env, env.client, CacheMode::Demarshalled);
    register_echo(&env, &hns);
    let client = HnsClient::new(
        Arc::clone(&env.net),
        env.client,
        HnsHandle::Linked(Arc::clone(&hns)),
    );
    client
        .find_nsm(&QueryClass::new("Echo"), &echo_name())
        .expect("warm");
    let (r, took, delta) = env
        .world
        .measure(|| client.find_nsm(&QueryClass::new("Echo"), &echo_name()));
    r.expect("warm find");
    assert_eq!(delta.remote_calls, 0);
    assert!(took.as_ms_f64() < 10.0, "took {took}");
}

#[test]
fn agent_service_performs_find_and_call_in_one_hop() {
    let env = env();
    let agent_host = env.world.add_host("agent");
    // Everything linked at the agent: HNS + (exported-on-agent) NSM.
    let hns = make_hns(&env, agent_host, CacheMode::Demarshalled);
    let ctx = Context::new("stub-ctx").expect("ctx");
    hns.register_context(&ctx, "StubNS", &NameMapping::Identity)
        .expect("ctx");
    hns.register_nsm("StubNS", &QueryClass::new("Echo"), "nsm-echo-stub")
        .expect("nsm");
    hns.register_nsm(
        "StubNS",
        &QueryClass::host_address(),
        "nsm-hostaddress-stub",
    )
    .expect("ha");
    let port = env.net.export(
        agent_host,
        ProgramId(999),
        NsmService::new(Arc::new(StubEcho)),
    );
    hns.register_nsm_info(&NsmInfo {
        nsm_name: "nsm-echo-stub".into(),
        host_name: "nsm-server".into(),
        host_context: ctx,
        program: ProgramId(999),
        port,
        suite: SuiteTag::Sun,
        version: 1,
        owner: "test".into(),
    })
    .expect("info");
    // The stub host-addr NSM must point "nsm-server" at the agent host so
    // the NSM call stays local to the agent.
    hns.link_nsm(Arc::new(StubHostAddr {
        name: "nsm-hostaddress-stub",
        table: vec![("nsm-server".to_string(), agent_host.0)],
    }));

    let agent_port = env.net.export(
        agent_host,
        AGENT_PROGRAM,
        AgentService::new(Arc::clone(&hns), agent_host),
    );
    let agent_binding = HrpcBinding {
        host: agent_host,
        addr: NetAddr::of(agent_host),
        program: AGENT_PROGRAM,
        port: agent_port,
        components: ComponentSet::raw_tcp(agent_port),
    };
    let client = AgentClient::new(Arc::clone(&env.net), env.client, agent_binding);
    let (reply, _, delta) = env
        .world
        .measure(|| client.query(&QueryClass::new("Echo"), &echo_name(), vec![]));
    assert_eq!(reply.expect("agent query"), Value::str("echo:any-entity"));
    // One client-visible remote hop plus the agent's cold meta lookups;
    // the NSM call itself was local to the agent.
    assert!(
        delta.remote_calls >= 5,
        "remote calls {}",
        delta.remote_calls
    );
    // Warm: a single remote call end to end.
    let (_, _, delta) = env
        .world
        .measure(|| client.query(&QueryClass::new("Echo"), &echo_name(), vec![]));
    assert_eq!(delta.remote_calls, 1, "warm agent query is one hop");
}

#[test]
fn hns_service_rejects_unknown_procedures_and_bad_args() {
    let env = env();
    let hns = make_hns(&env, env.hns_host, CacheMode::Demarshalled);
    let port = env
        .net
        .export(env.hns_host, HNS_PROGRAM, HnsService::new(hns));
    let binding = HrpcBinding {
        host: env.hns_host,
        addr: NetAddr::of(env.hns_host),
        program: HNS_PROGRAM,
        port,
        components: ComponentSet::raw_tcp(port),
    };
    assert!(matches!(
        env.net.call(env.client, &binding, 42, &Value::Void),
        Err(RpcError::BadProcedure(42))
    ));
    assert!(env
        .net
        .call(
            env.client,
            &binding,
            1,
            &Value::record(vec![("nonsense", Value::U32(1))])
        )
        .is_err());
}

#[test]
fn preload_from_minimal_meta_zone_works() {
    let env = env();
    let hns = make_hns(&env, env.client, CacheMode::Marshalled);
    register_echo(&env, &hns);
    let report = hns.preload().expect("preload");
    assert!(report.records >= 4, "records {}", report.records);
    assert_eq!(report.entries, 4, "ctx + 2 map entries + info");
    assert!(report.bytes > 0);
    // All meta mappings hit; only the stub host-addr result is computed.
    let (_, _, delta) = env
        .world
        .measure(|| hns.find_nsm(&QueryClass::new("Echo"), &echo_name()));
    assert_eq!(
        delta.remote_calls, 0,
        "stub HA NSM is local; all meta preloaded"
    );
}

#[test]
fn warm_preload_ships_only_the_delta() {
    let env = env();
    let hns = make_hns(&env, env.client, CacheMode::Marshalled);
    register_echo(&env, &hns);
    let full = hns.preload().expect("cold preload");
    assert_eq!(full.mode, hns_core::PreloadMode::Full);
    assert!(full.bytes > 0);
    // Nothing changed since: the probe ships zero bytes.
    let probe = hns.preload().expect("unchanged probe");
    assert_eq!(probe.mode, hns_core::PreloadMode::Unchanged);
    assert_eq!(probe.bytes, 0);
    assert_eq!(probe.entries, 0);
    assert_eq!(probe.serial, full.serial);
    // One small meta update: the next preload is incremental and ships
    // strictly fewer bytes than the cold full transfer did.
    let ctx = Context::new("late-ctx").expect("ctx");
    hns.register_context(&ctx, "LateNS", &NameMapping::Identity)
        .expect("ctx");
    let incr = hns.preload().expect("incremental preload");
    assert_eq!(incr.mode, hns_core::PreloadMode::Incremental);
    assert!(incr.serial > full.serial);
    assert!(
        incr.bytes > 0 && incr.bytes < full.bytes,
        "incremental {} vs full {}",
        incr.bytes,
        full.bytes
    );
    assert_eq!(incr.entries, 1, "only the new context record re-seeds");
}

#[test]
fn cache_mode_switches_clear_state() {
    let env = env();
    let hns = make_hns(&env, env.client, CacheMode::Marshalled);
    register_echo(&env, &hns);
    hns.find_nsm(&QueryClass::new("Echo"), &echo_name())
        .expect("warm");
    assert!(hns.cache_stats().inserts > 0);
    hns.set_cache_mode(CacheMode::Demarshalled);
    assert_eq!(hns.cache_mode(), CacheMode::Demarshalled);
    let (_, _, delta) = env
        .world
        .measure(|| hns.find_nsm(&QueryClass::new("Echo"), &echo_name()));
    assert!(delta.remote_calls > 0, "mode switch must drop entries");
}

#[test]
fn unserved_meta_store_failure_propagates() {
    let env = env();
    let hns = make_hns(&env, env.client, CacheMode::Demarshalled);
    register_echo(&env, &hns);
    // The meta BIND goes down.
    env.net.unexport(env.meta.host, bindns::DNS_PORT);
    let err = hns
        .find_nsm(&QueryClass::new("Echo"), &echo_name())
        .unwrap_err();
    assert!(
        matches!(err, HnsError::Rpc(RpcError::NoSuchService { .. })),
        "{err}"
    );
}

#[test]
fn registration_is_visible_through_a_different_instance() {
    // "registering an NSM with the HNS extends the functionality of all
    // machines at once": instance B sees what instance A registered.
    let env = env();
    let a = make_hns(&env, env.client, CacheMode::Disabled);
    register_echo(&env, &a);
    let b = make_hns(&env, env.hns_host, CacheMode::Demarshalled);
    let binding = b
        .find_nsm(&QueryClass::new("Echo"), &echo_name())
        .expect("find via B");
    assert_eq!(binding.host, env.nsm_host);
}

#[test]
fn echo_proc_server_is_reusable_between_tests() {
    // Guard against accidental double-export panics in the environment.
    let env = env();
    let extra = Arc::new(ProcServer::new("spare").with_proc(1, |_c, a| Ok(a.clone())));
    let port = env.net.export(env.nsm_host, ProgramId(31_337), extra);
    assert!(port >= 1024);
}

//! Property-based tests for the HNS core.

use proptest::prelude::*;

use hns_core::analysis::{Eq1Inputs, PreloadModel};
use hns_core::cache::{CacheMode, HnsCache, MetaKey};
use hns_core::name::{Context, HnsName, NameMapping};
use hns_core::nsm::{NsmInfo, SuiteTag};
use hns_core::query::QueryClass;
use hrpc::ProgramId;
use wire::Value;

fn arb_suite() -> impl Strategy<Value = SuiteTag> {
    prop_oneof![
        Just(SuiteTag::Sun),
        Just(SuiteTag::Courier),
        Just(SuiteTag::RawTcp),
        Just(SuiteTag::RawUdp),
    ]
}

proptest! {
    #[test]
    fn hns_name_display_parse_roundtrip(
        ctx in "[a-zA-Z][a-zA-Z0-9 ._-]{0,20}",
        individual in "[a-zA-Z0-9:. _-]{1,40}",
    ) {
        let context = Context::new(&ctx).expect("no bang, nonempty");
        let name = HnsName::new(context, individual).expect("name");
        let reparsed = HnsName::parse(&name.to_string()).expect("parse");
        prop_assert_eq!(name, reparsed);
    }

    #[test]
    fn nsm_info_records_roundtrip(
        nsm in "[a-z][a-z0-9-]{0,24}",
        host in "[a-z0-9.]{1,32}",
        ctx in "[a-z][a-z0-9-]{0,16}",
        program in any::<u32>(),
        port in any::<u16>(),
        suite in arb_suite(),
        version in any::<u32>(),
        owner in "[a-z0-9 -]{0,16}",
    ) {
        let info = NsmInfo {
            nsm_name: nsm.clone(),
            host_name: host,
            host_context: Context::new(&ctx).expect("ctx"),
            program: ProgramId(program),
            port,
            suite,
            version,
            owner,
        };
        let records = info.to_records();
        prop_assert_eq!(records.len(), NsmInfo::RECORDS);
        let back = NsmInfo::from_records(&nsm, &records).expect("decode");
        prop_assert_eq!(back, info);
    }

    #[test]
    fn query_classes_normalize(name in "[a-zA-Z][a-zA-Z0-9]{0,24}") {
        let a = QueryClass::new(&name);
        let b = QueryClass::new(name.to_ascii_uppercase());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cache_insert_get_identity(
        payloads in proptest::collection::vec("[ -~]{0,32}", 0..8),
        rrs in 1usize..8,
        ttl in 1u32..100_000,
    ) {
        let world = simnet::World::paper();
        let value = Value::List(payloads.iter().map(Value::str).collect());
        for mode in [CacheMode::Marshalled, CacheMode::Demarshalled] {
            let cache = HnsCache::new(mode);
            let key = MetaKey::host_addr("NS", "host");
            cache.insert(&world, key, &value, rrs, ttl);
            prop_assert_eq!(cache.get(&world, &key), Some(value.clone()));
        }
    }

    #[test]
    fn marshalled_hits_never_beat_demarshalled(rrs in 1usize..10) {
        let world = simnet::World::paper();
        let value = Value::str("payload");
        let measure = |mode| {
            let cache = HnsCache::new(mode);
            let key = MetaKey::host_addr("NS", "h");
            cache.insert(&world, key, &value, rrs, 1000);
            let (_, took, _) = world.measure(|| cache.get(&world, &key));
            took.as_ms_f64()
        };
        prop_assert!(measure(CacheMode::Marshalled) > measure(CacheMode::Demarshalled));
    }

    #[test]
    fn eq1_threshold_is_the_indifference_point(
        remote in 1.0f64..100.0,
        hit in 1.0f64..200.0,
        extra_miss in 1.0f64..500.0,
        p in 0.0f64..0.5,
    ) {
        let inputs = Eq1Inputs { remote_call_ms: remote, hit_ms: hit, miss_ms: hit + extra_miss };
        let q = inputs.remote_threshold().expect("miss > hit");
        if p + q <= 1.0 {
            let local = inputs.local_cost(p);
            let remote_cost = inputs.remote_cost(p, q);
            // At exactly q, the two placements cost the same.
            prop_assert!((remote_cost - local).abs() < 1e-6, "{} vs {}", remote_cost, local);
        }
    }

    #[test]
    fn preload_break_even_is_consistent(
        preload in 1.0f64..2000.0,
        warm in 1.0f64..100.0,
        extra_cold in 1.0f64..1000.0,
    ) {
        let model = PreloadModel { preload_ms: preload, cold_ms: warm + extra_cold, warm_ms: warm };
        let k = model.break_even_calls().expect("cold > warm");
        prop_assert!(model.with_preload(k) <= model.without_preload(k));
        if k > 1 {
            prop_assert!(model.with_preload(k - 1) > model.without_preload(k - 1));
        }
    }

    #[test]
    fn sharded_cache_matches_single_map_model(
        ops in proptest::collection::vec(
            (0u8..3, 0usize..6, any::<u32>(), any::<bool>()),
            1..40,
        ),
    ) {
        // The lock-striped cache must be observationally identical to a
        // single-map model: same hit/miss answers, same entry count.
        // Expired entries are hidden from normal reads but *retained* as
        // the serve-stale fallback, so the model never removes them
        // either. TTLs are either 1 s (expired by any 2 s advance, with
        // a margin far exceeding the sub-ms cost charges lookups add) or
        // 10_000 s (never expires in-sequence).
        use simnet::time::SimDuration;
        let world = simnet::World::paper();
        let cache = HnsCache::new(CacheMode::Demarshalled);
        let key_of = |k: usize| MetaKey::host_addr("NS", &format!("host-{k}"));
        let mut model: std::collections::HashMap<usize, (u32, simnet::time::SimTime)> =
            std::collections::HashMap::new();
        for (op, k, v, long_ttl) in ops {
            match op {
                0 => {
                    let ttl_secs = if long_ttl { 10_000 } else { 1 };
                    let expires = world.now() + SimDuration::from_ms(u64::from(ttl_secs) * 1000);
                    cache.insert(&world, key_of(k), &Value::U32(v), 1, ttl_secs);
                    model.insert(k, (v, expires));
                }
                1 => {
                    let expected = match model.get(&k) {
                        Some((v, exp)) if *exp > world.now() => Some(Value::U32(*v)),
                        // Expired: hidden, but retained for serve-stale.
                        _ => None,
                    };
                    prop_assert_eq!(cache.get(&world, &key_of(k)), expected);
                }
                _ => world.charge_ms(2_000.0),
            }
        }
        prop_assert_eq!(cache.len(), model.len());
    }

    #[test]
    fn mapping_decode_never_panics(s in "[ -~]{0,40}") {
        let _ = NameMapping::decode(&s);
    }

    #[test]
    fn context_rejects_bang_everywhere(s in "[a-z]{0,8}", t in "[a-z]{0,8}") {
        let with_bang = format!("{s}!{t}");
        prop_assert!(Context::new(&with_bang).is_err());
    }
}

//! Chaos coverage for the write path: seeded crashes of the primary
//! Clearinghouse landing mid-transfer.
//!
//! The invariant under test: a transfer is ONE chain-mutating RPC, so
//! a crash window overlapping it leaves the chain either fully linked
//! (the transfer succeeded) or fully absent (a typed unreachability
//! error, nothing written) — never a dangling half-link. Trials are
//! driven by a deterministic RNG and the rendered summary is pinned
//! byte-identical per seed.

use std::fmt::Write as _;

use nsms::harness::NS_BIND;
use regd::harness::{owner_key, owner_name, RegTestbed};
use regd::registry::Registry;
use simnet::faults::FaultPlan;
use simnet::rng::DetRng;
use simnet::time::SimDuration;

const NAME: &str = "relay";
const TRIALS: usize = 6;

/// What one crash-window trial observed.
struct Trial {
    offset_ms: u64,
    width_ms: u64,
    outcome: &'static str,
    depth_after: u32,
    head_after: String,
}

/// Runs `TRIALS` transfer attempts, each under its own seeded crash
/// window of the primary, and returns the per-trial observations plus
/// the rendered summary.
fn run(seed: u64) -> (Vec<Trial>, String) {
    let rtb = RegTestbed::build(TRIALS + 2);
    let reg = &rtb.registry;
    let world = &rtb.tb.world;
    reg.register(&owner_name(0), owner_key(0), NAME, NS_BIND)
        .expect("register");

    let mut rng = DetRng::new(seed);
    let mut trials = Vec::new();
    let mut next_owner = 1;
    for _ in 0..TRIALS {
        // A window meant to land inside the transfer's RPC sequence:
        // the warm resolve probe (~156 ms) followed by the link write
        // (~156 ms), with retries and backoff behind them.
        // The ground-truth holder comes from a naive walk with the
        // primary healthy, never from the writer's cache — a walk that
        // straddles the fault boundary could fail over mid-chain to
        // the stale replica and tear.
        let from = holder(reg);
        let to = owner_name(next_owner);

        let offset_ms = rng.next_below(400);
        let width_ms = 60 + rng.next_below(400);
        let from_t = world.now() + SimDuration::from_ms(offset_ms);
        let mut plan = FaultPlan::new();
        plan.crash(
            rtb.tb.hosts.ch,
            from_t,
            Some(from_t + SimDuration::from_ms(width_ms)),
        );
        world.set_faults(Some(plan));
        let result = reg.transfer(&from, key_of(&from), NAME, &to, None);
        world.set_faults(None);

        let outcome = match &result {
            Ok(_) => {
                next_owner += 1;
                "ok"
            }
            Err(e) if e.is_unreachable() => "unreachable",
            Err(e) => panic!("only typed unreachability may surface: {e}"),
        };

        // Fresh observer, cold cache: full walk with linkage and
        // signature verification end to end. Any dangling or
        // half-written link fails this resolve.
        let observer = rtb.reader(rtb.tb.hosts.client, TRIALS + 2);
        let seen = observer.resolve_naive(NAME).expect("chain intact");
        assert_eq!(
            seen.owner,
            if outcome == "ok" { to } else { from },
            "fully linked on success, fully absent on failure"
        );
        trials.push(Trial {
            offset_ms,
            width_ms,
            outcome,
            depth_after: seen.depth,
            head_after: seen.owner,
        });
    }

    let mut out = String::new();
    let _ = writeln!(out, "chaos-write seed={seed} name={NAME} trials={TRIALS}");
    for (i, t) in trials.iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{i}] window=+{}ms/{}ms outcome={} depth={} head={}",
            t.offset_ms, t.width_ms, t.outcome, t.depth_after, t.head_after
        );
    }
    (trials, out)
}

fn holder(reg: &Registry) -> String {
    reg.resolve_naive(NAME).expect("registered").owner
}

fn key_of(owner: &str) -> u64 {
    let i: usize = owner
        .trim_start_matches("owner")
        .parse()
        .expect("owner name");
    owner_key(i)
}

#[test]
fn crash_mid_transfer_never_leaves_a_half_link() {
    for seed in [1987, 7, 401] {
        let (trials, _) = run(seed);
        // Depth only ever grows by exactly the successful transfers.
        let mut expected_depth = 0;
        for t in &trials {
            if t.outcome == "ok" {
                expected_depth += 1;
            }
            assert_eq!(t.depth_after, expected_depth, "seed {seed}");
            assert_eq!(t.head_after, owner_name(expected_depth as usize));
        }
        // The windows must actually exercise both halves of the
        // invariant somewhere across the seeds' trials; a seed change
        // that stops hitting the write path would silently weaken this
        // test.
        assert!(
            trials.iter().any(|t| t.outcome == "ok"),
            "seed {seed}: no transfer ever succeeded"
        );
    }
}

#[test]
fn some_seed_produces_an_unreachable_write() {
    let hit = [1987u64, 7, 401]
        .iter()
        .flat_map(|&s| run(s).0)
        .any(|t| t.outcome == "unreachable");
    assert!(hit, "no crash window ever landed on the write path");
}

#[test]
fn trials_are_byte_identical_per_seed() {
    for seed in [1987, 7] {
        let (_, first) = run(seed);
        let (_, second) = run(seed);
        assert_eq!(first, second, "seed {seed} must replay byte-identically");
    }
    let (_, a) = run(1987);
    let (_, b) = run(7);
    assert_ne!(a, b, "different seeds explore different windows");
}

//! End-to-end transfer-chain coverage over the replicated testbed:
//! the pinned 64-link collapse behaviour, FindNSM following a re-bound
//! name, replica staleness, and the typed write-path degradation.

use hns_core::cache::CacheMode;
use hns_core::name::{Context, HnsName};
use hns_core::query::QueryClass;
use nsms::harness::{NSM_EXPORT_PROGRAM, NS_BIND, NS_CH};
use nsms::nsm_cache::NsmCacheForm;
use regd::harness::{owner_key, owner_name, RegTestbed};
use regd::{RegClient, RegError, RegServer};
use simnet::faults::FaultPlan;

#[test]
fn a_64_link_chain_collapses_to_one_hop() {
    let rtb = RegTestbed::build(65);
    let reg = &rtb.registry;
    reg.register(&owner_name(0), owner_key(0), "relay", NS_BIND)
        .expect("register");
    for i in 0..64 {
        reg.transfer(
            &owner_name(i),
            owner_key(i),
            "relay",
            &owner_name(i + 1),
            None,
        )
        .expect("transfer");
    }

    // A different frontend with a cold collapse cache: the first
    // resolution walks the whole chain exactly once — the base record,
    // then the 64 links plus the trailing miss fetched in coalesced
    // runs of 16 links per Clearinghouse RPC.
    let reader = rtb.reader(rtb.tb.hosts.client, 65);
    let world = &rtb.tb.world;
    let walks_before = world
        .metrics()
        .snapshot()
        .counter("regd", "chain_walks")
        .unwrap_or(0);
    let before = world.counters().ns_lookups;
    let cold = reader.resolve("relay").expect("cold resolve");
    let cold_reads = world.counters().ns_lookups - before;
    let walks = world
        .metrics()
        .snapshot()
        .counter("regd", "chain_walks")
        .unwrap_or(0);
    assert_eq!(cold.owner, owner_name(64));
    assert_eq!(cold.depth, 64);
    assert!(cold.walked);
    assert_eq!(
        cold_reads, 6,
        "base + 5 coalesced runs (4 full runs of 16 + the short run that finds the miss)"
    );
    assert_eq!(walks - walks_before, 1);

    // Every subsequent resolution is a single-hop collapse hit,
    // however long the chain is.
    for round in 0..3 {
        let before = world.counters().ns_lookups;
        let hits_before = world
            .metrics()
            .snapshot()
            .counter("regd", "collapse_hits")
            .unwrap_or(0);
        let warm = reader.resolve("relay").expect("warm resolve");
        assert_eq!(
            world.counters().ns_lookups - before,
            1,
            "round {round}: one probe"
        );
        assert!(!warm.walked);
        assert_eq!(warm.owner, owner_name(64));
        assert_eq!(
            world.metrics().snapshot().counter("regd", "collapse_hits"),
            Some(hits_before + 1)
        );
    }
    assert_eq!(
        world.metrics().snapshot().counter("regd", "chain_walks"),
        Some(walks_before + 1),
        "no further full walks after the collapse"
    );

    // The collapsed view is exactly what a naive end-to-end walk sees.
    let naive = reader.resolve_naive("relay").expect("naive walk");
    assert_eq!(naive.owner, owner_name(64));
    assert_eq!(naive.depth, 64);
}

#[test]
fn find_nsm_follows_a_rebinding_transfer_transparently() {
    let rtb = RegTestbed::build(2);
    rtb.tb
        .deploy_binding_nsms(rtb.tb.hosts.nsm, NsmCacheForm::Disabled);
    let reg = &rtb.registry;

    // Register `relay` bound to BIND: the rebinder pushes the context
    // into the meta zone via dynamic update.
    reg.register(&owner_name(0), owner_key(0), "relay", NS_BIND)
        .expect("register");
    let hns = rtb.tb.make_hns(rtb.tb.hosts.client, CacheMode::Disabled);
    let qc = QueryClass::hrpc_binding();
    let name =
        HnsName::new(Context::new("relay").expect("ctx"), "printserver:cs:uw").expect("name");
    let before = hns.find_nsm(&qc, &name).expect("find nsm before transfer");
    assert_eq!(
        before.program, NSM_EXPORT_PROGRAM,
        "bound to BIND: the BIND-backed binding NSM serves it"
    );

    // Hand the name to another owner, re-binding it to the
    // Clearinghouse in the same operation.
    reg.transfer(
        &owner_name(0),
        owner_key(0),
        "relay",
        &owner_name(1),
        Some(NS_CH),
    )
    .expect("transfer with rebind");

    // The same FindNSM now lands on the Clearinghouse-backed NSM: the
    // client never sees the chain, only the re-bound meta mapping.
    let after = hns.find_nsm(&qc, &name).expect("find nsm after transfer");
    assert_eq!(after.program.0, NSM_EXPORT_PROGRAM.0 + 1);
    assert_eq!(reg.resolve("relay").expect("resolve").owner, owner_name(1));
}

#[test]
fn replica_reads_are_stale_until_propagation() {
    let rtb = RegTestbed::build(3);
    let reg = &rtb.registry;
    reg.register(&owner_name(0), owner_key(0), "relay", NS_BIND)
        .expect("register");
    reg.transfer(&owner_name(0), owner_key(0), "relay", &owner_name(1), None)
        .expect("transfer");

    // Partition the primary away from a *fresh* reader: its reads fail
    // over to the replica, which has not seen any write yet.
    let reader = rtb.reader(rtb.tb.hosts.client, 2);
    let now = rtb.tb.world.now();
    let mut plan = FaultPlan::new();
    plan.partition(rtb.tb.hosts.client, rtb.tb.hosts.ch, now, None);
    plan.partition(rtb.tb.hosts.agent, rtb.tb.hosts.ch, now, None);
    rtb.tb.world.set_faults(Some(plan));
    assert!(
        matches!(reader.resolve("relay"), Err(RegError::NotRegistered(_))),
        "replica is stale: the registration has not propagated"
    );

    // Propagate, and the failed-over read observes the full chain.
    rtb.cluster.propagate();
    let r = reader.resolve("relay").expect("failed-over resolve");
    assert_eq!(r.owner, owner_name(1));
    assert_eq!(r.depth, 1);

    // Writes never fail over: with the primary still partitioned the
    // transfer degrades to a typed unreachability error.
    let err = reg
        .transfer(&owner_name(1), owner_key(1), "relay", &owner_name(2), None)
        .unwrap_err();
    assert!(err.is_unreachable(), "typed fail-fast, got {err}");

    rtb.tb.world.set_faults(None);
    let healed = reg
        .release(&owner_name(1), owner_key(1), "relay")
        .map(|()| true)
        .expect("write path recovers after heal");
    assert!(healed);
}

#[test]
fn remote_clients_drive_the_frontend_over_the_wire() {
    let rtb = RegTestbed::build(3);
    let binding = regd::deploy(
        &rtb.tb.net,
        rtb.tb.hosts.agent,
        RegServer::new(std::sync::Arc::clone(&rtb.registry)),
    );
    let client = RegClient::new(
        std::sync::Arc::clone(&rtb.tb.net),
        rtb.tb.hosts.client,
        binding,
    );

    client
        .register(&owner_name(0), owner_key(0), "relay", NS_BIND)
        .expect("register over rpc");
    let r = client
        .transfer(
            &owner_name(0),
            owner_key(0),
            "relay",
            &owner_name(1),
            Some(NS_CH),
        )
        .expect("transfer over rpc");
    assert_eq!((r.owner.as_str(), r.depth), (owner_name(1).as_str(), 1));
    assert_eq!(r.service, NS_CH);
    client
        .update(&owner_name(1), owner_key(1), "relay", NS_BIND)
        .expect("update over rpc");
    assert_eq!(client.resolve("relay").expect("resolve").service, NS_BIND);

    // Application errors stay typed enough to act on...
    let err = client
        .transfer(&owner_name(1), owner_key(1), "relay", &owner_name(0), None)
        .unwrap_err();
    assert!(
        matches!(&err, RegError::Rpc(e) if e.to_string().contains("previous holder")),
        "{err}"
    );

    // ...and a partitioned Clearinghouse primary behind the frontend
    // surfaces as typed HostUnreachable at the remote client.
    let mut plan = FaultPlan::new();
    plan.partition(
        rtb.tb.hosts.agent,
        rtb.tb.hosts.ch,
        rtb.tb.world.now(),
        None,
    );
    rtb.tb.world.set_faults(Some(plan));
    let err = client
        .transfer(&owner_name(1), owner_key(1), "relay", &owner_name(2), None)
        .unwrap_err();
    assert!(err.is_unreachable(), "typed through two hops, got {err}");
    rtb.tb.world.set_faults(None);
    client
        .release(&owner_name(1), owner_key(1), "relay")
        .expect("release over rpc");
    assert!(matches!(
        client.resolve("relay").unwrap_err(),
        RegError::Rpc(hrpc::RpcError::NotFound(_))
    ));
}

//! Property-based tests for the transfer chain: random
//! register/transfer/release interleavings against an in-test model.
//!
//! The invariants, per the issue: collapsed resolution always equals
//! the naive chain walk, collapsing is idempotent, and a
//! cycle-creating transfer is rejected.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use clearinghouse::auth::Credentials;
use clearinghouse::db::ChDb;
use clearinghouse::name::ThreePartName;
use clearinghouse::server::{deploy, ChServer};
use hrpc::net::RpcNet;
use regd::registry::Registry;
use regd::RegError;
use simnet::world::World;

const OWNERS: usize = 5;
const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

fn owner(i: usize) -> String {
    format!("o{i}")
}

fn key(i: usize) -> u64 {
    0x1000 + i as u64
}

fn fresh_registry() -> Registry {
    let world = World::paper();
    let ch_host = world.add_host("ch");
    let frontend = world.add_host("frontend");
    let net = RpcNet::new(world);
    let server = ChServer::new("ch", ChDb::new(vec![("cs".into(), "uw".into())]));
    let identity = ThreePartName::parse("regd:cs:uw").expect("name");
    server.register_key(identity.clone(), 7);
    let dep = deploy(&net, ch_host, server);
    let reg = Registry::new(
        net,
        frontend,
        dep.binding,
        Credentials::new(identity, 7),
        "cs",
        "uw",
    );
    for i in 0..OWNERS {
        reg.register_owner(owner(i), key(i));
    }
    reg
}

/// One abstract operation; indices are reduced modulo the pools.
#[derive(Debug, Clone)]
enum Op {
    Register { name: usize, owner: usize },
    Transfer { name: usize, from: usize, to: usize },
    Release { name: usize, owner: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NAMES.len(), 0..OWNERS).prop_map(|(name, owner)| Op::Register { name, owner }),
        (0..NAMES.len(), 0..OWNERS, 0..OWNERS).prop_map(|(name, from, to)| Op::Transfer {
            name,
            from,
            to
        }),
        (0..NAMES.len(), 0..OWNERS).prop_map(|(name, owner)| Op::Release { name, owner }),
    ]
}

/// The model: per registered name, every holder in order (head last).
type Model = HashMap<&'static str, Vec<usize>>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drives a random interleaving through the real registry and a
    /// trivial in-memory model, checking after every operation that
    /// the collapsed resolution agrees with a naive end-to-end chain
    /// walk — and at the end that collapsing is idempotent.
    #[test]
    fn interleavings_match_the_naive_walk(ops in proptest::collection::vec(arb_op(), 1..24)) {
        let reg = fresh_registry();
        let mut model: Model = HashMap::new();

        for op in &ops {
            match *op {
                Op::Register { name, owner: oi } => {
                    let name = NAMES[name];
                    let r = reg.register(&owner(oi), key(oi), name, "BIND");
                    match model.get(name) {
                        Some(_) => prop_assert!(
                            matches!(r, Err(RegError::AlreadyRegistered(_))),
                            "double register: {r:?}"
                        ),
                        None => {
                            prop_assert!(r.is_ok(), "register: {r:?}");
                            model.insert(name, vec![oi]);
                        }
                    }
                }
                Op::Transfer { name, from, to } => {
                    let name = NAMES[name];
                    let r = reg.transfer(&owner(from), key(from), name, &owner(to), None);
                    match model.get_mut(name) {
                        None => prop_assert!(
                            matches!(r, Err(RegError::NotRegistered(_))),
                            "transfer of unregistered: {r:?}"
                        ),
                        Some(holders) if *holders.last().expect("nonempty") != from => {
                            prop_assert!(
                                matches!(r, Err(RegError::NotOwner { .. })),
                                "non-holder transfer: {r:?}"
                            );
                        }
                        Some(holders) if holders.contains(&to) => prop_assert!(
                            matches!(r, Err(RegError::CycleRejected { .. })),
                            "cycle-creating transfer must be rejected: {r:?}"
                        ),
                        Some(holders) => {
                            prop_assert!(r.is_ok(), "transfer: {r:?}");
                            holders.push(to);
                        }
                    }
                }
                Op::Release { name, owner: oi } => {
                    let name = NAMES[name];
                    let r = reg.release(&owner(oi), key(oi), name);
                    match model.get(name) {
                        None => prop_assert!(
                            matches!(r, Err(RegError::NotRegistered(_))),
                            "release of unregistered: {r:?}"
                        ),
                        Some(holders) if *holders.last().expect("nonempty") != oi => {
                            prop_assert!(
                                matches!(r, Err(RegError::NotOwner { .. })),
                                "non-holder release: {r:?}"
                            );
                        }
                        Some(_) => {
                            prop_assert!(r.is_ok(), "release: {r:?}");
                            model.remove(name);
                        }
                    }
                }
            }

            // After every operation: collapsed view == naive walk for
            // every name, registered or not.
            for name in NAMES {
                let fast = reg.resolve(name);
                let naive = reg.resolve_naive(name);
                match model.get(name) {
                    None => {
                        prop_assert!(matches!(fast, Err(RegError::NotRegistered(_))), "{fast:?}");
                        prop_assert!(matches!(naive, Err(RegError::NotRegistered(_))), "{naive:?}");
                    }
                    Some(holders) => {
                        let fast = fast.expect("registered");
                        let naive = naive.expect("registered");
                        prop_assert_eq!(&fast.owner, &naive.owner);
                        prop_assert_eq!(fast.depth, naive.depth);
                        prop_assert_eq!(&fast.service, &naive.service);
                        prop_assert_eq!(&fast.base_owner, &naive.base_owner);
                        prop_assert_eq!(&fast.owner, &owner(*holders.last().expect("nonempty")));
                        prop_assert_eq!(fast.depth as usize, holders.len() - 1);
                    }
                }
            }
        }

        // Collapse is idempotent: once resolved, resolving again is a
        // cache hit with an identical result.
        for name in NAMES {
            if model.contains_key(name) {
                let first = reg.resolve(name).expect("registered");
                let second = reg.resolve(name).expect("registered");
                prop_assert!(!second.walked, "second resolve must be a collapse hit");
                prop_assert_eq!(&first.owner, &second.owner);
                prop_assert_eq!(first.depth, second.depth);
                prop_assert_eq!(&first.service, &second.service);
            }
        }
    }

    /// A frontend that never observed the writes (cold cache) agrees
    /// with the one that made them, and its own collapse is idempotent.
    #[test]
    fn cold_reader_agrees_with_writer(transfers in proptest::collection::vec(0usize..OWNERS, 0..8)) {
        let world = World::paper();
        let ch_host = world.add_host("ch");
        let net = RpcNet::new(Arc::clone(&world));
        let server = ChServer::new("ch", ChDb::new(vec![("cs".into(), "uw".into())]));
        let identity = ThreePartName::parse("regd:cs:uw").expect("name");
        server.register_key(identity.clone(), 7);
        let dep = deploy(&net, ch_host, server);
        let build = |host: &str| {
            let reg = Registry::new(
                Arc::clone(&net),
                world.add_host(host),
                dep.binding,
                Credentials::new(identity.clone(), 7),
                "cs",
                "uw",
            );
            for i in 0..OWNERS {
                reg.register_owner(owner(i), key(i));
            }
            reg
        };
        let writer = build("writer");
        let reader = build("reader");

        writer.register(&owner(0), key(0), "alpha", "BIND").expect("register");
        let mut head = 0;
        let mut held = vec![0];
        for to in transfers {
            if held.contains(&to) {
                continue;
            }
            writer
                .transfer(&owner(head), key(head), "alpha", &owner(to), None)
                .expect("transfer");
            held.push(to);
            head = to;
        }

        let cold = reader.resolve("alpha").expect("cold");
        prop_assert!(cold.walked);
        prop_assert_eq!(&cold.owner, &owner(head));
        prop_assert_eq!(cold.depth as usize, held.len() - 1);
        let warm = reader.resolve("alpha").expect("warm");
        prop_assert!(!warm.walked, "collapse is idempotent across resolves");
        prop_assert_eq!(&warm.owner, &cold.owner);
        let naive = reader.resolve_naive("alpha").expect("naive");
        prop_assert_eq!(&naive.owner, &cold.owner);
        prop_assert_eq!(naive.depth, cold.depth);
    }
}

//! Typed client for the exported registration service.

use std::sync::Arc;

use hrpc::net::RpcNet;
use hrpc::HrpcBinding;
use simnet::topology::HostId;
use wire::Value;

use crate::error::{RegError, RegResult};
use crate::registry::Resolution;
use crate::server::{
    resolution_from_value, PROC_REGISTER, PROC_RELEASE, PROC_RESOLVE, PROC_TRANSFER, PROC_UPDATE,
};

/// A client of a remote registration frontend.
///
/// Transport failures come back as `RegError::Rpc` with the exact
/// server-side error value — a partitioned Clearinghouse primary behind
/// the frontend surfaces here as a typed `HostUnreachable`, not a
/// generic service failure.
#[derive(Clone)]
pub struct RegClient {
    net: Arc<RpcNet>,
    host: HostId,
    server: HrpcBinding,
}

impl RegClient {
    /// Creates a client on `host` dialing the frontend at `server`.
    pub fn new(net: Arc<RpcNet>, host: HostId, server: HrpcBinding) -> RegClient {
        RegClient { net, host, server }
    }

    fn call(&self, proc_id: u32, args: Value) -> RegResult<Value> {
        self.net
            .call(self.host, &self.server, proc_id, &args)
            .map_err(RegError::Rpc)
    }

    fn auth_args(owner: &str, key: u64, name: &str) -> Vec<(&'static str, Value)> {
        vec![
            ("owner", Value::str(owner)),
            ("key", Value::U64(key)),
            ("name", Value::str(name)),
        ]
    }

    /// Registers `name` to `owner`, bound to `service`.
    pub fn register(
        &self,
        owner: &str,
        key: u64,
        name: &str,
        service: &str,
    ) -> RegResult<Resolution> {
        let mut args = Self::auth_args(owner, key, name);
        args.push(("service", Value::str(service)));
        let v = self.call(PROC_REGISTER, Value::record(args))?;
        Ok(resolution_from_value(&v)?)
    }

    /// Re-binds a registered name to a different name service.
    pub fn update(&self, owner: &str, key: u64, name: &str, service: &str) -> RegResult<()> {
        let mut args = Self::auth_args(owner, key, name);
        args.push(("service", Value::str(service)));
        self.call(PROC_UPDATE, Value::record(args))?;
        Ok(())
    }

    /// Transfers `name` from `from` to `to`, optionally re-binding it.
    pub fn transfer(
        &self,
        from: &str,
        key: u64,
        name: &str,
        to: &str,
        rebind: Option<&str>,
    ) -> RegResult<Resolution> {
        let mut args = Self::auth_args(from, key, name);
        args.push(("to", Value::str(to)));
        args.push((
            "rebind",
            Value::Opt(rebind.map(|s| Box::new(Value::str(s)))),
        ));
        let v = self.call(PROC_TRANSFER, Value::record(args))?;
        Ok(resolution_from_value(&v)?)
    }

    /// Releases a registered name.
    pub fn release(&self, owner: &str, key: u64, name: &str) -> RegResult<()> {
        self.call(
            PROC_RELEASE,
            Value::record(Self::auth_args(owner, key, name)),
        )?;
        Ok(())
    }

    /// Resolves a name to its collapsed chain head.
    pub fn resolve(&self, name: &str) -> RegResult<Resolution> {
        let v = self.call(
            PROC_RESOLVE,
            Value::record(vec![("name", Value::str(name))]),
        )?;
        Ok(resolution_from_value(&v)?)
    }
}

impl std::fmt::Debug for RegClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegClient")
            .field("host", &self.host)
            .field("server", &self.server)
            .finish()
    }
}

//! `regd` — the registration frontend.
//!
//! The paper's evolution story in executable form: names are created,
//! re-bound, and handed between administrative domains, while the read
//! path keeps resolving them in one hop. The service owns the write
//! path end to end — `register` / `update` / `transfer` / `release` —
//! with per-name ownership records and **transfer chains**: each
//! transfer appends a link signed by the departing owner; resolution
//! walks the chain once and caches the collapsed head, so arbitrarily
//! long chains resolve in a single Clearinghouse read on every
//! subsequent lookup, with chain-aware invalidation when the chain
//! grows under a different frontend.
//!
//! * [`chain`] — signed links, the naive walk, and the cycle rule.
//! * [`registry`] — storage over the Clearinghouse (writes primary,
//!   reads may fail over) and the collapse cache.
//! * [`server`] / [`client`] — the exported Courier-style service and
//!   its typed client; transport errors stay typed across the wire.
//! * [`harness`] — the replicated write-path testbed experiments and
//!   the write-heavy loadgen mix build on.
//! * [`error`] — [`RegError`], including typed fail-fast
//!   unreachability when the primary is partitioned away.
#![warn(missing_docs)]

pub mod chain;
pub mod client;
pub mod error;
pub mod harness;
pub mod registry;
pub mod server;

pub use chain::{sign_link, TransferLink};
pub use client::RegClient;
pub use error::{RegError, RegResult};
pub use harness::{owner_key, owner_name, RegTestbed};
pub use registry::{Registry, Resolution, PROP_REG_LINK, PROP_REG_RECORD};
pub use server::{deploy, RegServer, REG_PROGRAM};

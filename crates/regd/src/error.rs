//! Registration-service errors.

use std::fmt;

use hrpc::RpcError;

/// Failures in the registration frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegError {
    /// The name is not registered.
    NotRegistered(String),
    /// The name is already registered.
    AlreadyRegistered(String),
    /// The caller is not the current holder of the name.
    NotOwner {
        /// The name being operated on.
        name: String,
        /// Who claimed ownership.
        claimed: String,
        /// Who actually holds the name.
        actual: String,
    },
    /// The owner is not known to the registry (no key on file).
    UnknownOwner(String),
    /// An owner key or a stored link signature failed verification.
    BadSignature(String),
    /// The transfer would hand the name back to a previous holder,
    /// creating a cycle in the chain.
    CycleRejected {
        /// The name being transferred.
        name: String,
        /// The previous holder the transfer targeted.
        owner: String,
    },
    /// A stored ownership or link record was malformed.
    BadRecord(String),
    /// The underlying Clearinghouse / RPC layer failed. Writes surface
    /// `RpcError::HostUnreachable` here when the primary is partitioned
    /// away — typed fail-fast, never silent loss.
    Rpc(RpcError),
}

impl RegError {
    /// True when the underlying transport gave up reaching a host
    /// (crashed or partitioned under a fault plan).
    pub fn is_unreachable(&self) -> bool {
        matches!(self, RegError::Rpc(e) if e.is_unreachable())
    }
}

impl fmt::Display for RegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegError::NotRegistered(n) => write!(f, "not registered: {n}"),
            RegError::AlreadyRegistered(n) => write!(f, "already registered: {n}"),
            RegError::NotOwner {
                name,
                claimed,
                actual,
            } => write!(f, "{claimed} does not hold {name} (held by {actual})"),
            RegError::UnknownOwner(o) => write!(f, "unknown owner: {o}"),
            RegError::BadSignature(what) => write!(f, "bad signature: {what}"),
            RegError::CycleRejected { name, owner } => {
                write!(f, "transfer of {name} back to previous holder {owner}")
            }
            RegError::BadRecord(msg) => write!(f, "bad registration record: {msg}"),
            RegError::Rpc(e) => write!(f, "rpc: {e}"),
        }
    }
}

impl std::error::Error for RegError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegError::Rpc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RpcError> for RegError {
    fn from(e: RpcError) -> Self {
        RegError::Rpc(e)
    }
}

impl From<wire::WireError> for RegError {
    fn from(e: wire::WireError) -> Self {
        RegError::Rpc(RpcError::Wire(e))
    }
}

/// Maps a registry error onto the RPC error space for the wire. The
/// transport-level variant passes through unchanged so a caller of the
/// exported service still sees a typed `HostUnreachable` when the
/// registry's own write leg is partitioned away.
impl From<RegError> for RpcError {
    fn from(e: RegError) -> Self {
        match e {
            RegError::Rpc(inner) => inner,
            RegError::NotRegistered(n) => RpcError::NotFound(n),
            other => RpcError::Service(other.to_string()),
        }
    }
}

/// Result alias for registration operations.
pub type RegResult<T> = Result<T, RegError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        for (e, needle) in [
            (RegError::NotRegistered("a".into()), "not registered"),
            (RegError::AlreadyRegistered("a".into()), "already"),
            (
                RegError::NotOwner {
                    name: "a".into(),
                    claimed: "x".into(),
                    actual: "y".into(),
                },
                "does not hold",
            ),
            (RegError::UnknownOwner("o".into()), "unknown owner"),
            (RegError::BadSignature("link 3".into()), "signature"),
            (
                RegError::CycleRejected {
                    name: "a".into(),
                    owner: "x".into(),
                },
                "previous holder",
            ),
            (RegError::BadRecord("m".into()), "record"),
            (RegError::Rpc(RpcError::BadProcedure(1)), "rpc"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn unreachable_is_typed_through_the_wrapper() {
        let e = RegError::Rpc(RpcError::HostUnreachable {
            host: simnet::topology::HostId(3),
            attempts: 4,
        });
        assert!(e.is_unreachable());
        assert!(!RegError::NotRegistered("a".into()).is_unreachable());
        // And survives the round trip onto the wire error space.
        let rpc: RpcError = e.into();
        assert!(rpc.is_unreachable());
    }

    #[test]
    fn not_registered_maps_to_not_found() {
        let rpc: RpcError = RegError::NotRegistered("a".into()).into();
        assert!(matches!(rpc, RpcError::NotFound(_)));
        assert!(std::error::Error::source(&RegError::Rpc(RpcError::BadProcedure(1))).is_some());
    }
}

//! The exported registration service.
//!
//! Wraps a [`Registry`] as an [`RpcService`] so remote clients drive
//! the write path over the simulated wire. Errors cross the wire via
//! `From<RegError> for RpcError`: the transport variant passes through
//! unchanged, so a caller still observes a typed `HostUnreachable` when
//! the registry's own Clearinghouse write leg is partitioned away.

use std::sync::Arc;

use hrpc::binding::ProgramId;
use hrpc::net::RpcNet;
use hrpc::server::{CallCtx, RpcService};
use hrpc::{HrpcBinding, RpcError, RpcResult};
use simnet::topology::{HostId, NetAddr};
use wire::Value;

use crate::registry::{Registry, Resolution};

/// Program number of the registration service.
pub const REG_PROGRAM: ProgramId = ProgramId(400_001);

/// Registers a name to an owner.
pub const PROC_REGISTER: u32 = 1;
/// Re-binds a registered name to a different name service.
pub const PROC_UPDATE: u32 = 2;
/// Appends a signed transfer link (optionally re-binding).
pub const PROC_TRANSFER: u32 = 3;
/// Releases a registered name.
pub const PROC_RELEASE: u32 = 4;
/// Resolves a name to its collapsed chain head.
pub const PROC_RESOLVE: u32 = 5;

fn resolution_value(r: &Resolution) -> Value {
    Value::record(vec![
        ("name", Value::str(&*r.name)),
        ("owner", Value::str(&*r.owner)),
        ("base_owner", Value::str(&*r.base_owner)),
        ("service", Value::str(&*r.service)),
        ("depth", Value::U32(r.depth)),
        ("walked", Value::Bool(r.walked)),
    ])
}

/// Decodes a resolution record from the wire.
pub fn resolution_from_value(v: &Value) -> RpcResult<Resolution> {
    Ok(Resolution {
        name: v.str_field("name")?.to_string(),
        owner: v.str_field("owner")?.to_string(),
        base_owner: v.str_field("base_owner")?.to_string(),
        service: v.str_field("service")?.to_string(),
        depth: v.u32_field("depth")?,
        walked: v.field("walked")?.as_bool()?,
    })
}

/// The registration service: a [`Registry`] behind [`REG_PROGRAM`].
pub struct RegServer {
    registry: Arc<Registry>,
}

impl RegServer {
    /// Wraps a registry for export.
    pub fn new(registry: Arc<Registry>) -> Arc<RegServer> {
        Arc::new(RegServer { registry })
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// Exports `server` on `host` and returns the binding clients dial.
pub fn deploy(net: &RpcNet, host: HostId, server: Arc<RegServer>) -> HrpcBinding {
    let port = net.export(host, REG_PROGRAM, server as Arc<dyn RpcService>);
    HrpcBinding {
        host,
        addr: NetAddr::of(host),
        program: REG_PROGRAM,
        port,
        components: hrpc::ComponentSet::courier(),
    }
}

impl RpcService for RegServer {
    fn service_name(&self) -> &str {
        "regd"
    }

    fn dispatch(&self, _ctx: &CallCtx<'_>, proc_id: u32, args: &Value) -> RpcResult<Value> {
        let owner = || args.str_field("owner");
        let key = || args.field("key").and_then(Value::as_u64);
        let name = || args.str_field("name");
        match proc_id {
            PROC_REGISTER => {
                let r = self.registry.register(
                    owner()?,
                    key()?,
                    name()?,
                    args.str_field("service")?,
                )?;
                Ok(resolution_value(&r))
            }
            PROC_UPDATE => {
                self.registry
                    .update(owner()?, key()?, name()?, args.str_field("service")?)?;
                Ok(Value::Void)
            }
            PROC_TRANSFER => {
                let rebind = match args.field("rebind")? {
                    Value::Opt(inner) => inner.as_deref().map(Value::as_str).transpose()?,
                    other => {
                        return Err(RpcError::Service(format!(
                            "rebind must be opt, got {}",
                            other.kind()
                        )))
                    }
                };
                let r = self.registry.transfer(
                    owner()?,
                    key()?,
                    name()?,
                    args.str_field("to")?,
                    rebind,
                )?;
                Ok(resolution_value(&r))
            }
            PROC_RELEASE => {
                self.registry.release(owner()?, key()?, name()?)?;
                Ok(Value::Void)
            }
            PROC_RESOLVE => Ok(resolution_value(&self.registry.resolve(name()?)?)),
            other => Err(RpcError::BadProcedure(other)),
        }
    }
}

impl std::fmt::Debug for RegServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegServer")
            .field("registry", &self.registry)
            .finish()
    }
}

//! The transfer chain: signed ownership hand-off links.
//!
//! Every registered name carries a base ownership record (the original
//! owner, written once at registration) plus zero or more *links*, one
//! per transfer. Link `seq` records that the holder after `seq - 1`
//! hand-offs passed the name on: `{seq, from, to, sig}`, where `sig` is
//! computed over the link contents with the *from* owner's key — only
//! the current holder can extend the chain. Resolution starts at the
//! base record and follows links `1, 2, 3, …` until one is missing; the
//! last link's `to` is the current holder.
//!
//! This module is pure data: signing, wire encoding, the naive walk
//! over an in-memory link list, and the cycle rule. Storage and RPC
//! live in [`crate::registry`].

use wire::Value;

use crate::error::{RegError, RegResult};

/// One transfer: the `seq`-th hand-off of a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferLink {
    /// Position in the chain, starting at 1 for the first transfer.
    pub seq: u32,
    /// The holder giving the name up (must match the chain head at
    /// `seq - 1`).
    pub from: String,
    /// The new holder.
    pub to: String,
    /// `sign_link` over the other three fields with `from`'s key.
    pub sig: u64,
}

/// Signs a link: an FNV-1a fold over the link's identifying fields and
/// the owner's key. Not cryptography — the simulation's stand-in for
/// the Clearinghouse's authenticated write path, strong enough that a
/// link written with the wrong key is detected on every walk.
pub fn sign_link(name: &str, seq: u32, from: &str, to: &str, key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(name.as_bytes());
    eat(&seq.to_le_bytes());
    eat(from.as_bytes());
    eat(&[0]);
    eat(to.as_bytes());
    eat(&key.to_le_bytes());
    h
}

impl TransferLink {
    /// Builds a link signed with the departing owner's key.
    pub fn signed(name: &str, seq: u32, from: &str, to: &str, key: u64) -> TransferLink {
        TransferLink {
            seq,
            from: from.to_string(),
            to: to.to_string(),
            sig: sign_link(name, seq, from, to, key),
        }
    }

    /// Checks the signature against the departing owner's key.
    pub fn verify(&self, name: &str, key: u64) -> bool {
        self.sig == sign_link(name, self.seq, &self.from, &self.to, key)
    }

    /// Encodes for the Clearinghouse property value.
    pub fn to_value(&self) -> Value {
        Value::record(vec![
            ("seq", Value::U32(self.seq)),
            ("from", Value::str(&*self.from)),
            ("to", Value::str(&*self.to)),
            ("sig", Value::U64(self.sig)),
        ])
    }

    /// Decodes from a Clearinghouse property value.
    pub fn from_value(v: &Value) -> RegResult<TransferLink> {
        let bad = |e: wire::WireError| RegError::BadRecord(format!("link: {e}"));
        Ok(TransferLink {
            seq: v.u32_field("seq").map_err(bad)?,
            from: v.str_field("from").map_err(bad)?.to_string(),
            to: v.str_field("to").map_err(bad)?.to_string(),
            sig: v.field("sig").and_then(Value::as_u64).map_err(bad)?,
        })
    }
}

/// Every holder a chain has had, in order: the base owner, then each
/// link's `to`.
pub fn holders<'a>(base_owner: &'a str, links: &'a [TransferLink]) -> Vec<&'a str> {
    let mut out = Vec::with_capacity(links.len() + 1);
    out.push(base_owner);
    out.extend(links.iter().map(|l| l.to.as_str()));
    out
}

/// The current holder: the last link's `to`, or the base owner for an
/// untransferred name.
pub fn head_owner<'a>(base_owner: &'a str, links: &'a [TransferLink]) -> &'a str {
    links.last().map_or(base_owner, |l| l.to.as_str())
}

/// Checks chain integrity: contiguous `seq` from 1, each link's `from`
/// equal to the head before it. (Signature checks need the key table
/// and happen in the registry.)
pub fn check_linkage(name: &str, base_owner: &str, links: &[TransferLink]) -> RegResult<()> {
    let mut head = base_owner;
    for (i, link) in links.iter().enumerate() {
        let want_seq = i as u32 + 1;
        if link.seq != want_seq {
            return Err(RegError::BadRecord(format!(
                "{name}: link {} carries seq {}",
                want_seq, link.seq
            )));
        }
        if link.from != head {
            return Err(RegError::BadRecord(format!(
                "{name}: link {} from {} but head was {head}",
                link.seq, link.from
            )));
        }
        head = &link.to;
    }
    Ok(())
}

/// The cycle rule: a transfer may never hand a name back to *any*
/// previous holder (the base owner or any link's endpoint) — chains
/// only ever grow forward through fresh owners, so the collapsed head
/// is always well-defined.
pub fn would_cycle(base_owner: &str, links: &[TransferLink], to: &str) -> bool {
    holders(base_owner, links).contains(&to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Vec<TransferLink> {
        vec![
            TransferLink::signed("n", 1, "alice", "bob", 11),
            TransferLink::signed("n", 2, "bob", "carol", 22),
        ]
    }

    #[test]
    fn sign_and_verify() {
        let l = TransferLink::signed("n", 1, "alice", "bob", 11);
        assert!(l.verify("n", 11));
        assert!(!l.verify("n", 12), "wrong key");
        assert!(!l.verify("m", 11), "wrong name");
        let mut tampered = l.clone();
        tampered.to = "mallory".into();
        assert!(!tampered.verify("n", 11), "tampered target");
    }

    #[test]
    fn signature_separates_fields() {
        // "ab" + "c" must not collide with "a" + "bc": the separator
        // byte between from and to keeps field boundaries in the hash.
        assert_ne!(
            sign_link("n", 1, "ab", "c", 7),
            sign_link("n", 1, "a", "bc", 7)
        );
    }

    #[test]
    fn wire_roundtrip() {
        let l = TransferLink::signed("n", 3, "x", "y", 9);
        assert_eq!(TransferLink::from_value(&l.to_value()).expect("decode"), l);
        assert!(TransferLink::from_value(&Value::U32(1)).is_err());
    }

    #[test]
    fn walk_helpers() {
        let links = chain();
        assert_eq!(holders("alice", &links), vec!["alice", "bob", "carol"]);
        assert_eq!(head_owner("alice", &links), "carol");
        assert_eq!(head_owner("alice", &[]), "alice");
        check_linkage("n", "alice", &links).expect("well linked");
    }

    #[test]
    fn linkage_violations_detected() {
        let mut links = chain();
        links[1].seq = 5;
        assert!(check_linkage("n", "alice", &links).is_err());
        let mut links = chain();
        links[1].from = "mallory".into();
        assert!(check_linkage("n", "alice", &links).is_err());
    }

    #[test]
    fn cycle_rule_covers_every_previous_holder() {
        let links = chain();
        for prev in ["alice", "bob", "carol"] {
            assert!(would_cycle("alice", &links, prev), "{prev}");
        }
        assert!(!would_cycle("alice", &links, "dave"));
    }
}

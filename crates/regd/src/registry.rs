//! The registry: ownership records and transfer chains stored in the
//! Clearinghouse, with collapsed-head resolution.
//!
//! # Storage layout
//!
//! A registered name `n` in domain `d:o` occupies one *base* entry
//! `reg--n:d:o` whose [`PROP_REG_RECORD`] item holds `{owner, service,
//! sig}` — the original owner (immutable for the life of the
//! registration), the name service the name is currently bound to, and
//! the registration signature. Each transfer appends one *link* entry
//! `reg--n--t<seq>:d:o` whose [`PROP_REG_LINK`] item holds a
//! [`TransferLink`] signed by the departing owner.
//!
//! Every chain mutation is **one** Clearinghouse `set_item` RPC: the
//! link write for a transfer, the whole-record rewrite for a re-bind.
//! A crash or partition mid-operation therefore leaves the chain either
//! fully linked or fully absent — there is no multi-write window in
//! which a dangling half-link can exist (the chaos suite pins this).
//!
//! # Resolution and the collapse cache
//!
//! A cold resolve reads the base record and walks the chain in
//! coalesced runs of [`LINK_BATCH`] links per Clearinghouse RPC —
//! `1 + ceil((depth + 1) / LINK_BATCH)` reads for a chain of `depth`
//! links (the short final run confirms the head). The result is cached
//! as the *collapsed head*. A warm resolve issues exactly
//! **one** read: it probes link `depth + 1`. A miss revalidates the
//! cached head in a single hop regardless of chain length; a hit means
//! some other frontend extended the chain, and the resolver walks
//! forward incrementally from there (chain-aware invalidation).
//! Transfers through this registry extend the cache in place, so the
//! probe stays a miss on the hot path.
//!
//! Reads ride [`ChClient`]'s replica failover; writes stay primary and
//! surface `RpcError::HostUnreachable` typed when the primary is
//! partitioned away — degraded write availability is loud, never
//! silent loss. As with every loosely-consistent Clearinghouse read, a
//! failed-over resolve may observe pre-propagation state.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use simnet::topology::HostId;
use simnet::world::World;

use clearinghouse::auth::Credentials;
use clearinghouse::client::ChClient;
use clearinghouse::name::ThreePartName;
use clearinghouse::property::PropertyId;
use hns_core::name::{Context, NameMapping};
use hns_core::service::Hns;
use hrpc::error::RpcError;
use hrpc::net::RpcNet;
use hrpc::HrpcBinding;
use simnet::obs::{LazyCounter, LazyHistogram};
use wire::Value;

use crate::chain::{self, TransferLink};
use crate::error::{RegError, RegResult};

/// Well-known property: a name's base ownership record.
pub const PROP_REG_RECORD: PropertyId = PropertyId(70);
/// Well-known property: one transfer-chain link.
pub const PROP_REG_LINK: PropertyId = PropertyId(71);

/// Longest accepted registered-name label (the Clearinghouse caps
/// object parts at 64 bytes and we prepend `reg--`/`--t<seq>`).
pub const MAX_NAME_LEN: usize = 40;

/// Chain links requested per coalesced Clearinghouse read during a
/// walk ([`Registry::resolve`] cold path and chain extensions).
const LINK_BATCH: u32 = 16;

/// The base ownership record stored at `reg--<name>`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BaseRecord {
    owner: String,
    service: String,
    sig: u64,
}

impl BaseRecord {
    fn to_value(&self) -> Value {
        Value::record(vec![
            ("owner", Value::str(&*self.owner)),
            ("service", Value::str(&*self.service)),
            ("sig", Value::U64(self.sig)),
        ])
    }

    fn from_value(v: &Value) -> RegResult<BaseRecord> {
        let bad = |e: wire::WireError| RegError::BadRecord(format!("base record: {e}"));
        Ok(BaseRecord {
            owner: v.str_field("owner").map_err(bad)?.to_string(),
            service: v.str_field("service").map_err(bad)?.to_string(),
            sig: v.field("sig").and_then(Value::as_u64).map_err(bad)?,
        })
    }
}

/// A cached collapsed head: everything a warm resolve needs plus the
/// holder list the cycle rule checks.
#[derive(Debug, Clone)]
struct CollapsedHead {
    base_owner: String,
    base_sig: u64,
    service: String,
    owner: String,
    depth: u32,
    holders: Vec<String>,
}

/// What a name resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The registered name.
    pub name: String,
    /// The current holder (the collapsed chain head).
    pub owner: String,
    /// The original owner from the base record.
    pub base_owner: String,
    /// Name service the name is bound to.
    pub service: String,
    /// Number of links in the chain.
    pub depth: u32,
    /// True when this resolution walked the chain (cold or extended);
    /// false for a single-hop collapse-cache hit.
    pub walked: bool,
}

#[derive(Default)]
struct RegMetrics {
    registers: LazyCounter,
    updates: LazyCounter,
    transfers: LazyCounter,
    releases: LazyCounter,
    resolves: LazyCounter,
    chain_walks: LazyCounter,
    chain_extends: LazyCounter,
    collapse_hits: LazyCounter,
    cycle_rejections: LazyCounter,
    write_unreachable: LazyCounter,
    link_gc: LazyCounter,
    chain_depth: LazyHistogram,
}

/// The registration frontend. One instance owns the write path for its
/// domain; read-only instances (resolvers) may point at the same
/// Clearinghouse data.
pub struct Registry {
    ch: ChClient,
    world: Arc<World>,
    domain: String,
    organization: String,
    owners: RwLock<HashMap<String, u64>>,
    collapse: RwLock<HashMap<String, CollapsedHead>>,
    rebinder: Option<Arc<Hns>>,
    metrics: RegMetrics,
}

impl Registry {
    /// Creates a registry on `host` writing to the Clearinghouse at
    /// `primary`, managing names in `domain:organization`.
    pub fn new(
        net: Arc<RpcNet>,
        host: HostId,
        primary: HrpcBinding,
        creds: Credentials,
        domain: impl Into<String>,
        organization: impl Into<String>,
    ) -> Registry {
        let world = Arc::clone(net.world());
        Registry {
            ch: ChClient::new(net, host, primary, creds),
            world,
            domain: domain.into(),
            organization: organization.into(),
            owners: RwLock::new(HashMap::new()),
            collapse: RwLock::new(HashMap::new()),
            rebinder: None,
            metrics: RegMetrics::default(),
        }
    }

    /// Installs Clearinghouse replica bindings that *reads* fail over
    /// to; writes always stay on the primary.
    pub fn set_read_fallbacks(&mut self, fallbacks: Vec<HrpcBinding>) {
        self.ch.set_read_fallbacks(fallbacks);
    }

    /// Installs the HNS instance through which registrations and
    /// re-binds propagate into the meta zone (bindns dynamic update):
    /// each registered name becomes a context mapped to its bound name
    /// service, so a `FindNSM` after a re-binding transfer follows the
    /// chain transparently.
    pub fn set_rebinder(&mut self, hns: Option<Arc<Hns>>) {
        self.rebinder = hns;
    }

    /// Registers an owner identity and its signing key.
    pub fn register_owner(&self, owner: impl Into<String>, key: u64) {
        self.owners.write().insert(owner.into(), key);
    }

    /// Number of names currently held in the collapse cache.
    pub fn collapsed_entries(&self) -> usize {
        self.collapse.read().len()
    }

    fn bump(&self, c: &LazyCounter, name: &'static str) {
        c.get(self.world.metrics(), "regd", name).inc();
    }

    fn key_of(&self, owner: &str) -> RegResult<u64> {
        self.owners
            .read()
            .get(owner)
            .copied()
            .ok_or_else(|| RegError::UnknownOwner(owner.to_string()))
    }

    fn authorize(&self, owner: &str, key: u64) -> RegResult<u64> {
        let on_file = self.key_of(owner)?;
        if on_file != key {
            return Err(RegError::BadSignature(format!("key for {owner}")));
        }
        Ok(key)
    }

    fn check_name(name: &str) -> RegResult<()> {
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(RegError::BadRecord(format!(
                "name `{name}` must be 1..={MAX_NAME_LEN} chars"
            )));
        }
        if name.contains("--") || name.contains(':') {
            return Err(RegError::BadRecord(format!(
                "name `{name}` may not contain `--` or `:`"
            )));
        }
        Ok(())
    }

    fn base_tpn(&self, name: &str) -> RegResult<ThreePartName> {
        ThreePartName::new(&format!("reg--{name}"), &self.domain, &self.organization)
            .map_err(|e| RegError::BadRecord(e.to_string()))
    }

    fn link_tpn(&self, name: &str, seq: u32) -> RegResult<ThreePartName> {
        ThreePartName::new(
            &format!("reg--{name}--t{seq}"),
            &self.domain,
            &self.organization,
        )
        .map_err(|e| RegError::BadRecord(e.to_string()))
    }

    /// Runs a Clearinghouse *write*, counting typed unreachability.
    fn write<T>(&self, r: Result<T, RpcError>) -> RegResult<T> {
        r.map_err(|e| {
            if e.is_unreachable() {
                self.bump(&self.metrics.write_unreachable, "write_unreachable");
            }
            RegError::Rpc(e)
        })
    }

    fn read_base(&self, name: &str) -> RegResult<Option<BaseRecord>> {
        match self.ch.lookup_item(&self.base_tpn(name)?, PROP_REG_RECORD) {
            Ok(v) => Ok(Some(BaseRecord::from_value(&v)?)),
            Err(RpcError::NotFound(_)) => Ok(None),
            Err(e) => Err(RegError::Rpc(e)),
        }
    }

    fn read_link(&self, name: &str, seq: u32) -> RegResult<Option<TransferLink>> {
        match self
            .ch
            .lookup_item(&self.link_tpn(name, seq)?, PROP_REG_LINK)
        {
            Ok(v) => Ok(Some(TransferLink::from_value(&v)?)),
            Err(RpcError::NotFound(_)) => Ok(None),
            Err(e) => Err(RegError::Rpc(e)),
        }
    }

    /// Verifies a link signature when the departing owner's key is on
    /// file; resolvers without the key table trust the authenticated
    /// Clearinghouse write path instead.
    fn verify_link(&self, name: &str, link: &TransferLink) -> RegResult<()> {
        if let Some(&key) = self.owners.read().get(&link.from) {
            if !link.verify(name, key) {
                return Err(RegError::BadSignature(format!("{name} link {}", link.seq)));
            }
        }
        Ok(())
    }

    /// Walks links `from_seq, from_seq + 1, …` until one is missing,
    /// fetching [`LINK_BATCH`] links per coalesced Clearinghouse read:
    /// a cold walk over a 64-link chain is five run RPCs, not
    /// sixty-five per-link lookups. A run that comes back short ends
    /// the walk — the server stopped at the first missing link.
    fn walk_links(&self, name: &str, from_seq: u32, into: &mut Vec<TransferLink>) -> RegResult<()> {
        let mut seq = from_seq;
        loop {
            let run: Vec<ThreePartName> = (seq..seq + LINK_BATCH)
                .map(|s| self.link_tpn(name, s))
                .collect::<RegResult<_>>()?;
            let values = self
                .ch
                .lookup_item_run(&run, PROP_REG_LINK)
                .map_err(RegError::Rpc)?;
            let got = values.len() as u32;
            for v in &values {
                let link = TransferLink::from_value(v)?;
                self.verify_link(name, &link)?;
                into.push(link);
            }
            if got < LINK_BATCH {
                return Ok(());
            }
            seq += LINK_BATCH;
        }
    }

    fn cache_insert(&self, name: &str, head: CollapsedHead) {
        self.collapse.write().insert(name.to_string(), head);
    }

    fn resolution(&self, name: &str, head: &CollapsedHead, walked: bool) -> Resolution {
        Resolution {
            name: name.to_string(),
            owner: head.owner.clone(),
            base_owner: head.base_owner.clone(),
            service: head.service.clone(),
            depth: head.depth,
            walked,
        }
    }

    /// Full chain walk from the base record, bypassing the collapse
    /// cache entirely (and leaving it untouched). Tests and the chaos
    /// suite use this as the ground truth a collapsed resolution must
    /// agree with.
    pub fn resolve_naive(&self, name: &str) -> RegResult<Resolution> {
        Self::check_name(name)?;
        let base = self
            .read_base(name)?
            .ok_or_else(|| RegError::NotRegistered(name.to_string()))?;
        let mut links = Vec::new();
        self.walk_links(name, 1, &mut links)?;
        chain::check_linkage(name, &base.owner, &links)?;
        Ok(Resolution {
            name: name.to_string(),
            owner: chain::head_owner(&base.owner, &links).to_string(),
            base_owner: base.owner,
            service: base.service,
            depth: links.len() as u32,
            walked: true,
        })
    }

    /// Resolves a name to its current holder and binding.
    ///
    /// Cold: one base read plus one coalesced run read per
    /// [`LINK_BATCH`] links (counted in `regd/chain_walks`). Warm:
    /// exactly one Clearinghouse read — the probe of link `depth + 1` —
    /// however long the chain is (`regd/collapse_hits`). A probe that
    /// *hits* means the chain grew under us; the walk resumes from
    /// there (`regd/chain_extends`).
    pub fn resolve(&self, name: &str) -> RegResult<Resolution> {
        Self::check_name(name)?;
        self.bump(&self.metrics.resolves, "resolves");
        let cached = self.collapse.read().get(name).cloned();
        if let Some(mut head) = cached {
            return match self.read_link(name, head.depth + 1)? {
                None => {
                    self.bump(&self.metrics.collapse_hits, "collapse_hits");
                    Ok(self.resolution(name, &head, false))
                }
                Some(link) => {
                    // Another frontend extended the chain: walk forward
                    // from the probe, never from the base.
                    self.bump(&self.metrics.chain_extends, "chain_extends");
                    self.verify_link(name, &link)?;
                    let mut fresh = vec![link];
                    self.walk_links(name, head.depth + 2, &mut fresh)?;
                    for link in &fresh {
                        if link.from != head.owner {
                            return Err(RegError::BadRecord(format!(
                                "{name}: link {} from {} but head was {}",
                                link.seq, link.from, head.owner
                            )));
                        }
                        head.owner = link.to.clone();
                        head.holders.push(link.to.clone());
                        head.depth = link.seq;
                    }
                    self.cache_insert(name, head.clone());
                    Ok(self.resolution(name, &head, true))
                }
            };
        }
        self.bump(&self.metrics.chain_walks, "chain_walks");
        let base = self
            .read_base(name)?
            .ok_or_else(|| RegError::NotRegistered(name.to_string()))?;
        let mut links = Vec::new();
        self.walk_links(name, 1, &mut links)?;
        chain::check_linkage(name, &base.owner, &links)?;
        let head = CollapsedHead {
            owner: chain::head_owner(&base.owner, &links).to_string(),
            holders: chain::holders(&base.owner, &links)
                .into_iter()
                .map(String::from)
                .collect(),
            depth: links.len() as u32,
            base_owner: base.owner,
            base_sig: base.sig,
            service: base.service,
        };
        self.cache_insert(name, head.clone());
        Ok(self.resolution(name, &head, true))
    }

    /// Propagates a (re-)binding into the HNS meta zone via dynamic
    /// update, when a rebinder is installed.
    fn rebind_zone(&self, name: &str, service: &str) -> RegResult<()> {
        let Some(hns) = &self.rebinder else {
            return Ok(());
        };
        let ctx = Context::new(name).map_err(|e| RegError::BadRecord(e.to_string()))?;
        hns.register_context(&ctx, service, &NameMapping::Identity)
            .map_err(|e| match e {
                hns_core::error::HnsError::Rpc(rpc) => {
                    if rpc.is_unreachable() {
                        self.bump(&self.metrics.write_unreachable, "write_unreachable");
                    }
                    RegError::Rpc(rpc)
                }
                other => RegError::BadRecord(other.to_string()),
            })
    }

    /// Registers `name` to `owner`, bound to `service`.
    ///
    /// The only mutating Clearinghouse RPC is the single base-record
    /// write; the existence probe and orphan-link sweep before it are
    /// reads (plus deletes of leftovers from a crashed release, counted
    /// in `regd/link_gc` — resolution never sees those orphans because
    /// it starts at the base record, which is deleted first).
    pub fn register(
        &self,
        owner: &str,
        key: u64,
        name: &str,
        service: &str,
    ) -> RegResult<Resolution> {
        Self::check_name(name)?;
        let key = self.authorize(owner, key)?;
        if self.read_base(name)?.is_some() {
            return Err(RegError::AlreadyRegistered(name.to_string()));
        }
        let mut seq = 1;
        while self.read_link(name, seq)?.is_some() {
            self.write(self.ch.delete(&self.link_tpn(name, seq)?))?;
            self.bump(&self.metrics.link_gc, "link_gc");
            seq += 1;
        }
        let record = BaseRecord {
            owner: owner.to_string(),
            service: service.to_string(),
            sig: chain::sign_link(name, 0, owner, owner, key),
        };
        self.write(
            self.ch
                .set_item(&self.base_tpn(name)?, PROP_REG_RECORD, record.to_value()),
        )?;
        self.bump(&self.metrics.registers, "registers");
        let head = CollapsedHead {
            base_owner: record.owner.clone(),
            base_sig: record.sig,
            service: record.service.clone(),
            owner: record.owner.clone(),
            depth: 0,
            holders: vec![record.owner.clone()],
        };
        self.cache_insert(name, head.clone());
        self.rebind_zone(name, service)?;
        Ok(self.resolution(name, &head, false))
    }

    /// Re-binds a registered name to a different name service. The
    /// caller must be the current holder. One Clearinghouse write: the
    /// whole base record is rewritten with the new binding.
    pub fn update(&self, owner: &str, key: u64, name: &str, service: &str) -> RegResult<()> {
        self.authorize(owner, key)?;
        let head = self.resolve(name)?;
        if head.owner != owner {
            return Err(RegError::NotOwner {
                name: name.to_string(),
                claimed: owner.to_string(),
                actual: head.owner,
            });
        }
        self.write_binding(name, service)?;
        self.bump(&self.metrics.updates, "updates");
        self.rebind_zone(name, service)
    }

    fn write_binding(&self, name: &str, service: &str) -> RegResult<()> {
        let (base_owner, base_sig) = {
            let cache = self.collapse.read();
            let head = cache
                .get(name)
                .ok_or_else(|| RegError::NotRegistered(name.to_string()))?;
            (head.base_owner.clone(), head.base_sig)
        };
        let record = BaseRecord {
            owner: base_owner,
            service: service.to_string(),
            sig: base_sig,
        };
        self.write(
            self.ch
                .set_item(&self.base_tpn(name)?, PROP_REG_RECORD, record.to_value()),
        )?;
        if let Some(head) = self.collapse.write().get_mut(name) {
            head.service = service.to_string();
        }
        Ok(())
    }

    /// Transfers `name` from its current holder to `to`, appending one
    /// signed link. `rebind` optionally re-binds the name to a new name
    /// service in the same operation (the common shape when a name
    /// crosses administrative domains).
    ///
    /// The link write is the single chain-mutating RPC: a crash or
    /// partition leaves the chain fully linked (link durable) or fully
    /// absent (typed `HostUnreachable`, nothing written) — never a
    /// dangling half-link.
    pub fn transfer(
        &self,
        from: &str,
        key: u64,
        name: &str,
        to: &str,
        rebind: Option<&str>,
    ) -> RegResult<Resolution> {
        let key = self.authorize(from, key)?;
        self.key_of(to)?;
        let head = self.resolve(name)?;
        if head.owner != from {
            return Err(RegError::NotOwner {
                name: name.to_string(),
                claimed: from.to_string(),
                actual: head.owner,
            });
        }
        {
            let cache = self.collapse.read();
            let cached = cache
                .get(name)
                .ok_or_else(|| RegError::NotRegistered(name.to_string()))?;
            if cached.holders.iter().any(|h| h == to) {
                drop(cache);
                self.bump(&self.metrics.cycle_rejections, "cycle_rejections");
                return Err(RegError::CycleRejected {
                    name: name.to_string(),
                    owner: to.to_string(),
                });
            }
        }
        let link = TransferLink::signed(name, head.depth + 1, from, to, key);
        self.write(self.ch.set_item(
            &self.link_tpn(name, link.seq)?,
            PROP_REG_LINK,
            link.to_value(),
        ))?;
        self.bump(&self.metrics.transfers, "transfers");
        self.metrics
            .chain_depth
            .get(self.world.metrics(), "regd", "chain_depth")
            .record(u64::from(link.seq));
        let updated = {
            let mut cache = self.collapse.write();
            let cached = cache.get_mut(name).expect("resolved above");
            cached.owner = link.to.clone();
            cached.holders.push(link.to.clone());
            cached.depth = link.seq;
            cached.clone()
        };
        if let Some(service) = rebind {
            self.write_binding(name, service)?;
            self.rebind_zone(name, service)?;
            let mut r = self.resolution(name, &updated, false);
            r.service = service.to_string();
            return Ok(r);
        }
        Ok(self.resolution(name, &updated, false))
    }

    /// Releases a registered name. The base record is deleted *first* —
    /// from that RPC on the name is unregistered and resolution cannot
    /// see the remaining links; they are then deleted, and any survivor
    /// of a crash mid-sweep is garbage-collected by the next
    /// registration of the same name.
    pub fn release(&self, owner: &str, key: u64, name: &str) -> RegResult<()> {
        self.authorize(owner, key)?;
        let head = self.resolve(name)?;
        if head.owner != owner {
            return Err(RegError::NotOwner {
                name: name.to_string(),
                claimed: owner.to_string(),
                actual: head.owner,
            });
        }
        self.write(self.ch.delete(&self.base_tpn(name)?))?;
        self.collapse.write().remove(name);
        for seq in 1..=head.depth {
            self.write(self.ch.delete(&self.link_tpn(name, seq)?))?;
        }
        self.bump(&self.metrics.releases, "releases");
        Ok(())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("domain", &self.domain)
            .field("organization", &self.organization)
            .field("owners", &self.owners.read().len())
            .field("collapsed", &self.collapse.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clearinghouse::db::ChDb;
    use clearinghouse::server::{deploy, ChServer};
    use simnet::world::World;

    struct Env {
        world: Arc<World>,
        net: Arc<RpcNet>,
        binding: HrpcBinding,
    }

    impl Env {
        fn registry(&self) -> Registry {
            let identity = ThreePartName::parse("regd:cs:uw").expect("name");
            let reg = Registry::new(
                Arc::clone(&self.net),
                self.world.add_host("frontend"),
                self.binding,
                Credentials::new(identity, 7),
                "cs",
                "uw",
            );
            reg.register_owner("alice", 0xA11CE);
            reg.register_owner("bob", 0xB0B);
            reg.register_owner("carol", 0xCA401);
            reg
        }
    }

    fn setup() -> (Env, Registry) {
        let world = World::paper();
        let ch_host = world.add_host("ch");
        let net = RpcNet::new(Arc::clone(&world));
        let server = ChServer::new("ch", ChDb::new(vec![("cs".into(), "uw".into())]));
        let identity = ThreePartName::parse("regd:cs:uw").expect("name");
        server.register_key(identity, 7);
        let dep = deploy(&net, ch_host, server);
        let env = Env {
            world,
            net,
            binding: dep.binding,
        };
        let reg = env.registry();
        (env, reg)
    }

    #[test]
    fn register_resolve_lifecycle() {
        let (_world, reg) = setup();
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        let r = reg.resolve("svc").expect("resolve");
        assert_eq!(r.owner, "alice");
        assert_eq!(r.base_owner, "alice");
        assert_eq!(r.service, "BIND");
        assert_eq!(r.depth, 0);
        assert!(!r.walked, "registration seeds the collapse cache");
        assert_eq!(
            reg.register("alice", 0xA11CE, "svc", "BIND").unwrap_err(),
            RegError::AlreadyRegistered("svc".into())
        );
        assert!(matches!(
            reg.resolve("ghost").unwrap_err(),
            RegError::NotRegistered(_)
        ));
    }

    #[test]
    fn bad_keys_and_unknown_owners_rejected() {
        let (_world, reg) = setup();
        assert!(matches!(
            reg.register("alice", 0xBAD, "svc", "BIND").unwrap_err(),
            RegError::BadSignature(_)
        ));
        assert!(matches!(
            reg.register("mallory", 1, "svc", "BIND").unwrap_err(),
            RegError::UnknownOwner(_)
        ));
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        assert!(matches!(
            reg.transfer("alice", 0xA11CE, "svc", "mallory", None)
                .unwrap_err(),
            RegError::UnknownOwner(_)
        ));
    }

    #[test]
    fn transfer_moves_the_head_and_updates_binding() {
        let (_env, reg) = setup();
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        let r = reg
            .transfer("alice", 0xA11CE, "svc", "bob", Some("Clearinghouse"))
            .expect("transfer");
        assert_eq!(r.owner, "bob");
        assert_eq!(r.depth, 1);
        assert_eq!(r.service, "Clearinghouse");
        // Not the holder any more.
        assert!(matches!(
            reg.transfer("alice", 0xA11CE, "svc", "carol", None)
                .unwrap_err(),
            RegError::NotOwner { .. }
        ));
        // Cycle: back to a previous holder.
        let err = reg
            .transfer("bob", 0xB0B, "svc", "alice", None)
            .unwrap_err();
        assert!(matches!(err, RegError::CycleRejected { .. }), "{err}");
        // Naive walk agrees with the collapsed view.
        let naive = reg.resolve_naive("svc").expect("naive");
        let fast = reg.resolve("svc").expect("fast");
        assert_eq!(naive.owner, fast.owner);
        assert_eq!(naive.depth, fast.depth);
        assert_eq!(naive.service, fast.service);
    }

    #[test]
    fn update_requires_the_current_holder() {
        let (_world, reg) = setup();
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        reg.transfer("alice", 0xA11CE, "svc", "bob", None)
            .expect("transfer");
        assert!(matches!(
            reg.update("alice", 0xA11CE, "svc", "Clearinghouse")
                .unwrap_err(),
            RegError::NotOwner { .. }
        ));
        reg.update("bob", 0xB0B, "svc", "Clearinghouse")
            .expect("holder re-binds");
        assert_eq!(
            reg.resolve("svc").expect("resolve").service,
            "Clearinghouse"
        );
        assert_eq!(
            reg.resolve_naive("svc").expect("naive").service,
            "Clearinghouse",
            "the re-bind is durable, not cache-only"
        );
    }

    #[test]
    fn release_then_reregister_starts_a_fresh_chain() {
        let (_world, reg) = setup();
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        reg.transfer("alice", 0xA11CE, "svc", "bob", None)
            .expect("transfer");
        assert!(matches!(
            reg.release("alice", 0xA11CE, "svc").unwrap_err(),
            RegError::NotOwner { .. }
        ));
        reg.release("bob", 0xB0B, "svc").expect("release");
        assert!(matches!(
            reg.resolve("svc").unwrap_err(),
            RegError::NotRegistered(_)
        ));
        // Re-register: alice can hold it again (the old chain is gone,
        // so no cycle), and the chain starts at depth 0.
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("re-register");
        let r = reg.resolve("svc").expect("resolve");
        assert_eq!((r.owner.as_str(), r.depth), ("alice", 0));
        reg.transfer("alice", 0xA11CE, "svc", "bob", None)
            .expect("bob may hold it again in the new epoch");
    }

    #[test]
    fn warm_resolve_is_one_clearinghouse_read() {
        let (env, reg) = setup();
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        for (owner, key, to) in [("alice", 0xA11CE, "bob"), ("bob", 0xB0B, "carol")] {
            reg.transfer(owner, key, "svc", to, None).expect("transfer");
        }
        let before = env.world.counters().ns_lookups;
        let r = reg.resolve("svc").expect("warm");
        let after = env.world.counters().ns_lookups;
        assert_eq!(after - before, 1, "exactly the depth+1 probe");
        assert!(!r.walked);
        assert_eq!(r.owner, "carol");
    }

    #[test]
    fn foreign_extension_is_discovered_incrementally() {
        let (env, reg) = setup();
        reg.register("alice", 0xA11CE, "svc", "BIND")
            .expect("register");
        let r1 = reg.resolve("svc").expect("warm");
        assert!(!r1.walked, "collapse hit before the foreign write");

        // A second frontend over the same Clearinghouse extends the
        // chain behind the first one's back.
        let other = env.registry();
        other
            .transfer("alice", 0xA11CE, "svc", "bob", None)
            .expect("t1");
        other
            .transfer("bob", 0xB0B, "svc", "carol", None)
            .expect("t2");

        // The stale frontend's probe at depth+1 hits, and it walks
        // forward from there — two links plus the trailing miss, never
        // back to the base record.
        let before = env.world.counters().ns_lookups;
        let r2 = reg.resolve("svc").expect("extended");
        let probes = env.world.counters().ns_lookups - before;
        assert_eq!(r2.owner, "carol");
        assert_eq!(r2.depth, 2);
        assert!(r2.walked, "extension is a (partial) walk");
        assert_eq!(probes, 2, "probe-hit + one coalesced run (link 2 + miss)");

        // And the refreshed head collapses again.
        let r3 = reg.resolve("svc").expect("re-collapsed");
        assert!(!r3.walked);
        assert_eq!(r3.owner, "carol");
    }

    #[test]
    fn name_validation() {
        let (_world, reg) = setup();
        for bad in ["", "a--b", "a:b", &"x".repeat(41)] {
            assert!(
                matches!(
                    reg.register("alice", 0xA11CE, bad, "BIND").unwrap_err(),
                    RegError::BadRecord(_)
                ),
                "{bad:?}"
            );
        }
    }
}

//! Registration testbed: the full write-path environment.
//!
//! Extends the [`nsms::harness::Testbed`] with a replicated
//! Clearinghouse (one primary, one lazy replica) and a registration
//! frontend wired for the paper's loose-consistency regime: writes go
//! to the primary, reads fail over to the replica, registrations and
//! re-binds propagate into the HNS meta zone so `FindNSM` follows a
//! transferred name transparently. Experiments, the write-heavy
//! loadgen mix, and the chaos suite all build on this.

use std::sync::Arc;

use clearinghouse::db::ChDb;
use clearinghouse::replication::ChCluster;
use clearinghouse::server::{deploy as deploy_ch, ChServer};
use hns_core::cache::CacheMode;
use hrpc::HrpcBinding;
use nsms::harness::Testbed;
use simnet::topology::HostId;

use crate::registry::Registry;

/// Deterministic signing key for the `i`-th seeded owner.
pub fn owner_key(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed_0bad_cafe_f00d
}

/// Name of the `i`-th seeded owner.
pub fn owner_name(i: usize) -> String {
    format!("owner{i}")
}

/// The write-path environment: testbed + replicated Clearinghouse +
/// registration frontend.
pub struct RegTestbed {
    /// The underlying HCS environment (primary Clearinghouse included).
    pub tb: Testbed,
    /// Primary + replica with lazy propagation.
    pub cluster: ChCluster,
    /// Host of the Clearinghouse replica.
    pub replica_host: HostId,
    /// Binding of the replica (the read-failover target).
    pub replica_binding: HrpcBinding,
    /// The registration frontend (runs on `tb.hosts.agent`).
    pub registry: Arc<Registry>,
}

impl RegTestbed {
    /// Builds the environment with `owners` seeded identities
    /// (`owner0..`, keys from [`owner_key`]) and zone propagation
    /// enabled so registered names become HNS contexts.
    pub fn build(owners: usize) -> RegTestbed {
        let tb = Testbed::build();
        let replica_host = tb.world.add_host("chreplica.cs.washington.edu");
        let replica = ChServer::new(
            "clearinghouse-replica",
            ChDb::new(vec![("cs".into(), "uw".into())]),
        );
        replica.register_key(tb.creds.identity.clone(), tb.creds.key);
        let replica_dep = deploy_ch(&tb.net, replica_host, replica);
        let cluster = ChCluster::new(
            Arc::clone(&tb.world),
            Arc::clone(&tb.ch.server),
            tb.hosts.ch,
            vec![(Arc::clone(&replica_dep.server), replica_host)],
        );

        let mut registry = Registry::new(
            Arc::clone(&tb.net),
            tb.hosts.agent,
            tb.ch.binding,
            tb.creds.clone(),
            "cs",
            "uw",
        );
        registry.set_read_fallbacks(vec![replica_dep.binding]);
        registry.set_rebinder(Some(tb.make_hns(tb.hosts.meta, CacheMode::Disabled)));
        let registry = Arc::new(registry);
        for i in 0..owners {
            registry.register_owner(owner_name(i), owner_key(i));
        }

        RegTestbed {
            tb,
            cluster,
            replica_host,
            replica_binding: replica_dep.binding,
            registry,
        }
    }

    /// A fresh resolver-only frontend on `host` with a cold collapse
    /// cache, sharing the cluster (primary reads, replica failover) and
    /// the seeded owner keys of the main registry so walked links
    /// verify. Tests use this to observe cold-walk / collapse behaviour
    /// and what a *different* frontend sees after foreign writes.
    pub fn reader(&self, host: HostId, owners: usize) -> Registry {
        let mut reader = Registry::new(
            Arc::clone(&self.tb.net),
            host,
            self.tb.ch.binding,
            self.tb.creds.clone(),
            "cs",
            "uw",
        );
        reader.set_read_fallbacks(vec![self.replica_binding]);
        for i in 0..owners {
            reader.register_owner(owner_name(i), owner_key(i));
        }
        reader
    }
}

impl std::fmt::Debug for RegTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegTestbed")
            .field("replica_host", &self.replica_host)
            .field("registry", &self.registry)
            .finish()
    }
}

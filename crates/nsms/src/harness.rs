//! A complete simulated HCS environment — the reproduction's testbed.
//!
//! Builds the paper's §3 environment: a public BIND holding the
//! `cs.washington.edu` zone, a Clearinghouse serving the `cs:uw` domain, a
//! *modified* BIND holding the `hns` meta zone, target services (a Sun RPC
//! service on `fiji`, a Courier service on `printserver`), and helpers to
//! instantiate HNS copies and deploy NSMs under any colocation
//! arrangement. Examples, integration tests, and the experiment harness
//! all build on this.

use std::sync::Arc;

use bindns::name::DomainName;
use bindns::resolver::StdResolver;
use bindns::rr::ResourceRecord;
use bindns::server::{deploy as deploy_bind, single_zone_server, BindDeployment};
use bindns::zone::Zone;
use clearinghouse::auth::Credentials;
use clearinghouse::client::ChClient;
use clearinghouse::db::ChDb;
use clearinghouse::name::ThreePartName;
use clearinghouse::property::{PROP_ADDRESS, PROP_FILE_SERVICE, PROP_MAILBOX};
use clearinghouse::server::{deploy as deploy_ch, ChDeployment, ChServer};
use hns_core::cache::CacheMode;
use hns_core::name::{Context, NameMapping};
use hns_core::nsm::{Nsm, NsmInfo, NsmService, SuiteTag};
use hns_core::query::QueryClass;
use hns_core::service::Hns;
use hrpc::net::RpcNet;
use hrpc::server::ProcServer;
use hrpc::{HrpcBinding, ProgramId};
use simnet::topology::{HostId, NetAddr};
use simnet::world::World;
use wire::Value;

use crate::binding_bind::BindingBindNsm;
use crate::binding_ch::BindingChNsm;
use crate::file_loc::{FileBindNsm, FileChNsm};
use crate::hostaddr::{HostAddrBindNsm, HostAddrChNsm};
use crate::mail::{MailBindNsm, MailChNsm};
use crate::nsm_cache::NsmCacheForm;
use crate::user_info::{UserBindNsm, UserChNsm, PROP_USER};

/// The name service name under which BIND is registered with the HNS.
pub const NS_BIND: &str = "BIND";
/// The name service name under which the Clearinghouse is registered.
pub const NS_CH: &str = "Clearinghouse";
/// The BIND-backed context.
pub const CTX_BIND: &str = "bind-uw";
/// The Clearinghouse-backed context.
pub const CTX_CH: &str = "ch-uw";
/// The dedicated context under which NSM hosts themselves are named.
pub const CTX_NSM_HOSTS: &str = "hns-hosts";
/// Program number of the Sun target service on `fiji`.
pub const DESIRED_SERVICE_PROGRAM: ProgramId = ProgramId(100_005);
/// Name of the Sun target service.
pub const DESIRED_SERVICE: &str = "DesiredService";
/// Program number of the Courier print service.
pub const PRINT_SERVICE_PROGRAM: ProgramId = ProgramId(200_005);
/// Name of the Courier print service.
pub const PRINT_SERVICE: &str = "PrintService";
/// Program under which NSM services are exported.
pub const NSM_EXPORT_PROGRAM: ProgramId = ProgramId(310_001);

/// The testbed's hosts (MicroVAX-IIs and friends on one Ethernet).
#[derive(Debug, Clone, Copy)]
pub struct Hosts {
    /// The client workstation.
    pub client: HostId,
    /// Host for a remotely located HNS.
    pub hns: HostId,
    /// Host for remotely located NSMs.
    pub nsm: HostId,
    /// Host for the agent arrangement.
    pub agent: HostId,
    /// Host of the modified BIND (meta store).
    pub meta: HostId,
    /// Host of the public BIND.
    pub bind: HostId,
    /// Host of the Clearinghouse.
    pub ch: HostId,
    /// Sun host running `DesiredService`.
    pub fiji: HostId,
    /// Xerox host running `PrintService`.
    pub printer: HostId,
}

/// The full environment.
pub struct Testbed {
    /// The simulation environment.
    pub world: Arc<World>,
    /// The RPC fabric.
    pub net: Arc<RpcNet>,
    /// All hosts.
    pub hosts: Hosts,
    /// The public BIND.
    pub public_bind: BindDeployment,
    /// The modified BIND holding the meta zone.
    pub meta_bind: BindDeployment,
    /// The Clearinghouse.
    pub ch: ChDeployment,
    /// Credentials every HCS component uses with the Clearinghouse.
    pub creds: Credentials,
    /// Origin of the meta zone.
    pub meta_origin: DomainName,
}

/// The binding NSMs deployed for one arrangement.
pub struct DeployedBindingNsms {
    /// The BIND-backed binding NSM.
    pub bind: Arc<BindingBindNsm>,
    /// The Clearinghouse-backed binding NSM.
    pub ch: Arc<BindingChNsm>,
    /// Host they were exported on.
    pub host: HostId,
}

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).expect("static domain name")
}

fn tpn(s: &str) -> ThreePartName {
    ThreePartName::parse(s).expect("static three-part name")
}

impl Testbed {
    /// Builds the full environment.
    pub fn build() -> Testbed {
        let world = World::paper();
        let hosts = Hosts {
            client: world.add_host("client.cs.washington.edu"),
            hns: world.add_host("hnsserv.cs.washington.edu"),
            nsm: world.add_host("nsmserv.cs.washington.edu"),
            agent: world.add_host("agent.cs.washington.edu"),
            meta: world.add_host("hnsbind.cs.washington.edu"),
            bind: world.add_host("ns.cs.washington.edu"),
            ch: world.add_host("dlion.cs.washington.edu"),
            fiji: world.add_host("fiji.cs.washington.edu"),
            printer: world.add_host("printserver.cs.washington.edu"),
        };
        let net = RpcNet::new(Arc::clone(&world));

        // Public BIND: the cs.washington.edu zone with every host's
        // address, plus mail and file records for the extension NSMs.
        let mut zone = Zone::new(dn("cs.washington.edu"), 86_400);
        for host in [
            hosts.client,
            hosts.hns,
            hosts.nsm,
            hosts.agent,
            hosts.meta,
            hosts.bind,
            hosts.ch,
            hosts.fiji,
            hosts.printer,
        ] {
            let name = world.topology.host_name(host).expect("host exists");
            zone.add(ResourceRecord::a(dn(&name), 86_400, NetAddr::of(host)))
                .expect("seed zone");
        }
        zone.add(ResourceRecord {
            name: dn("alice.cs.washington.edu"),
            rtype: bindns::rr::RType::Mx,
            ttl: 3600,
            rdata: bindns::rr::RData::Domain(dn("fiji.cs.washington.edu")),
        })
        .expect("seed mx");
        zone.add(ResourceRecord::txt(
            dn("sources.cs.washington.edu"),
            3600,
            "fileservice=fiji.cs.washington.edu;root=/usr/src",
        ))
        .expect("seed txt");
        zone.add(ResourceRecord::txt(
            dn("mfs.cs.washington.edu"),
            3600,
            "name=Michael F. Schwartz;host=fiji.cs.washington.edu",
        ))
        .expect("seed user");
        let public_bind = deploy_bind(
            &net,
            hosts.bind,
            single_zone_server("public-bind", zone, false),
        );

        // Modified BIND: the empty hns meta zone, updates enabled.
        let meta_origin = dn("hns");
        let meta_zone = Zone::new(meta_origin.clone(), hns_core::META_TTL);
        let meta_bind = deploy_bind(
            &net,
            hosts.meta,
            single_zone_server("meta-bind", meta_zone, true),
        );
        // Server-side mapping chaser: lets batched (MQUERY) FindNSM fetches
        // pick up mappings 2-5 as piggybacked additional record sets.
        meta_bind
            .server
            .set_additional_provider(hns_core::MetaChaser::new(meta_origin.clone()));

        // Clearinghouse: the cs:uw domain.
        let ch_server = ChServer::new("clearinghouse", ChDb::new(vec![("cs".into(), "uw".into())]));
        const HCS_KEY: u64 = 0x4843_5331_3938_3755;
        let identity = tpn("hcs:cs:uw");
        ch_server.register_key(identity.clone(), HCS_KEY);
        let creds = Credentials::new(identity, HCS_KEY);
        ch_server.with_db(|db| {
            db.set_item(
                &tpn("printserver:cs:uw"),
                PROP_ADDRESS,
                Value::U32(hosts.printer.0),
            )
            .expect("seed ch");
            db.set_item(&tpn("dlion:cs:uw"), PROP_ADDRESS, Value::U32(hosts.ch.0))
                .expect("seed ch");
            db.set_item(
                &tpn("bob:cs:uw"),
                PROP_MAILBOX,
                Value::str("printserver:cs:uw"),
            )
            .expect("seed ch");
            db.set_item(
                &tpn("bob:cs:uw"),
                PROP_USER,
                Value::record(vec![
                    ("name", Value::str("Bob on the Xerox side")),
                    ("host", Value::str("printserver:cs:uw")),
                ]),
            )
            .expect("seed ch user");
            db.set_item(
                &tpn("designs:cs:uw"),
                PROP_FILE_SERVICE,
                Value::record(vec![
                    ("host", Value::str("printserver:cs:uw")),
                    ("root", Value::str("/designs")),
                ]),
            )
            .expect("seed ch");
        });
        let ch = deploy_ch(&net, hosts.ch, ch_server);

        // Target services.
        let desired = Arc::new(
            ProcServer::new(DESIRED_SERVICE)
                .with_proc(1, |_c, a| Ok(Value::record(vec![("echo", a.clone())]))),
        );
        net.export(hosts.fiji, DESIRED_SERVICE_PROGRAM, desired);
        let print = Arc::new(
            ProcServer::new(PRINT_SERVICE).with_proc(1, |_c, _a| Ok(Value::str("queued"))),
        );
        net.export(hosts.printer, PRINT_SERVICE_PROGRAM, print);

        let testbed = Testbed {
            world,
            net,
            hosts,
            public_bind,
            meta_bind,
            ch,
            creds,
            meta_origin,
        };
        testbed.register_contexts();
        testbed
    }

    /// The BIND context.
    pub fn ctx_bind(&self) -> Context {
        Context::new(CTX_BIND).expect("static context")
    }

    /// The Clearinghouse context.
    pub fn ctx_ch(&self) -> Context {
        Context::new(CTX_CH).expect("static context")
    }

    /// The context NSM host names are registered under.
    pub fn ctx_nsm_hosts(&self) -> Context {
        Context::new(CTX_NSM_HOSTS).expect("static context")
    }

    fn register_contexts(&self) {
        // Registrations go through the wire like any other client; use a
        // bootstrap HNS on the meta host.
        let bootstrap = self.make_hns_unlinked(self.hosts.meta, CacheMode::Disabled);
        bootstrap
            .register_context(&self.ctx_bind(), NS_BIND, &NameMapping::Identity)
            .expect("register bind context");
        bootstrap
            .register_context(&self.ctx_ch(), NS_CH, &NameMapping::Identity)
            .expect("register ch context");
        bootstrap
            .register_context(&self.ctx_nsm_hosts(), NS_BIND, &NameMapping::Identity)
            .expect("register nsm-hosts context");
        bootstrap
            .register_nsm(NS_BIND, &QueryClass::host_address(), HostAddrBindNsm::NAME)
            .expect("register ha-bind");
        bootstrap
            .register_nsm(NS_CH, &QueryClass::host_address(), HostAddrChNsm::NAME)
            .expect("register ha-ch");
    }

    /// A standard resolver to the public BIND, originating from `host`.
    pub fn std_resolver(&self, host: HostId) -> Arc<StdResolver> {
        Arc::new(StdResolver::new(
            Arc::clone(&self.net),
            host,
            self.public_bind.std_binding,
        ))
    }

    /// A Clearinghouse client originating from `host`.
    pub fn ch_client(&self, host: HostId) -> Arc<ChClient> {
        Arc::new(ChClient::new(
            Arc::clone(&self.net),
            host,
            self.ch.binding,
            self.creds.clone(),
        ))
    }

    /// The linked host-address NSMs for an HNS instance running on `host`.
    pub fn host_addr_nsms(&self, host: HostId) -> Vec<Arc<dyn Nsm>> {
        vec![
            HostAddrBindNsm::new(self.std_resolver(host), NameMapping::Identity),
            HostAddrChNsm::new(self.ch_client(host), NameMapping::Identity, 600),
        ]
    }

    fn make_hns_unlinked(&self, host: HostId, mode: CacheMode) -> Arc<Hns> {
        Arc::new(Hns::new(
            Arc::clone(&self.net),
            host,
            self.meta_bind.hrpc_binding,
            self.meta_origin.clone(),
            mode,
        ))
    }

    /// Creates an HNS instance on `host` with its host-address NSMs linked.
    pub fn make_hns(&self, host: HostId, mode: CacheMode) -> Arc<Hns> {
        let hns = self.make_hns_unlinked(host, mode);
        for nsm in self.host_addr_nsms(host) {
            hns.link_nsm(nsm);
        }
        hns
    }

    /// Deploys the two binding NSMs on `host` and registers them with the
    /// HNS meta store (replacing any previous registration).
    pub fn deploy_binding_nsms(&self, host: HostId, form: NsmCacheForm) -> DeployedBindingNsms {
        let bind_nsm = BindingBindNsm::new(
            Arc::clone(&self.net),
            host,
            self.std_resolver(host),
            NameMapping::Identity,
            form,
        );
        let ch_nsm = BindingChNsm::new(
            Arc::clone(&self.net),
            host,
            self.ch_client(host),
            NameMapping::Identity,
            form,
        );
        let bind_port =
            self.net
                .export(host, NSM_EXPORT_PROGRAM, NsmService::new(bind_nsm.clone()));
        let ch_port = self.net.export(
            host,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 1),
            NsmService::new(ch_nsm.clone()),
        );

        // Flush the bind-backed NSM's result cache on every
        // `World::export_all_caches` under the component name the traced
        // experiment established (`nsm_cache`); a Disabled cache stays
        // silent. The CH NSM's cache is not registered — one component,
        // one instance, last-writer-wins.
        if form != NsmCacheForm::Disabled {
            let weak = Arc::downgrade(&bind_nsm);
            self.world.register_cache_exporter(Box::new(move |metrics| {
                if let Some(nsm) = weak.upgrade() {
                    nsm.export_metrics(metrics, "nsm_cache");
                }
            }));
        }

        let registrar = self.make_hns_unlinked(self.hosts.meta, CacheMode::Disabled);
        let host_name = self.world.topology.host_name(host).expect("host exists");
        registrar
            .register_nsm(NS_BIND, &QueryClass::hrpc_binding(), BindingBindNsm::NAME)
            .expect("register nsm name");
        registrar
            .register_nsm_info(&NsmInfo {
                nsm_name: BindingBindNsm::NAME.into(),
                host_name: host_name.clone(),
                host_context: self.ctx_nsm_hosts(),
                program: NSM_EXPORT_PROGRAM,
                port: bind_port,
                suite: SuiteTag::Sun,
                version: 1,
                owner: "hcs-project".into(),
            })
            .expect("register nsm info");
        registrar
            .register_nsm(NS_CH, &QueryClass::hrpc_binding(), BindingChNsm::NAME)
            .expect("register nsm name");
        registrar
            .register_nsm_info(&NsmInfo {
                nsm_name: BindingChNsm::NAME.into(),
                host_name,
                host_context: self.ctx_nsm_hosts(),
                program: ProgramId(NSM_EXPORT_PROGRAM.0 + 1),
                port: ch_port,
                suite: SuiteTag::Sun,
                version: 1,
                owner: "hcs-project".into(),
            })
            .expect("register nsm info");
        DeployedBindingNsms {
            bind: bind_nsm,
            ch: ch_nsm,
            host,
        }
    }

    /// Deploys a replica of the BIND-backed binding NSM on `host` and
    /// returns its binding, *without* touching the meta-store
    /// registration: `FindNSM` keeps designating the primary, and the
    /// replica only serves as an [`crate::import::Importer`] failover
    /// target when the primary's host is crashed or partitioned away.
    pub fn deploy_binding_bind_replica(&self, host: HostId, form: NsmCacheForm) -> HrpcBinding {
        let nsm = BindingBindNsm::new(
            Arc::clone(&self.net),
            host,
            self.std_resolver(host),
            NameMapping::Identity,
            form,
        );
        let program = ProgramId(NSM_EXPORT_PROGRAM.0 + 8);
        let port = self.net.export(host, program, NsmService::new(nsm));
        HrpcBinding {
            host,
            addr: NetAddr::of(host),
            program,
            port,
            components: SuiteTag::Sun.components(port),
        }
    }

    /// Deploys the mail and file NSMs on `host` and registers them.
    pub fn deploy_extension_nsms(&self, host: HostId) {
        let registrar = self.make_hns_unlinked(self.hosts.meta, CacheMode::Disabled);
        let host_name = self.world.topology.host_name(host).expect("host exists");
        let deploy_one = |nsm: Arc<dyn Nsm>, ns: &str, program: ProgramId| {
            let qc = nsm.query_class();
            let nsm_name = nsm.nsm_name().to_string();
            let port = self.net.export(host, program, NsmService::new(nsm));
            registrar
                .register_nsm(ns, &qc, &nsm_name)
                .expect("register nsm name");
            registrar
                .register_nsm_info(&NsmInfo {
                    nsm_name,
                    host_name: host_name.clone(),
                    host_context: self.ctx_nsm_hosts(),
                    program,
                    port,
                    suite: SuiteTag::Sun,
                    version: 1,
                    owner: "hcs-project".into(),
                })
                .expect("register nsm info");
        };
        deploy_one(
            MailBindNsm::new(self.std_resolver(host), NameMapping::Identity),
            NS_BIND,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 2),
        );
        deploy_one(
            MailChNsm::new(self.ch_client(host), NameMapping::Identity),
            NS_CH,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 3),
        );
        deploy_one(
            FileBindNsm::new(self.std_resolver(host), NameMapping::Identity),
            NS_BIND,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 4),
        );
        deploy_one(
            FileChNsm::new(self.ch_client(host), NameMapping::Identity),
            NS_CH,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 5),
        );
    }

    /// Deploys the user-information NSMs on `host` and registers them
    /// (kept separate from [`Testbed::deploy_extension_nsms`] so the
    /// preload experiments keep the paper-calibrated meta zone size).
    pub fn deploy_user_nsms(&self, host: HostId) {
        let registrar = self.make_hns_unlinked(self.hosts.meta, CacheMode::Disabled);
        let host_name = self.world.topology.host_name(host).expect("host exists");
        let deploy_one = |nsm: Arc<dyn Nsm>, ns: &str, program: ProgramId| {
            let qc = nsm.query_class();
            let nsm_name = nsm.nsm_name().to_string();
            let port = self.net.export(host, program, NsmService::new(nsm));
            registrar
                .register_nsm(ns, &qc, &nsm_name)
                .expect("register nsm name");
            registrar
                .register_nsm_info(&NsmInfo {
                    nsm_name,
                    host_name: host_name.clone(),
                    host_context: self.ctx_nsm_hosts(),
                    program,
                    port,
                    suite: SuiteTag::Sun,
                    version: 1,
                    owner: "hcs-project".into(),
                })
                .expect("register nsm info");
        };
        deploy_one(
            UserBindNsm::new(self.std_resolver(host), NameMapping::Identity),
            NS_BIND,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 6),
        );
        deploy_one(
            UserChNsm::new(self.ch_client(host), NameMapping::Identity),
            NS_CH,
            ProgramId(NSM_EXPORT_PROGRAM.0 + 7),
        );
    }
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("hosts", &self.hosts)
            .finish()
    }
}

//! File-location NSMs — the heterogeneous-filing extension.
//!
//! §5 of the paper: "We are pursuing this structure in the context of ...
//! a heterogeneous file system that mediates access to the set of local
//! file systems present in the environment." These NSMs answer "which file
//! service holds this file, and under what local path?" Client interface
//! for `FileLocation`: extra args `{ path: str }`; reply
//! `{ file_host: str, local_path: str }`.

use std::sync::Arc;

use bindns::name::DomainName;
use bindns::resolver::StdResolver;
use bindns::rr::{RData, RType};
use clearinghouse::client::ChClient;
use clearinghouse::name::ThreePartName;
use clearinghouse::property::PROP_FILE_SERVICE;
use hns_core::name::{HnsName, NameMapping};
use hns_core::nsm::Nsm;
use hns_core::query::QueryClass;
use hrpc::error::{RpcError, RpcResult};
use wire::Value;

/// Builds the standard `FileLocation` reply.
pub fn file_reply(file_host: &str, local_path: &str) -> Value {
    Value::record(vec![
        ("file_host", Value::str(file_host)),
        ("local_path", Value::str(local_path)),
    ])
}

/// File-location NSM over BIND `TXT` records of the form
/// `fileservice=<host>;root=<path>`.
pub struct FileBindNsm {
    resolver: Arc<StdResolver>,
    mapping: NameMapping,
}

impl FileBindNsm {
    /// Conventional NSM name.
    pub const NAME: &'static str = "nsm-filelocation-bind";

    /// Creates the NSM.
    pub fn new(resolver: Arc<StdResolver>, mapping: NameMapping) -> Arc<Self> {
        Arc::new(FileBindNsm { resolver, mapping })
    }
}

fn parse_file_record(text: &str, path: &str) -> RpcResult<Value> {
    let mut host = None;
    let mut root = None;
    for piece in text.split(';') {
        match piece.split_once('=') {
            Some(("fileservice", v)) => host = Some(v),
            Some(("root", v)) => root = Some(v),
            _ => {}
        }
    }
    match (host, root) {
        (Some(h), Some(r)) => Ok(file_reply(h, &format!("{r}/{path}"))),
        _ => Err(RpcError::Service(format!("bad file record `{text}`"))),
    }
}

impl Nsm for FileBindNsm {
    fn nsm_name(&self) -> &str {
        Self::NAME
    }

    fn query_class(&self) -> QueryClass {
        QueryClass::file_location()
    }

    fn handle(&self, hns_name: &HnsName, args: &Value) -> RpcResult<Value> {
        let path = args.str_field("path")?;
        let local = self
            .mapping
            .to_local(&hns_name.individual)
            .map_err(|e| RpcError::Service(e.to_string()))?;
        let domain = DomainName::parse(&local).map_err(|e| RpcError::Service(e.to_string()))?;
        let records = self.resolver.query(&domain, RType::Txt)?;
        let rr = records
            .iter()
            .find(|r| r.rtype == RType::Txt)
            .ok_or_else(|| RpcError::NotFound(local.clone()))?;
        match &rr.rdata {
            RData::Text(text) => parse_file_record(text, path),
            other => Err(RpcError::Service(format!("bad TXT rdata {other:?}"))),
        }
    }
}

/// File-location NSM over the Clearinghouse file-service property, whose
/// value is `{ host: str, root: str }`.
pub struct FileChNsm {
    client: Arc<ChClient>,
    mapping: NameMapping,
}

impl FileChNsm {
    /// Conventional NSM name.
    pub const NAME: &'static str = "nsm-filelocation-ch";

    /// Creates the NSM.
    pub fn new(client: Arc<ChClient>, mapping: NameMapping) -> Arc<Self> {
        Arc::new(FileChNsm { client, mapping })
    }
}

impl Nsm for FileChNsm {
    fn nsm_name(&self) -> &str {
        Self::NAME
    }

    fn query_class(&self) -> QueryClass {
        QueryClass::file_location()
    }

    fn handle(&self, hns_name: &HnsName, args: &Value) -> RpcResult<Value> {
        let path = args.str_field("path")?;
        let local = self
            .mapping
            .to_local(&hns_name.individual)
            .map_err(|e| RpcError::Service(e.to_string()))?;
        let tpn = ThreePartName::parse(&local).map_err(|e| RpcError::Service(e.to_string()))?;
        let value = self.client.lookup_item(&tpn, PROP_FILE_SERVICE)?;
        let host = value.str_field("host")?;
        let root = value.str_field("root")?;
        Ok(file_reply(host, &format!("{root}/{path}")))
    }
}

impl std::fmt::Debug for FileBindNsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBindNsm").finish()
    }
}

impl std::fmt::Debug for FileChNsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileChNsm").finish()
    }
}

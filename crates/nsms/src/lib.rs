//! `nsms` — concrete Naming Semantics Managers and the HCS testbed.
//!
//! "Each NSM understands the semantics of naming for a particular query
//! class and a particular name service." The crate provides the paper's
//! binding NSMs for BIND and the Clearinghouse (§3, "about 230 lines
//! each"), host-address NSMs (linked with every HNS to break `FindNSM`
//! recursion), the mail and file extension NSMs (§5), the NSM-side result
//! cache, the `Import` operation, and [`harness::Testbed`] — the full
//! simulated HCS environment used by examples, integration tests, and the
//! experiment harness.
#![warn(missing_docs)]

pub mod binding_bind;
pub mod binding_ch;
pub mod file_loc;
pub mod harness;
pub mod hostaddr;
pub mod import;
pub mod mail;
pub mod nsm_cache;
pub mod user_info;

pub use binding_bind::BindingBindNsm;
pub use binding_ch::BindingChNsm;
pub use harness::{DeployedBindingNsms, Hosts, Testbed};
pub use hostaddr::{HostAddrBindNsm, HostAddrChNsm};
pub use import::Importer;
pub use nsm_cache::{NsmCache, NsmCacheForm};

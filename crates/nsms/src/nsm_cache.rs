//! The NSM-side result cache.
//!
//! "Both the HNS and the NSMs were modified to cache the results of remote
//! lookups." An NSM caches completed results (e.g. a finished HRPC binding)
//! keyed by the query it answered, with the same marshalled/demarshalled
//! form distinction as the HNS cache.
//!
//! Like [`hns_core::cache::HnsCache`], entries are lock-striped across
//! independent shards and demarshalled entries are stored behind an `Arc`,
//! so concurrent NSM queries on different keys never serialize on one
//! global mutex.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;
use simnet::CacheForm;
use wire::Value;

/// Number of lock-striped shards.
const SHARDS: usize = 8;

/// Storage form for NSM cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NsmCacheForm {
    /// No caching.
    Disabled,
    /// Wire form; hits pay a generated demarshal.
    Marshalled,
    /// Decoded form; hits are nearly free.
    Demarshalled,
}

#[derive(Debug)]
enum Stored {
    Bytes(Vec<u8>),
    Decoded(Arc<Value>),
}

#[derive(Debug)]
struct Entry {
    stored: Stored,
    rrs: usize,
    expires_at: SimTime,
}

/// A cache of completed NSM results.
pub struct NsmCache {
    form: NsmCacheForm,
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl NsmCache {
    /// Creates a cache with the given storage form.
    pub fn new(form: NsmCacheForm) -> Self {
        NsmCache {
            form,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The storage form.
    pub fn form(&self) -> NsmCacheForm {
        self.form
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a completed result, charging probe + form-dependent cost.
    pub fn get(&self, world: &World, key: &str) -> Option<Value> {
        if self.form == NsmCacheForm::Disabled {
            return None;
        }
        world.charge_ms(world.costs.cache_probe);
        let mut entries = self.shard(key).lock();
        match entries.get(key) {
            Some(entry) if entry.expires_at > world.now() => {
                let value = match &entry.stored {
                    Stored::Bytes(bytes) => {
                        world.charge_ms(world.costs.cache_hit(CacheForm::Marshalled, entry.rrs));
                        wire::xdr::decode(bytes).ok()?
                    }
                    Stored::Decoded(v) => {
                        world.charge_ms(world.costs.cache_hit(CacheForm::Demarshalled, entry.rrs));
                        // `Nsm::handle` replies with an owned Value, so the
                        // clone happens at this boundary; the shard lock is
                        // never held across a demarshal of wire bytes.
                        (**v).clone()
                    }
                };
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                world.cache_outcome(simnet::trace::CacheOutcome::Hit);
                Some(value)
            }
            Some(_) => {
                entries.remove(key);
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                world.cache_outcome(simnet::trace::CacheOutcome::Expired);
                None
            }
            None => {
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                world.cache_outcome(simnet::trace::CacheOutcome::Miss);
                None
            }
        }
    }

    /// Inserts a completed result.
    pub fn insert(&self, world: &World, key: String, value: &Value, rrs: usize, ttl_secs: u32) {
        if self.form == NsmCacheForm::Disabled {
            return;
        }
        let stored = match self.form {
            NsmCacheForm::Marshalled => match wire::xdr::encode(value) {
                Ok(bytes) => Stored::Bytes(bytes),
                Err(_) => return,
            },
            NsmCacheForm::Demarshalled => Stored::Decoded(Arc::new(value.clone())),
            NsmCacheForm::Disabled => unreachable!("checked above"),
        };
        let expires_at = world.now() + SimDuration::from_ms(u64::from(ttl_secs) * 1000);
        self.shard(&key).lock().insert(
            key,
            Entry {
                stored,
                rrs,
                expires_at,
            },
        );
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Drops all entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Publishes current hit/miss totals into a metrics registry under
    /// `component` (snapshot-time export; the hot path keeps its own
    /// atomics).
    pub fn export_metrics(&self, metrics: &simnet::obs::MetricsRegistry, component: &str) {
        let (hits, misses) = self.stats();
        metrics.set_counter(component, "hits", hits);
        metrics.set_counter(component, "misses", misses);
        let entries = self
            .shards
            .iter()
            .map(|shard| shard.lock().len() as u64)
            .sum();
        metrics.set_counter(component, "entries", entries);
    }
}

impl std::fmt::Debug for NsmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsmCache")
            .field("form", &self.form)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_form_never_caches() {
        let world = simnet::World::paper();
        let cache = NsmCache::new(NsmCacheForm::Disabled);
        cache.insert(&world, "k".into(), &Value::U32(1), 1, 600);
        assert!(cache.get(&world, "k").is_none());
    }

    #[test]
    fn marshalled_hit_cost() {
        let world = simnet::World::paper();
        let cache = NsmCache::new(NsmCacheForm::Marshalled);
        cache.insert(&world, "k".into(), &Value::U32(1), 2, 600);
        let (got, took, _) = world.measure(|| cache.get(&world, "k"));
        assert_eq!(got, Some(Value::U32(1)));
        // probe 0.05 + 8.10 + 2*3.01 = 14.17
        assert!((took.as_ms_f64() - 14.17).abs() < 0.1, "took {took}");
        assert_eq!(cache.stats(), (1, 0));
    }

    #[test]
    fn demarshalled_hit_is_cheap() {
        let world = simnet::World::paper();
        let cache = NsmCache::new(NsmCacheForm::Demarshalled);
        cache.insert(&world, "k".into(), &Value::U32(1), 2, 600);
        let (_, took, _) = world.measure(|| cache.get(&world, "k"));
        assert!(took.as_ms_f64() < 1.1, "took {took}");
    }

    #[test]
    fn ttl_expiry() {
        let world = simnet::World::paper();
        let cache = NsmCache::new(NsmCacheForm::Demarshalled);
        cache.insert(&world, "k".into(), &Value::U32(1), 1, 1);
        world.charge_ms(1500.0);
        assert!(cache.get(&world, "k").is_none());
        assert_eq!(cache.stats().1, 1);
    }

    #[test]
    fn clear_empties() {
        let world = simnet::World::paper();
        let cache = NsmCache::new(NsmCacheForm::Demarshalled);
        cache.insert(&world, "k".into(), &Value::U32(1), 1, 600);
        cache.clear();
        assert!(cache.get(&world, "k").is_none());
    }
}

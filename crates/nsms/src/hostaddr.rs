//! Host-address NSMs: host name → network address, for both underlying
//! name services.
//!
//! Instances of these are linked directly with every HNS to break the
//! `FindNSM` recursion ("so that their network addresses need not be
//! found"). The identical client interface for the `HostAddress` query
//! class: no extra arguments; reply `{ host: u32, ttl: u32 }`.

use std::sync::Arc;

use bindns::name::DomainName;
use bindns::resolver::StdResolver;
use bindns::rr::{RData, RType};
use clearinghouse::client::ChClient;
use clearinghouse::name::ThreePartName;
use clearinghouse::property::PROP_ADDRESS;
use hns_core::name::{HnsName, NameMapping};
use hns_core::nsm::Nsm;
use hns_core::query::QueryClass;
use hrpc::error::{RpcError, RpcResult};
use wire::Value;

/// Builds the standard `HostAddress` reply.
pub fn host_reply(host: u32, ttl: u32) -> Value {
    Value::record(vec![("host", Value::U32(host)), ("ttl", Value::U32(ttl))])
}

/// Host-address NSM backed by the public BIND.
pub struct HostAddrBindNsm {
    name: String,
    resolver: Arc<StdResolver>,
    mapping: NameMapping,
}

impl HostAddrBindNsm {
    /// Conventional NSM name for a BIND host-address NSM.
    pub const NAME: &'static str = "nsm-hostaddress-bind";

    /// Creates the NSM over a standard resolver.
    pub fn new(resolver: Arc<StdResolver>, mapping: NameMapping) -> Arc<Self> {
        Self::named(Self::NAME, resolver, mapping)
    }

    /// Creates the NSM under a custom registered name (for additional
    /// BIND-style subsystems joining the federation).
    pub fn named(
        name: impl Into<String>,
        resolver: Arc<StdResolver>,
        mapping: NameMapping,
    ) -> Arc<Self> {
        Arc::new(HostAddrBindNsm {
            name: name.into(),
            resolver,
            mapping,
        })
    }
}

impl Nsm for HostAddrBindNsm {
    fn nsm_name(&self) -> &str {
        &self.name
    }

    fn query_class(&self) -> QueryClass {
        QueryClass::host_address()
    }

    fn handle(&self, hns_name: &HnsName, _args: &Value) -> RpcResult<Value> {
        let local = self
            .mapping
            .to_local(&hns_name.individual)
            .map_err(|e| RpcError::Service(e.to_string()))?;
        let domain = DomainName::parse(&local).map_err(|e| RpcError::Service(e.to_string()))?;
        let records = self.resolver.query_uncached(&domain, RType::A)?;
        let rr = records
            .iter()
            .find(|r| r.rtype == RType::A)
            .ok_or_else(|| RpcError::NotFound(local.clone()))?;
        match &rr.rdata {
            RData::Addr(addr) => Ok(host_reply(addr.host.0, rr.ttl)),
            other => Err(RpcError::Service(format!("bad A rdata {other:?}"))),
        }
    }
}

/// Host-address NSM backed by the Clearinghouse.
pub struct HostAddrChNsm {
    name: String,
    client: Arc<ChClient>,
    mapping: NameMapping,
    default_ttl: u32,
}

impl HostAddrChNsm {
    /// Conventional NSM name for a Clearinghouse host-address NSM.
    pub const NAME: &'static str = "nsm-hostaddress-ch";

    /// Creates the NSM over a Clearinghouse client.
    pub fn new(client: Arc<ChClient>, mapping: NameMapping, default_ttl: u32) -> Arc<Self> {
        Arc::new(HostAddrChNsm {
            name: Self::NAME.to_string(),
            client,
            mapping,
            default_ttl,
        })
    }
}

impl Nsm for HostAddrChNsm {
    fn nsm_name(&self) -> &str {
        &self.name
    }

    fn query_class(&self) -> QueryClass {
        QueryClass::host_address()
    }

    fn handle(&self, hns_name: &HnsName, _args: &Value) -> RpcResult<Value> {
        let local = self
            .mapping
            .to_local(&hns_name.individual)
            .map_err(|e| RpcError::Service(e.to_string()))?;
        let tpn = ThreePartName::parse(&local).map_err(|e| RpcError::Service(e.to_string()))?;
        let value = self.client.lookup_item(&tpn, PROP_ADDRESS)?;
        Ok(host_reply(value.as_u32()?, self.default_ttl))
    }
}

impl std::fmt::Debug for HostAddrBindNsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostAddrBindNsm").finish()
    }
}

impl std::fmt::Debug for HostAddrChNsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostAddrChNsm").finish()
    }
}

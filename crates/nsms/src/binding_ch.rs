//! The HRPC-binding NSM for Clearinghouse-named systems.
//!
//! Same client interface as [`crate::binding_bind::BindingBindNsm`], but
//! the work differs completely: the host address comes from an
//! authenticated Clearinghouse lookup, and port determination runs the
//! Courier exchange protocol. "The client does not need to be aware of
//! which name service it is calling."

use std::sync::Arc;

use clearinghouse::client::ChClient;
use clearinghouse::name::ThreePartName;
use clearinghouse::property::PROP_ADDRESS;
use hns_core::name::{HnsName, NameMapping};
use hns_core::nsm::Nsm;
use hns_core::query::QueryClass;
use hrpc::bindproto;
use hrpc::error::{RpcError, RpcResult};
use hrpc::net::RpcNet;
use hrpc::{ComponentSet, HrpcBinding, ProgramId};
use simnet::topology::HostId;
use wire::Value;

use crate::nsm_cache::{NsmCache, NsmCacheForm};

const BINDING_MARSHAL_RRS: usize = 6;
const CACHED_BINDING_RRS: usize = 2;
/// TTL for cached Clearinghouse-derived bindings (the Clearinghouse has no
/// per-record TTLs; this mirrors the meta TTL).
const CH_BINDING_TTL: u32 = 600;

/// The binding NSM for Clearinghouse/Courier systems.
pub struct BindingChNsm {
    name: String,
    net: Arc<RpcNet>,
    host: HostId,
    client: Arc<ChClient>,
    mapping: NameMapping,
    cache: NsmCache,
    target_suite: ComponentSet,
}

impl BindingChNsm {
    /// Conventional NSM name.
    pub const NAME: &'static str = "nsm-hrpcbinding-ch";

    /// Creates the NSM.
    pub fn new(
        net: Arc<RpcNet>,
        host: HostId,
        client: Arc<ChClient>,
        mapping: NameMapping,
        cache_form: NsmCacheForm,
    ) -> Arc<Self> {
        Arc::new(BindingChNsm {
            name: Self::NAME.to_string(),
            net,
            host,
            client,
            mapping,
            cache: NsmCache::new(cache_form),
            target_suite: ComponentSet::courier(),
        })
    }

    /// Cache statistics (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Publishes this NSM's cache stats into `metrics` under `component`.
    pub fn export_metrics(&self, metrics: &simnet::obs::MetricsRegistry, component: &str) {
        self.cache.export_metrics(metrics, component);
    }
}

impl Nsm for BindingChNsm {
    fn nsm_name(&self) -> &str {
        &self.name
    }

    fn query_class(&self) -> QueryClass {
        QueryClass::hrpc_binding()
    }

    fn handle(&self, hns_name: &HnsName, args: &Value) -> RpcResult<Value> {
        let world = self.net.world();
        let service = args.str_field("service")?;
        let program = ProgramId(args.u32_field("program")?);

        let local = self
            .mapping
            .to_local(&hns_name.individual)
            .map_err(|e| RpcError::Service(e.to_string()))?;

        let cache_key = format!("{local}|{service}|{}", program.0);
        if let Some(cached) = self.cache.get(world, &cache_key) {
            world.charge_ms(world.costs.nsm_assemble);
            return Ok(cached);
        }

        // 1. Authenticated Clearinghouse lookup for the host address.
        let tpn = ThreePartName::parse(&local).map_err(|e| RpcError::Service(e.to_string()))?;
        let host = HostId(self.client.lookup_item(&tpn, PROP_ADDRESS)?.as_u32()?);

        // 2. Port determination via the Courier exchange protocol.
        let port = bindproto::resolve_port(
            &self.net,
            self.host,
            host,
            program,
            service,
            self.target_suite,
        )?;

        // 3. Assemble.
        let binding = HrpcBinding {
            host,
            addr: simnet::topology::NetAddr::of(host),
            program,
            port,
            components: self.target_suite,
        };
        world.charge_ms(world.costs.generated_miss(BINDING_MARSHAL_RRS) + world.costs.nsm_assemble);
        let reply = binding.to_value();
        self.cache
            .insert(world, cache_key, &reply, CACHED_BINDING_RRS, CH_BINDING_TTL);
        Ok(reply)
    }
}

impl std::fmt::Debug for BindingChNsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BindingChNsm")
            .field("host", &self.host)
            .finish()
    }
}

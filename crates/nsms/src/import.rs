//! `Import` — the HRPC binding operation, as a client of the HNS.
//!
//! The paper's walkthrough:
//!
//! ```text
//! Import(ServiceName: "DesiredService",
//!        HostName:    "BIND,fiji.cs.washington.edu",
//!        ResultBinding: DesiredBinding)
//! ```
//!
//! `Import` acts as a client of the HNS: it calls `FindNSM` with query
//! class `HRPCBinding`, then calls the designated binding NSM with the
//! original HNS name and the service name, and returns the completed,
//! system-independent binding to its caller.

use std::sync::Arc;

use hns_core::colocation::{HnsClient, HnsHandle};
use hns_core::error::{HnsError, HnsResult};
use hns_core::name::HnsName;
use hns_core::nsm::NsmClient;
use hns_core::query::QueryClass;
use hrpc::net::RpcNet;
use hrpc::{HrpcBinding, ProgramId};
use simnet::topology::HostId;
use wire::Value;

/// The HRPC `Import` entry point for one client process.
pub struct Importer {
    hns: HnsClient,
    nsm: NsmClient,
}

impl Importer {
    /// Creates an importer for a client on `host` reaching the HNS through
    /// `handle` (linked or remote — the colocation arrangement).
    pub fn new(net: Arc<RpcNet>, host: HostId, handle: HnsHandle) -> Self {
        Importer {
            hns: HnsClient::new(Arc::clone(&net), host, handle),
            nsm: NsmClient::new(net, host),
        }
    }

    /// Imports a service: returns a binding the client can call.
    pub fn import(
        &self,
        service_name: &str,
        program: ProgramId,
        host_name: &HnsName,
    ) -> HnsResult<HrpcBinding> {
        // FindNSM: which NSM understands binding for this context?
        let nsm_binding = self.hns.find_nsm(&QueryClass::hrpc_binding(), host_name)?;
        // Call the designated binding NSM with the original HNS name.
        let reply = self
            .nsm
            .call(
                &nsm_binding,
                host_name,
                vec![
                    ("service", Value::str(service_name)),
                    ("program", Value::U32(program.0)),
                ],
            )
            .map_err(HnsError::Rpc)?;
        HrpcBinding::from_value(&reply).map_err(HnsError::from)
    }
}

impl std::fmt::Debug for Importer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Importer").finish()
    }
}
